"""Failure and degenerate paths of rack-aware hierarchical assignment.

The happy paths live in ``test_extensions.py``; these tests pin down
what happens at the edges: rack lists that are empty in different
ways, more racks than keys (empty level-2 subproblems), quality
accounting for keys the assignment does not cover, and the cost model
extremes.
"""

import pytest

from repro.core.assignment import KeyAssignment
from repro.core.hierarchical import (
    HierarchicalQuality,
    assignment_quality,
    compute_hierarchical_assignment,
)
from repro.core.keygraph import KeyGraph
from repro.errors import PartitioningError


def _graph(groups=4, weight=10):
    graph = KeyGraph()
    for i in range(groups):
        graph.add_pair("S->A", f"k{i}", "A->B", f"v{i}", weight + i)
    return graph


class TestValidationEdges:
    def test_single_empty_rack_is_rejected(self):
        # [[]] has no servers at all — rejected before the per-rack
        # emptiness check fires.
        with pytest.raises(PartitioningError):
            compute_hierarchical_assignment(_graph(), [[]])

    def test_empty_rack_among_nonempty_is_rejected(self):
        with pytest.raises(PartitioningError):
            compute_hierarchical_assignment(_graph(), [[0, 1], [], [2]])

    def test_duplicate_server_within_one_rack_is_rejected(self):
        with pytest.raises(PartitioningError):
            compute_hierarchical_assignment(_graph(), [[0, 0], [1]])

    def test_imbalance_below_one_propagates(self):
        with pytest.raises(PartitioningError):
            compute_hierarchical_assignment(
                _graph(), [[0], [1]], imbalance=0.9
            )


class TestDegenerateShapes:
    def test_more_racks_than_keys_leaves_no_key_unassigned(self):
        """With more racks than key-graph vertices some racks get no
        members; those level-2 subproblems are skipped, but every key
        still lands on a valid server."""
        graph = _graph(groups=1)  # 2 vertices only
        racks = [[0], [1], [2], [3]]
        assignment = compute_hierarchical_assignment(graph, racks)
        _, vertices = graph.to_partition_graph()
        assert set(assignment.parts) == set(vertices)
        assert set(assignment.parts.values()) <= {0, 1, 2, 3}
        assert assignment.num_parts == 4

    def test_empty_keygraph_yields_empty_assignment(self):
        assignment = compute_hierarchical_assignment(
            KeyGraph(), [[0, 1], [2]]
        )
        assert assignment.parts == {}
        assert assignment.num_parts == 3

    def test_nonconsecutive_server_ids_are_respected(self):
        """Rack lists name servers, not indices — ids with gaps must
        come through verbatim."""
        graph = _graph(groups=6)
        racks = [[10, 11], [20, 21]]
        assignment = compute_hierarchical_assignment(graph, racks)
        assert set(assignment.parts.values()) <= {10, 11, 20, 21}


class TestQualityAccounting:
    def test_keys_missing_from_assignment_count_as_cross_rack(self):
        """Quality must be pessimistic about unassigned keys: a pair
        with an uncovered endpoint cannot be assumed local."""
        graph = _graph(groups=3)
        racks = [[0], [1]]
        assignment = compute_hierarchical_assignment(graph, racks)
        victim = next(iter(assignment.parts))
        parts = dict(assignment.parts)
        del parts[victim]
        crippled = KeyAssignment(parts=parts, num_parts=2)
        quality = assignment_quality(graph, crippled, racks)
        assert quality.cross_rack > 0.0
        full = assignment_quality(graph, assignment, racks)
        assert quality.same_server < 1.0 or full.same_server < 1.0
        assert quality.cross_rack >= full.cross_rack

    def test_fractions_sum_to_one(self):
        graph = _graph(groups=8)
        racks = [[0, 1], [2, 3]]
        assignment = compute_hierarchical_assignment(graph, racks)
        quality = assignment_quality(graph, assignment, racks)
        assert quality.same_server + quality.same_rack + (
            quality.cross_rack
        ) == pytest.approx(1.0)

    def test_weighted_cost_extremes(self):
        all_local = HierarchicalQuality(1.0, 0.0, 0.0)
        assert all_local.weighted_cost() == 0.0
        all_core = HierarchicalQuality(0.0, 0.0, 1.0)
        assert all_core.weighted_cost(core_cost=7.0) == 7.0
        mixed = HierarchicalQuality(0.5, 0.3, 0.2)
        assert mixed.weighted_cost(
            rack_cost=2.0, core_cost=10.0
        ) == pytest.approx(0.3 * 2.0 + 0.2 * 10.0)
