"""Deployment consistency checking.

Invariants that must hold whenever the system is quiescent (no tuples
in flight, no reconfiguration round active). Integration tests call
:func:`check_deployment` after draining a run; operators of a real
deployment could run it as a health check.
"""

from __future__ import annotations

from typing import List

from repro.engine.executor import BoltExecutor
from repro.engine.grouping import PartialKeyGrouping, TableRouter
from repro.engine.operators import StatefulBolt


class ValidationReport:
    """Collected invariant violations (empty == healthy)."""

    def __init__(self) -> None:
        self.violations: List[str] = []

    def fail(self, message: str) -> None:
        self.violations.append(message)

    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_if_failed(self) -> None:
        if self.violations:
            raise AssertionError(
                "deployment invariants violated:\n  "
                + "\n  ".join(self.violations)
            )

    def __repr__(self) -> str:
        state = "ok" if self.ok else f"{len(self.violations)} violations"
        return f"ValidationReport({state})"


def check_deployment(deployment) -> ValidationReport:
    """Verify the quiescent-state invariants of a deployment.

    - every key's state lives on exactly one instance of its operator;
    - no executor is still holding (buffering) keys;
    - no tuple trees remain unacked;
    - routing tables map keys to existing destination instances.
    """
    report = ValidationReport()

    if deployment.acker.in_flight != 0:
        report.fail(
            f"{deployment.acker.in_flight} tuple trees still in flight"
        )

    topology = deployment.topology
    for op in topology.operators.values():
        instances = deployment.instances(op.name)

        # Unique key ownership only holds for *keyed* (fields-grouped)
        # inputs; a shuffle-fed stateful bolt legitimately counts the
        # same key on several instances. Keys currently split by a
        # hybrid input (or routed by d-choices) hold partial aggregates
        # on every member, so they are exempt too.
        keyed_input = any(
            getattr(stream.grouping, "key_fn", None) is not None
            and not isinstance(stream.grouping, PartialKeyGrouping)
            for stream in topology.inputs_of(op.name)
        )
        split_keys = _split_keys_into(deployment, topology, op.name)
        owners = {}
        for executor in instances:
            if keyed_input and isinstance(executor.operator, StatefulBolt):
                for key in executor.operator.state:
                    if key in split_keys:
                        continue
                    if key in owners:
                        report.fail(
                            f"{op.name}: key {key!r} on instances "
                            f"{owners[key]} and {executor.instance}"
                        )
                    owners[key] = executor.instance
            if isinstance(executor, BoltExecutor) and executor.held_keys:
                report.fail(
                    f"{executor.name}: still holding keys "
                    f"{sorted(map(repr, executor.held_keys))[:5]}"
                )

        for executor in instances:
            for edge in executor.out_edges:
                router = edge.router
                if not isinstance(router, TableRouter):
                    continue
                table = router.table
                if table is None:
                    continue
                num_destinations = len(edge.destinations)
                if table:
                    try:
                        entries = list(table.items())
                    except TypeError:
                        # Compact tables store fingerprints, not keys —
                        # enumeration is impossible by design, but the
                        # owner range is still checkable exactly.
                        entries = None
                    if entries is None:
                        top = table.max_instance()
                        if top is not None and not (
                            0 <= top < num_destinations
                        ):
                            report.fail(
                                f"{executor.name} stream "
                                f"{edge.stream_name}: compact table "
                                f"max instance {top} out of range"
                            )
                    else:
                        for key, instance in entries:
                            if not 0 <= instance < num_destinations:
                                report.fail(
                                    f"{executor.name} stream "
                                    f"{edge.stream_name}: key {key!r} -> "
                                    f"instance {instance} out of range"
                                )
                for key, members in (
                    getattr(table, "splits", None) or {}
                ).items():
                    for member in members:
                        if not 0 <= member < num_destinations:
                            report.fail(
                                f"{executor.name} stream "
                                f"{edge.stream_name}: split key {key!r} "
                                f"member {member} out of range"
                            )
    return report


def _split_keys_into(deployment, topology, op_name: str) -> set:
    """Keys currently split by any table-routed stream into ``op_name``
    (their partial state legitimately lives on several instances)."""
    split: set = set()
    for stream in topology.inputs_of(op_name):
        for executor in deployment.instances(stream.src):
            try:
                edge = executor.out_edge(stream.name)
            except Exception:
                continue
            router = edge.router
            if not isinstance(router, TableRouter):
                continue
            splits = getattr(router.table, "splits", None)
            if splits:
                split.update(splits)
    return split
