#!/usr/bin/env python
"""Reconfiguration on a stable workload (the paper's Fig. 13 scenario).

Runs the Flickr-like application (count tags, then countries; 4 kB
tuples on a 1 Gb/s network) twice — with periodic reconfiguration and
without — and prints the two throughput time series side by side. The
jump right after the first reconfiguration, with no dip during state
migration, is the paper's Section 4.4 result.

Run:  python examples/flickr_tags.py
"""

from repro.core import Manager, ManagerConfig
from repro.engine import Cluster, Simulator, deploy
from repro.engine.metrics import ThroughputSampler
from repro.workloads import FlickrConfig, FlickrWorkload

SERVERS = 6
PADDING = 4000
BANDWIDTH_GBPS = 1.0
DURATION_S = 1.8
PERIOD_S = 0.6  # time-compressed: the paper uses 30 min / 10 min
SAMPLE_S = 0.1


def one_run(reconfigure: bool):
    workload = FlickrWorkload(FlickrConfig(seed=3))
    sim = Simulator()
    cluster = Cluster(sim, SERVERS, bandwidth_gbps=BANDWIDTH_GBPS)
    deployment = deploy(
        sim, cluster, workload.topology(SERVERS, padding=PADDING)
    )
    manager = None
    if reconfigure:
        manager = Manager(
            deployment,
            ManagerConfig(period_s=PERIOD_S, sketch_capacity=50000),
        )
        manager.start()
    sampler = ThroughputSampler(sim, deployment.metrics, "B", SAMPLE_S)
    sampler.start()
    deployment.start()
    sim.run(until=DURATION_S)
    rounds = len(manager.completed_rounds) if manager else 0
    return sampler.samples, rounds


def main():
    with_reconf, rounds = one_run(reconfigure=True)
    without_reconf, _ = one_run(reconfigure=False)

    print(
        f"{SERVERS} servers, {PADDING} B tuples, {BANDWIDTH_GBPS} Gb/s, "
        f"reconfiguration every {PERIOD_S}s ({rounds} rounds)\n"
    )
    print(f"{'time':>6}  {'w/ reconf':>12}  {'w/o reconf':>12}")
    for (t, with_rate), (_, without_rate) in zip(
        with_reconf, without_reconf
    ):
        marker = "  <- reconfiguration" if abs(
            t % PERIOD_S
        ) < SAMPLE_S and t > SAMPLE_S else ""
        print(
            f"{t:5.1f}s  {with_rate / 1e3:9.1f} K/s  "
            f"{without_rate / 1e3:9.1f} K/s{marker}"
        )

    after = [r for t, r in with_reconf if t > PERIOD_S + 0.1]
    base = [r for t, r in without_reconf if t > PERIOD_S + 0.1]
    gain = sum(after) / len(after) / (sum(base) / len(base))
    print(f"\nsteady-state throughput gain: x{gain:.2f}")


if __name__ == "__main__":
    main()
