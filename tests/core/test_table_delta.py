"""Property and unit tests: TableDelta (docs/PROTOCOL.md, DESIGN.md §13).

The round-trip law — ``diff(a, b).apply(a) == b`` — must hold for
arbitrary tables including split sets, for plain *and* compact bases,
and regardless of whether the diff chose delta or snapshot encoding.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CompactRoutingTable, RoutingTable, TableDelta
from repro.core.table_delta import (
    DELTA_HEADER_BYTES,
    key_wire_bytes,
    snapshot_wire_bytes,
)
from repro.errors import ReconfigurationError

_KEYS = st.integers(min_value=0, max_value=40).map(lambda i: f"k{i}")
_OWNERS = st.integers(min_value=0, max_value=7)
_MAPPINGS = st.dictionaries(_KEYS, _OWNERS, max_size=30)
_SPLITS = st.dictionaries(
    _KEYS,
    st.lists(_OWNERS, min_size=2, max_size=4, unique=True).map(tuple),
    max_size=4,
)
_TABLES = st.builds(RoutingTable, _MAPPINGS, _SPLITS)


@settings(max_examples=200, deadline=None)
@given(old=_TABLES, new=_TABLES)
def test_diff_apply_round_trip(old, new):
    delta = TableDelta.diff(old, new)
    assert delta.apply(old) == new


@settings(max_examples=100, deadline=None)
@given(old=_TABLES, new=_TABLES)
def test_diff_apply_round_trip_compact_base(old, new):
    compact_old = CompactRoutingTable.from_table(old)
    delta = TableDelta.diff(old, new)
    applied = delta.apply(compact_old)
    assert applied == new
    # the base is never mutated
    assert compact_old == old


@settings(max_examples=100, deadline=None)
@given(new=_TABLES)
def test_diff_from_none_is_full_content(new):
    delta = TableDelta.diff(None, new)
    assert delta.apply(None) == new
    assert delta.apply(RoutingTable.empty()) == new


def test_base_mismatch_raises():
    a = RoutingTable({f"key-{i}": 0 for i in range(10)})
    b = RoutingTable(dict(a.mapping, **{"key-0": 1}))
    delta = TableDelta.diff(a, b)
    assert not delta.is_snapshot
    same_len_other_content = RoutingTable(
        dict(a.mapping, **{"key-9": 5})
    )
    with pytest.raises(ReconfigurationError):
        delta.apply(same_len_other_content)
    with pytest.raises(ReconfigurationError):
        delta.apply(None)


def test_snapshot_fallback_when_delta_is_larger():
    old = RoutingTable({f"key-{i}": 0 for i in range(100)})
    new = RoutingTable({f"key-{i}": 1 for i in range(100)})
    delta = TableDelta.diff(old, new)
    assert delta.is_snapshot
    assert delta.snapshot is new
    # snapshots apply to any base, even a mismatched one
    assert delta.apply(None) is new
    assert delta.apply(RoutingTable({"stray": 5})) is new
    assert delta.wire_bytes() == snapshot_wire_bytes(new)


def test_snapshot_table_override_is_carried():
    # a table shrinking to almost nothing: the delta would be hundreds
    # of removals, dearer than a snapshot of the small successor
    old = RoutingTable({f"key-{i}": 0 for i in range(500)})
    new = RoutingTable({"key-0": 1})
    compact_new = CompactRoutingTable.from_table(new)
    delta = TableDelta.diff(old, new, snapshot_table=compact_new)
    assert delta.is_snapshot
    assert delta.apply(CompactRoutingTable.from_table(old)) is compact_new


def test_small_delta_beats_snapshot():
    old = RoutingTable({f"key-{i:06d}": i % 4 for i in range(10_000)})
    new_mapping = dict(old.mapping)
    new_mapping["key-000001"] = 3
    new = RoutingTable(new_mapping)
    delta = TableDelta.diff(old, new)
    assert not delta.is_snapshot
    assert delta.num_changes == 1
    assert delta.wire_bytes() < snapshot_wire_bytes(new) / 100
    assert delta.apply(old) == new


def test_split_only_changes_travel_as_deltas():
    mapping = {f"key-{i}": i % 3 for i in range(1000)}
    old = RoutingTable(mapping, {"hot": (0, 1)})
    new = RoutingTable(mapping, {"hot": (0, 1, 2), "warm": (1, 2)})
    delta = TableDelta.diff(old, new)
    assert not delta.is_snapshot
    assert delta.set_entries == {}
    assert delta.set_splits == {"hot": (0, 1, 2), "warm": (1, 2)}
    assert delta.apply(old) == new
    gone = RoutingTable(mapping)
    back = TableDelta.diff(new, gone)
    assert back.removed_splits and back.apply(new) == gone


def test_wire_bytes_accounting():
    # constructed directly: one upsert (aa) and one removal (bb); keys
    # cost their repr bytes, owners a u16, removals just the key
    delta = TableDelta(
        base_fingerprint=0,
        base_len=2,
        set_entries={"aa": 1},
        removed_keys=("bb",),
    )
    expected = (
        DELTA_HEADER_BYTES
        + (2 + key_wire_bytes("aa") + 2)
        + (2 + key_wire_bytes("bb"))
    )
    assert delta.wire_bytes() == expected
    assert key_wire_bytes("aa") == len(repr("aa").encode())
