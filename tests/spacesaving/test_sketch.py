"""Unit and property-based tests for the SpaceSaving sketch."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spacesaving import ItemEstimate, SpaceSaving


def test_capacity_validation():
    with pytest.raises(ValueError):
        SpaceSaving(0)


def test_offer_requires_positive_weight():
    sketch = SpaceSaving(4)
    with pytest.raises(ValueError):
        sketch.offer("a", weight=0)


def test_exact_until_capacity():
    sketch = SpaceSaving(capacity=8)
    stream = ["a", "b", "a", "c", "a", "b"]
    for item in stream:
        sketch.offer(item)
    truth = Counter(stream)
    for item, count in truth.items():
        estimate = sketch.estimate(item)
        assert estimate is not None
        assert estimate.count == count
        assert estimate.error == 0
        assert estimate.guaranteed
    assert sketch.n == len(stream)
    assert sketch.max_error() == 0


def test_eviction_inherits_min_count_as_error():
    sketch = SpaceSaving(capacity=2)
    sketch.offer("a")
    sketch.offer("a")
    sketch.offer("b")
    sketch.offer("c")  # evicts b (count 1); c gets count 2, error 1
    estimate = sketch.estimate("c")
    assert estimate == ItemEstimate("c", 2, 1)
    assert sketch.estimate("b") is None
    assert sketch.max_error() >= 1


def test_top_ordering_and_k():
    sketch = SpaceSaving(capacity=16)
    for item, weight in [("x", 10), ("y", 5), ("z", 1)]:
        sketch.offer(item, weight=weight)
    top = sketch.top(2)
    assert [e.item for e in top] == ["x", "y"]
    assert sketch.top(0) == []
    with pytest.raises(ValueError):
        sketch.top(-1)


def test_guaranteed_top_excludes_uncertain_items():
    sketch = SpaceSaving(capacity=2)
    for item in ["a"] * 10 + ["b", "c"]:
        sketch.offer(item)
    guaranteed = sketch.guaranteed_top(1)
    assert [e.item for e in guaranteed] == ["a"]


def test_clear_resets_everything():
    sketch = SpaceSaving(capacity=2)
    for item in ["a", "b", "c"]:
        sketch.offer(item)
    sketch.clear()
    assert sketch.n == 0
    assert len(sketch) == 0
    assert sketch.max_error() == 0
    sketch.offer("d")
    assert sketch.estimate("d").count == 1


def test_merge_combines_counts():
    left = SpaceSaving(capacity=8)
    right = SpaceSaving(capacity=8)
    for _ in range(5):
        left.offer("a")
    for _ in range(3):
        right.offer("a")
    right.offer("b")
    merged = left.merge(right)
    assert merged.n == 9
    assert merged.estimate("a").count == 8
    assert merged.estimate("b").count == 1


def test_merge_is_pessimistic_for_missing_items():
    """An item absent from one full sketch gains that sketch's floor."""
    left = SpaceSaving(capacity=1)
    right = SpaceSaving(capacity=1)
    for _ in range(4):
        left.offer("a")
    for _ in range(6):
        right.offer("b")
    merged = left.merge(right)
    estimate_a = merged.estimate("a")
    if estimate_a is not None:
        # "a" may have occurred up to right.max_error() times in right.
        assert estimate_a.count >= 4
        assert estimate_a.lower_bound <= 4


# ----------------------------------------------------------------------
# Property-based guarantees (the heart of why the paper can afford 1 MB
# of statistics per instance).
# ----------------------------------------------------------------------

item_streams = st.lists(
    st.integers(min_value=0, max_value=30), min_size=1, max_size=400
)


@given(stream=item_streams, capacity=st.integers(min_value=1, max_value=16))
@settings(max_examples=200, deadline=None)
def test_estimates_always_overestimate(stream, capacity):
    sketch = SpaceSaving(capacity)
    for item in stream:
        sketch.offer(item)
    truth = Counter(stream)
    for estimate in sketch.items():
        true_count = truth[estimate.item]
        assert estimate.count >= true_count
        assert estimate.count - estimate.error <= true_count


@given(stream=item_streams, capacity=st.integers(min_value=1, max_value=16))
@settings(max_examples=200, deadline=None)
def test_error_bounded_by_n_over_m(stream, capacity):
    sketch = SpaceSaving(capacity)
    for item in stream:
        sketch.offer(item)
    bound = sketch.n / capacity
    for estimate in sketch.items():
        assert estimate.error <= bound
    assert sketch.max_error() <= bound


@given(stream=item_streams, capacity=st.integers(min_value=1, max_value=16))
@settings(max_examples=200, deadline=None)
def test_no_false_negatives_above_threshold(stream, capacity):
    """Any item with true count > N/m must be monitored."""
    sketch = SpaceSaving(capacity)
    for item in stream:
        sketch.offer(item)
    threshold = sketch.n / capacity
    truth = Counter(stream)
    for item, count in truth.items():
        if count > threshold:
            assert item in sketch


@given(stream=item_streams)
@settings(max_examples=100, deadline=None)
def test_large_capacity_is_exact(stream):
    sketch = SpaceSaving(capacity=64)
    for item in stream:
        sketch.offer(item)
    truth = Counter(stream)
    assert len(sketch) == len(truth)
    for item, count in truth.items():
        estimate = sketch.estimate(item)
        assert estimate.count == count
        assert estimate.error == 0


@given(
    stream=item_streams,
    capacity=st.integers(min_value=1, max_value=16),
    weights=st.booleans(),
)
@settings(max_examples=100, deadline=None)
def test_total_count_conserved(stream, capacity, weights):
    """Sum of (count - error) never exceeds N; sum of top counts >= the
    mass of the monitored items."""
    rng = random.Random(42)
    sketch = SpaceSaving(capacity)
    n = 0
    for item in stream:
        weight = rng.randint(1, 3) if weights else 1
        sketch.offer(item, weight=weight)
        n += weight
    assert sketch.n == n
    lower_mass = sum(e.lower_bound for e in sketch.items())
    assert lower_mass <= n


def test_zipf_stream_identifies_heavy_hitters():
    """On a skewed stream, a small sketch finds the true heavy hitters —
    the scenario the paper relies on (Section 3.2)."""
    rng = random.Random(7)
    population = list(range(1000))
    weights = [1.0 / (rank + 1) for rank in range(1000)]
    stream = rng.choices(population, weights=weights, k=20000)
    truth = Counter(stream)
    sketch = SpaceSaving(capacity=100)
    for item in stream:
        sketch.offer(item)
    true_top10 = {item for item, _ in truth.most_common(10)}
    sketched_top = {e.item for e in sketch.top(30)}
    assert true_top10 <= sketched_top
