"""Unit tests: the metric registry (counters, gauges, histograms,
shared state objects, callback collectors, deterministic export)."""

import pytest

from repro.observability import Counter, Gauge, Histogram, MetricRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter()
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6
        assert c.telemetry_value() == 6


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(3.5)
        g.inc(0.5)
        g.dec(1.0)
        assert g.value == 3.0


class TestHistogram:
    def test_observe_and_stats(self):
        h = Histogram(buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 2.0, 20.0, 200.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == pytest.approx(222.5)
        assert h.mean == pytest.approx(222.5 / 4)
        assert h.min == 0.5
        assert h.max == 200.0

    def test_quantile_uses_bucket_bounds(self):
        h = Histogram(buckets=(1.0, 10.0, 100.0))
        for _ in range(99):
            h.observe(0.5)
        h.observe(50.0)
        assert h.quantile(0.5) <= 1.0
        assert h.quantile(0.999) > 10.0

    def test_empty_histogram(self):
        h = Histogram()
        assert h.count == 0
        assert h.mean == 0.0
        assert h.quantile(0.99) == 0.0

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)

    def test_telemetry_value_shape(self):
        h = Histogram(buckets=(1.0, 2.0))
        h.observe(1.5)
        h.observe(9.0)
        value = h.telemetry_value()
        assert value["count"] == 2
        assert value["buckets"] == {1.0: 0, 2.0: 1}
        assert value["overflow"] == 1


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricRegistry()
        a = reg.counter("tuples", op="A")
        b = reg.counter("tuples", op="A")
        assert a is b
        assert reg.counter("tuples", op="B") is not a

    def test_label_order_does_not_matter(self):
        reg = MetricRegistry()
        a = reg.counter("x", op="A", instance=0)
        b = reg.counter("x", instance=0, op="A")
        assert a is b

    def test_kind_conflict_raises(self):
        reg = MetricRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.register_callback("x", lambda: 0)

    def test_state_objects_are_shared(self):
        class Tally:
            def __init__(self):
                self.n = 0

            def telemetry_value(self):
                return self.n

        reg = MetricRegistry()
        one = reg.state("tally", Tally, stream="A->B")
        two = reg.state("tally", Tally, stream="A->B")
        assert one is two
        one.n = 7
        assert reg.value("tally", stream="A->B") == 7
        assert reg.states("tally") == [({"stream": "A->B"}, one)]

    def test_callback_sampled_at_collect(self):
        reg = MetricRegistry()
        box = {"n": 1}
        reg.register_callback("box", lambda: box["n"], kind_of="test")
        box["n"] = 42
        samples = reg.collect()
        assert samples == [
            {
                "metric": "box",
                "kind": "gauge",
                "labels": {"kind_of": "test"},
                "value": 42,
            }
        ]
        assert reg.value("box", kind_of="test") == 42

    def test_collect_is_sorted_and_complete(self):
        reg = MetricRegistry()
        reg.counter("b").inc(2)
        reg.counter("a", op="Z").inc(1)
        reg.counter("a", op="A").inc(3)
        names = [(s["metric"], s["labels"]) for s in reg.collect()]
        assert names == [
            ("a", {"op": "A"}),
            ("a", {"op": "Z"}),
            ("b", {}),
        ]

    def test_value_of_missing_metric(self):
        reg = MetricRegistry()
        assert reg.get("nope") is None
        assert reg.value("nope") is None
