"""Fault injection for the reconfiguration protocol (chaos tooling).

Algorithm 1's correctness argument assumes perfect FIFO delivery and
surviving POIs. This package injects the imperfections — dropped,
delayed, duplicated and reordered control messages, lost RPC legs,
slow links, crashing POIs — so tests can demonstrate that the
protocol's no-tuple-loss / no-count-misplaced invariant (Section 3.4)
and the manager's round-deadline recovery hold under all of them.

A :class:`~repro.faults.plan.FaultPlan` is a declarative list of
deterministic rules; :class:`~repro.faults.injector.FaultInjector`
binds it to the engine's three opt-in interception hooks (control
delivery, simulator RPC events, network wire latency) plus scheduled
crashes. Unattached, every hook is a no-op — like the observability
layer, chaos costs nothing unless a run opts in. The rule types:

- :class:`~repro.faults.plan.ControlFault` — drop / delay / duplicate
  / reorder / crash-on-arrival for in-band PROPAGATE and MIGRATE
  deliveries, filtered by kind, destination and round;
- :class:`~repro.faults.plan.RpcFault` — drop or delay one leg of the
  out-of-band manager↔POI RPCs (GET_METRICS … ACK_RECONF);
- :class:`~repro.faults.plan.LinkDelay` — extra latency between
  chosen servers, which reorders deliveries across senders;
- :class:`~repro.faults.plan.CrashAt` — POI crash/restart at a given
  simulated time, reusing the engine's crash machinery.

Typical use::

    from repro.faults import ControlFault, FaultInjector, FaultPlan

    plan = FaultPlan(control=[
        ControlFault(action="drop", kind="PROPAGATE", max_matches=1),
    ])
    injector = FaultInjector(plan).attach(deployment, manager)
    # ... run; the manager's round deadline aborts the wedged round,
    # rolls routing back, and a later round succeeds. injector.log
    # records what fired, when, where.

Every fault the protocol absorbs is tallied in
``ReconfigurationAgent.anomalies`` and exported by the telemetry layer
as ``faults_injected`` (DESIGN.md §8.2). The chaos matrix in
``tests/faults/test_chaos_matrix.py`` sweeps all rule types against
the state-total invariant; knob reference and abort semantics are in
DESIGN.md §7.
"""

from repro.faults.generate import (
    fault_plan_from_dict,
    fault_plan_to_dict,
    generate_fault_plan,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    CRASH,
    DELAY,
    DROP,
    DUPLICATE,
    REORDER,
    RPC_STEPS,
    ControlFault,
    CrashAt,
    FaultPlan,
    LinkDelay,
    RpcFault,
    control_round_id,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "ControlFault",
    "RpcFault",
    "LinkDelay",
    "CrashAt",
    "control_round_id",
    "generate_fault_plan",
    "fault_plan_to_dict",
    "fault_plan_from_dict",
    "DROP",
    "DELAY",
    "DUPLICATE",
    "REORDER",
    "CRASH",
    "RPC_STEPS",
]
