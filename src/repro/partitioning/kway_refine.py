"""Greedy k-way refinement.

Recursive bisection optimizes each split in isolation; a final
Kernighan–Lin-style pass over the k-way result can still find moves
that reduce the cut globally (Metis does the same with its k-way
refinement). Each pass visits boundary vertices and applies the best
positive-gain move that respects the balance bound; passes repeat
until no move helps.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import PartitioningError
from repro.partitioning.graph import Graph

_EPSILON = 1e-9


def refine_kway(
    graph: Graph,
    parts: List[int],
    nparts: int,
    imbalance: float = 1.03,
    max_passes: int = 4,
) -> int:
    """Refine a k-way partition in place.

    Returns the number of vertices moved. The balance bound follows
    the same granularity rule as the partitioner: a part may hold up
    to ``max(imbalance * ideal, ideal + heaviest_vertex)`` weight.
    """
    n = graph.num_vertices
    if len(parts) != n:
        raise PartitioningError(
            f"partition vector has {len(parts)} entries for {n} vertices"
        )
    if nparts < 2 or n == 0:
        return 0

    weights = [0.0] * nparts
    for v, part in enumerate(parts):
        if not 0 <= part < nparts:
            raise PartitioningError(
                f"vertex {v} in part {part}, outside [0, {nparts})"
            )
        weights[part] += graph.vertex_weight(v)
    total = sum(weights)
    ideal = total / nparts
    max_vertex = max(
        (graph.vertex_weight(v) for v in range(n)), default=0.0
    )
    cap = max(imbalance * ideal, ideal + max_vertex)

    moved_total = 0
    for _ in range(max_passes):
        moved = 0
        for v in range(n):
            src = parts[v]
            connection: Dict[int, float] = {}
            for neighbor, weight in graph.neighbors(v).items():
                part = parts[neighbor]
                connection[part] = connection.get(part, 0.0) + weight
            internal = connection.get(src, 0.0)
            vertex_weight = graph.vertex_weight(v)

            best_part = src
            best_gain = 0.0
            for part, weight in connection.items():
                if part == src:
                    continue
                gain = weight - internal
                if gain <= best_gain + _EPSILON:
                    continue
                fits = weights[part] + vertex_weight <= cap + _EPSILON
                relieves = weights[src] > cap + _EPSILON and (
                    weights[part] + vertex_weight < weights[src]
                )
                if fits or relieves:
                    best_part = part
                    best_gain = gain
            if best_part != src:
                parts[v] = best_part
                weights[src] -= vertex_weight
                weights[best_part] += vertex_weight
                moved += 1
        moved_total += moved
        if moved == 0:
            break
    return moved_total
