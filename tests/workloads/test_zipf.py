"""Tests for the Zipf and weighted samplers."""

import random
from collections import Counter

import pytest

from repro.errors import WorkloadError
from repro.workloads import ZipfSampler
from repro.workloads.zipf import WeightedSampler, derived_rng


def test_zipf_validation():
    with pytest.raises(WorkloadError):
        ZipfSampler(0)
    with pytest.raises(WorkloadError):
        ZipfSampler(10, exponent=-1.0)


def test_zipf_samples_in_range():
    sampler = ZipfSampler(100, seed=1)
    for _ in range(1000):
        assert 0 <= sampler.sample() < 100


def test_zipf_is_skewed():
    sampler = ZipfSampler(1000, exponent=1.0, seed=2)
    counts = Counter(sampler.sample() for _ in range(20000))
    assert counts[0] > counts.get(100, 0) > counts.get(900, 0) - 5
    # Rank 0 should receive roughly 1/H_1000 ~ 13% of the mass.
    assert 0.08 < counts[0] / 20000 < 0.20


def test_zipf_exponent_zero_is_uniform():
    sampler = ZipfSampler(4, exponent=0.0, seed=3)
    counts = Counter(sampler.sample() for _ in range(8000))
    for rank in range(4):
        assert counts[rank] == pytest.approx(2000, rel=0.15)


def test_zipf_pmf_sums_to_one():
    sampler = ZipfSampler(50, exponent=1.3)
    assert sum(sampler.pmf(rank) for rank in range(50)) == pytest.approx(1.0)
    with pytest.raises(WorkloadError):
        sampler.pmf(50)


def test_zipf_deterministic_with_seed():
    first = [ZipfSampler(100, seed=7).sample() for _ in range(10)]
    second = [ZipfSampler(100, seed=7).sample() for _ in range(10)]
    assert first == second


def test_zipf_external_rng():
    sampler = ZipfSampler(100)
    rng = random.Random(5)
    values = [sampler.sample(rng) for _ in range(5)]
    rng = random.Random(5)
    assert values == [sampler.sample(rng) for _ in range(5)]


def test_weighted_sampler_validation():
    with pytest.raises(WorkloadError):
        WeightedSampler([])
    with pytest.raises(WorkloadError):
        WeightedSampler([1.0, -0.1])
    with pytest.raises(WorkloadError):
        WeightedSampler([0.0, 0.0])


def test_weighted_sampler_proportions():
    sampler = WeightedSampler([3.0, 1.0], seed=4)
    counts = Counter(sampler.sample() for _ in range(8000))
    assert counts[0] / 8000 == pytest.approx(0.75, abs=0.03)


def test_weighted_sampler_zero_weight_never_sampled():
    sampler = WeightedSampler([1.0, 0.0, 1.0], seed=5)
    assert 1 not in {sampler.sample() for _ in range(2000)}


def test_derived_rng_deterministic_and_distinct():
    assert derived_rng(1, "a", 2).random() == derived_rng(1, "a", 2).random()
    assert derived_rng(1, "a").random() != derived_rng(1, "b").random()
