"""The invariant suite: clean runs stay clean, armed bugs are caught."""

import pytest

from repro.testing import (
    EpisodeConfig,
    RngTree,
    Violation,
    balance_bound,
    generate_config,
    run_episode,
)

#: a small, fast, fault-free episode for targeted checks
FAST = dict(
    parallelism=2,
    keys=16,
    tuples_per_instance=400,
    period_s=0.05,
    round_timeout_s=0.03,
    until_s=0.2,
)


def _kinds(result):
    return {v.invariant for v in result.violations}


def test_clean_episode_has_no_violations():
    result = run_episode(EpisodeConfig(seed=11, **FAST))
    assert result.ok, result.violations
    assert result.rounds_completed >= 1


def test_generated_chaotic_episodes_stay_clean():
    tree = RngTree(0)
    for seed in range(3):
        result = run_episode(generate_config(tree, seed))
        assert result.ok, (seed, result.violations)


def test_double_migrate_is_caught():
    # Seed 0 of tree 0 migrates state into B[0], the injection's victim.
    config = generate_config(RngTree(0), 0)
    config.inject = "double_migrate"
    result = run_episode(config)
    kinds = _kinds(result)
    assert "duplicate_install" in kinds
    assert "conservation" in kinds
    assert "migration_ledger" in kinds


def test_held_leak_is_caught():
    config = generate_config(RngTree(0), 1)
    config.inject = "held_leak"
    result = run_episode(config)
    assert "held_keys" in _kinds(result)


def test_unknown_injection_rejected():
    with pytest.raises(ValueError):
        run_episode(EpisodeConfig(seed=1, inject="no_such_bug", **FAST))


def test_violation_round_trips():
    violation = Violation("conservation", "B: key 3 off", 0.25, round_id=2)
    assert Violation.from_dict(violation.to_dict()) == violation


def test_balance_bound_shapes():
    # Single part: everything is allowed (no balance to speak of).
    assert balance_bound(100.0, 1, 50.0, 1.03) >= 100.0
    # Fine-grained keys: α rules.
    assert balance_bound(1000.0, 2, 1.0, 1.1) == pytest.approx(
        550.0, rel=1e-5
    )
    # Coarse keys: one max-vertex of slack per level rules.
    assert balance_bound(10.0, 2, 6.0, 1.03) == pytest.approx(
        11.0, rel=1e-5
    )
