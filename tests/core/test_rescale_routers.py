"""Rescale seams for non-table-routed streams (router edge-case fixes).

A rescaled operator's fan-out changes for *every* input stream, not
just the table-routed one the planner rewrites. Before the fix, a
shuffle/hash/PKG side input kept its old destination list (stale
references to pre-rescale width) and its old modulus — tuples kept
landing only on the original instances. These tests pin the repaired
behaviour and the fail-fast for routers without a resize seam.
"""

import random
from collections import Counter

import pytest

from repro.core import Manager, ManagerConfig
from repro.engine import (
    Cluster,
    CountBolt,
    CustomGrouping,
    PartialKeyGrouping,
    ShuffleGrouping,
    Simulator,
    TableFieldsGrouping,
    TopologyBuilder,
    deploy,
)
from repro.engine.operators import IteratorSpout
from repro.errors import ReconfigurationError
from repro.testing.invariants import InvariantSuite

SPOUTS = 2
PER_SPOUT = 12000
KEYS = 40


def _source(ctx):
    rng = random.Random(500 + ctx.instance_index)
    for _ in range(PER_SPOUT):
        a = min(rng.randrange(KEYS), rng.randrange(KEYS))
        yield (a, a + 100)


def _ground_truth_totals():
    """Per-key totals at A over both spouts (table + side stream)."""
    truth = Counter()
    for i in range(SPOUTS):
        rng = random.Random(500 + i)
        for _ in range(PER_SPOUT):
            a = min(rng.randrange(KEYS), rng.randrange(KEYS))
            truth[a] += 2
    return truth


def _build(bolts, side_grouping):
    """S (table-routed) and T (``side_grouping``) both feed A, which
    forwards into a table-routed B (the manager needs a keyed input
    plus a routed output to instrument pair statistics)."""
    builder = TopologyBuilder()
    builder.spout("S", lambda: IteratorSpout(_source), parallelism=SPOUTS)
    builder.spout("T", lambda: IteratorSpout(_source), parallelism=SPOUTS)
    builder.bolt(
        "A",
        lambda: CountBolt(0, forward=True),
        parallelism=bolts,
        inputs={"S": TableFieldsGrouping(0), "T": side_grouping},
    )
    builder.bolt(
        "B",
        lambda: CountBolt(1, forward=False),
        parallelism=bolts,
        inputs={"A": TableFieldsGrouping(1)},
    )
    return builder.build()


def _deployed(bolts, side_grouping):
    sim = Simulator()
    cluster = Cluster(sim, max(bolts, SPOUTS))
    deployment = deploy(sim, cluster, _build(bolts, side_grouping))
    manager = Manager(deployment, ManagerConfig(period_s=0.05))
    return sim, deployment, manager


def _rescale_with_retry(sim, manager, target, done):
    def attempt():
        if manager.rescale(target, on_complete=done.append):
            return
        if manager.tier_parallelism == target:
            return
        sim.schedule(0.005, attempt)

    attempt()


def _run_with_rescale(side_grouping, target):
    sim, deployment, manager = _deployed(2, side_grouping)
    suite = InvariantSuite(deployment, manager).attach()
    done = []
    manager.start()
    deployment.start()
    sim.schedule(0.08, _rescale_with_retry, sim, manager, target, done)
    sim.run(until=0.4)
    manager.stop()
    sim.run()  # drain
    return sim, deployment, manager, suite, done


@pytest.mark.parametrize(
    "side_grouping",
    [ShuffleGrouping(), PartialKeyGrouping(0)],
    ids=["shuffle", "partial-key"],
)
def test_side_input_follows_the_rescale(side_grouping):
    """Scale-out with a non-table side input: the side stream's
    sources must adopt the new destination list and modulus, the new
    instances must receive side traffic, and no tuple may be lost."""
    sim, deployment, manager, suite, done = _run_with_rescale(
        side_grouping, target=4
    )
    assert len(done) == 1 and not done[0].aborted
    assert suite.violations == []

    for spout in deployment.instances("T"):
        edge = spout.out_edge("T->A")
        # The regression: destinations froze at the pre-rescale width.
        assert len(edge.destinations) == 4
        dsts = {d.instance for d in edge.destinations}
        assert dsts == {0, 1, 2, 3}

    # New instances actually processed side traffic after the rescale.
    processed = deployment.metrics.processed
    assert any(
        processed.get(("A", i), 0) > 0 for i in (2, 3)
    ), "rescaled instances never received side-stream tuples"

    # Nothing lost: every emitted tuple (both streams) was counted.
    totals = Counter()
    for executor in deployment.instances("A"):
        for key, count in executor.operator.state.items():
            totals[key] += count
    assert totals == _ground_truth_totals()


def test_scale_in_retargets_side_input(side_grouping=ShuffleGrouping()):
    """Scale-in: the side stream must stop addressing retired
    instances (a stale destination list would deliver into executors
    being drained) and totals stay exact."""
    sim, deployment, manager, suite, done = _run_with_rescale(
        side_grouping, target=1
    )
    assert len(done) == 1 and not done[0].aborted
    assert suite.violations == []
    for spout in deployment.instances("T"):
        edge = spout.out_edge("T->A")
        assert [d.instance for d in edge.destinations] == [0]
    totals = Counter()
    for executor in deployment.instances("A"):
        for key, count in executor.operator.state.items():
            totals[key] += count
    assert totals == _ground_truth_totals()


def test_custom_grouping_fails_fast_on_rescale():
    """CustomGrouping routers have no resize seam: a rescale must
    raise a ReconfigurationError naming the executor and stream, not
    silently keep routing with the stale modulus."""
    grouping = CustomGrouping(
        lambda values, context: values[0] % len(context.dst_placements)
    )
    sim, deployment, manager = _deployed(2, grouping)
    done = []
    manager.start()
    deployment.start()
    sim.schedule(0.08, _rescale_with_retry, sim, manager, 4, done)
    with pytest.raises(ReconfigurationError) as err:
        sim.run(until=0.4)
    message = str(err.value)
    assert "T->A" in message
    assert "resize" in message
