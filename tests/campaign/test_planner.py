"""Matrix expansion: cell ids, plan order, near-miss lookup."""

import pytest

from repro.campaign.config import CampaignConfig, CampaignError
from repro.campaign.planner import CellSpec, cell_id, find_cell, plan


def _config(**overrides):
    base = dict(
        name="demo",
        runner="episode",
        matrix={"hybrid": [False, True], "faults": [False, True]},
        defaults={"parallelism": 3},
        seeds=[7],
        source="demo.yaml",
    )
    base.update(overrides)
    return CampaignConfig(**base)


def test_cell_id_formatting():
    assert (
        cell_id({"hybrid": True, "faults": False}, 7)
        == "faults=off,hybrid=on,seed=7"
    )
    # floats render via %g; unsafe characters become dashes
    assert cell_id({"exponent": 1.50, "policy": "a b"}, 0) == (
        "exponent=1.5,policy=a-b,seed=0"
    )
    assert cell_id({"padding": 4000}, 3) == "padding=4000,seed=3"


def test_plan_order_is_sorted_axes_then_file_order_then_seeds():
    cells = plan(_config(matrix={"b": [1, 2], "a": ["x"]}, seeds=[7, 8]))
    assert [cell.id for cell in cells] == [
        "a=x,b=1,seed=7",
        "a=x,b=1,seed=8",
        "a=x,b=2,seed=7",
        "a=x,b=2,seed=8",
    ]


def test_plan_merges_defaults_under_assignment():
    (cell,) = plan(_config(matrix={"parallelism_override": [5]}))
    assert cell.params == {"parallelism": 3, "parallelism_override": 5}
    assert cell.assignment == {"parallelism_override": 5}
    assert cell.seed == 7
    assert cell.runner == "episode"


def test_plan_is_deterministic():
    config = _config(seeds=[1, 2])
    first = [cell.id for cell in plan(config)]
    second = [cell.id for cell in plan(config)]
    assert first == second
    assert len(first) == config.cells_per_seed * 2


def test_plan_rejects_colliding_ids():
    # "on" (string) and True both format to "on" — ids would collide
    config = _config(matrix={"hybrid": ["on", True]})
    with pytest.raises(CampaignError, match="collide"):
        plan(config)


def test_find_cell_exact_and_near_miss():
    cells = plan(_config())
    wanted = "faults=on,hybrid=on,seed=7"
    assert find_cell(cells, wanted).id == wanted
    with pytest.raises(CampaignError) as excinfo:
        find_cell(cells, "hybrid=on,seed=7")  # axis subset: common typo
    message = str(excinfo.value)
    assert "closest planned cells" in message
    # the best hints share the most axis parts with the typo
    assert "hybrid=on" in message


def test_cellspec_round_trips_through_dict():
    (cell,) = plan(_config(matrix={"hybrid": [True]}))
    clone = CellSpec.from_dict(cell.to_dict())
    assert clone == cell
