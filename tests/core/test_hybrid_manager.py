"""Integration: the manager driving hybrid (hot-key splitting) routing.

A flash-crowd workload — correlated tail keys plus one shared hot key
every spout emits — runs under a manager configured with a
:class:`~repro.core.manager.HybridConfig`. The manager must derive the
split set from the collected statistics, re-derive it every round, ship
it inside the routing-table payload, and keep per-key totals exact
across split/unsplit transitions and migrations.
"""

import random
from collections import Counter

from repro.core import Manager, ManagerConfig
from repro.core.manager import HybridConfig
from repro.engine import (
    Cluster,
    CountBolt,
    HybridTableFieldsGrouping,
    Simulator,
    TopologyBuilder,
    deploy,
)
from repro.engine.grouping import HybridTableRouter
from repro.engine.operators import IteratorSpout

N = 3
PER_SPOUT = 20000
HOT_SHARE = 0.4
#: flash keys (ints: the key graph's vertex sort needs one key type
#: per stream, like every workload in this repo)
HOT_A = 999
HOT_B = 1999


def _hot_source(ctx):
    """Spout i mostly emits key i (correlated tail) but 40% of the
    stream is the shared flash key — far above any fair share."""
    rng = random.Random(ctx.instance_index)
    for _ in range(PER_SPOUT):
        if rng.random() < HOT_SHARE:
            yield (HOT_A, HOT_B)
        else:
            a = ctx.instance_index if rng.random() < 0.8 else rng.randrange(N)
            yield (a, a + 100)


def _ground_truth():
    truth_a, truth_b = Counter(), Counter()
    for i in range(N):
        rng = random.Random(i)
        for _ in range(PER_SPOUT):
            if rng.random() < HOT_SHARE:
                truth_a[HOT_A] += 1
                truth_b[HOT_B] += 1
            else:
                a = i if rng.random() < 0.8 else rng.randrange(N)
                truth_a[a] += 1
                truth_b[a + 100] += 1
    return truth_a, truth_b


def _build():
    builder = TopologyBuilder()
    builder.spout("S", lambda: IteratorSpout(_hot_source), parallelism=N)
    builder.bolt(
        "A",
        lambda: CountBolt(0, forward=True),
        parallelism=N,
        inputs={"S": HybridTableFieldsGrouping(0)},
    )
    builder.bolt(
        "B",
        lambda: CountBolt(1, forward=False),
        parallelism=N,
        inputs={"A": HybridTableFieldsGrouping(1)},
    )
    return builder.build()


def _run(hybrid):
    sim = Simulator()
    cluster = Cluster(sim, N)
    deployment = deploy(sim, cluster, _build())
    manager = Manager(
        deployment, ManagerConfig(period_s=0.05, hybrid=hybrid)
    )
    manager.start()
    deployment.start()
    sim.run(until=0.5)
    manager.stop()
    sim.run()  # drain
    return deployment, manager


def _state_totals(deployment, op):
    totals = Counter()
    for executor in deployment.instances(op):
        for key, count in executor.operator.state.items():
            totals[key] += count
    return totals


def _split_routes(deployment, op):
    total = 0
    for executor in deployment.instances(op):
        for edge in executor.out_edges:
            if isinstance(edge.router, HybridTableRouter):
                total += edge.router.split_routes
    return total


class TestHybridManager:
    def test_splits_hot_key_and_conserves_every_total(self):
        deployment, manager = _run(
            HybridConfig(hot_fraction=0.5, split_width=2, max_split_keys=4)
        )

        # The hot key was detected and split on the S->A stream.
        split_rounds = [
            r for r in manager.completed_rounds if "A" in r.split_sets
        ]
        assert split_rounds, "no round ever split a key"
        assert any(
            HOT_A in r.split_sets["A"] for r in split_rounds
        ), "the flash key was never split"
        members = next(
            r.split_sets["A"][HOT_A]
            for r in split_rounds
            if HOT_A in r.split_sets["A"]
        )
        assert len(members) == 2
        assert all(0 <= m < N for m in members)

        # The split set is re-derived every planning round, not set
        # once: it shows up in multiple rounds, and rounds that start
        # with a split table record it for the invariant checkers.
        assert len(split_rounds) >= 2
        assert any(
            HOT_A in r.presplit_keys.get("A", {})
            for r in manager.completed_rounds
        )

        # Split traffic actually flowed through the split path.
        assert _split_routes(deployment, "S") > 0

        # The tentpole correctness claim: exact per-key totals across
        # split/unsplit transitions, consolidations and migrations.
        truth_a, truth_b = _ground_truth()
        assert _state_totals(deployment, "A") == truth_a
        assert _state_totals(deployment, "B") == truth_b

    def test_hot_partials_spread_across_member_instances(self):
        deployment, manager = _run(
            HybridConfig(hot_fraction=0.5, split_width=2, max_split_keys=4)
        )
        # While split, the hot key's state is held as partials on more
        # than one instance (unless the final round consolidated it
        # moments before the drain — accept either, but require that
        # splitting was observed at least once via the round records).
        hot_holders = [
            executor.instance
            for executor in deployment.instances("A")
            if executor.operator.state.get(HOT_A, 0) > 0
        ]
        assert hot_holders, "hot key state vanished"
        assert any(
            HOT_A in r.split_sets.get("A", {})
            for r in manager.completed_rounds
        )

    def test_disabled_hybrid_never_splits(self):
        """hybrid=None on the same topology: HybridTableFieldsGrouping
        degrades to pure table routing — no split sets, no split
        routes, and the totals still exact."""
        deployment, manager = _run(None)
        assert all(not r.split_sets for r in manager.rounds)
        assert all(not r.presplit_keys for r in manager.rounds)
        assert _split_routes(deployment, "S") == 0
        assert _split_routes(deployment, "A") == 0
        truth_a, truth_b = _ground_truth()
        assert _state_totals(deployment, "A") == truth_a
        assert _state_totals(deployment, "B") == truth_b
