"""k-way partitioning by recursive multilevel bisection.

This is the entry point the rest of the library uses as its "Metis".
Targets are proportional (``total * k_side / nparts``) and the global
imbalance bound α is distributed geometrically across recursion levels so
the final partition respects it approximately, as Metis does.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional

from repro.errors import PartitioningError
from repro.partitioning.bisect import multilevel_bisection
from repro.partitioning.graph import Graph

#: Default imbalance bound, matching the Metis default the paper uses
#: (Section 4.3: "α ... is indeed used and set to 1.03").
DEFAULT_IMBALANCE = 1.03


def partition(
    graph: Graph,
    nparts: int,
    imbalance: float = DEFAULT_IMBALANCE,
    seed: int = 0,
    rng: Optional[random.Random] = None,
    kway_refinement: bool = True,
) -> List[int]:
    """Partition ``graph`` into ``nparts`` balanced parts.

    Parameters
    ----------
    graph:
        The weighted graph; vertex weights drive the balance constraint,
        edge weights drive the cut objective.
    nparts:
        Number of parts (>= 1). Part ids are ``0..nparts-1``; some parts
        may be empty in degenerate cases (more parts than vertices).
    imbalance:
        Allowed ratio between the heaviest part and the ideal weight
        ``total / nparts``. Must be >= 1.0.
    seed:
        Seed for the internal RNG (ignored when ``rng`` is given). The
        result is deterministic for a given (graph, nparts, seed).

    Returns
    -------
    list[int]
        ``parts[v]`` is the part of vertex ``v``.
    """
    if nparts < 1:
        raise PartitioningError(f"nparts must be >= 1, got {nparts}")
    if imbalance < 1.0:
        raise PartitioningError(
            f"imbalance must be >= 1.0, got {imbalance}"
        )
    n = graph.num_vertices
    if n == 0:
        return []
    if nparts == 1:
        return [0] * n

    if rng is None:
        rng = random.Random(seed)

    working = graph
    if graph.total_vertex_weight <= 0:
        # All-zero weights make balance meaningless; fall back to
        # unit weights so the recursion still splits by vertex count.
        working = Graph.from_edges(n, graph.edges())

    depth = max(1, math.ceil(math.log2(nparts)))
    level_imbalance = imbalance ** (1.0 / depth)

    parts = [0] * n
    _recurse(
        working,
        list(range(n)),
        nparts,
        0,
        level_imbalance,
        rng,
        parts,
    )
    if kway_refinement and nparts >= 2:
        from repro.partitioning.kway_refine import refine_kway

        refine_kway(working, parts, nparts, imbalance=imbalance)
    return parts


def balance_of(graph: Graph, parts: List[int], nparts: int) -> float:
    """Achieved balance ratio of an assignment: the heaviest part's
    weight over the ideal ``total / nparts``. 1.0 is perfect balance;
    rescale checks compare this against the α bound (plus the
    one-heaviest-vertex granularity slack :func:`partition` allows).
    Zero-weight graphs balance trivially (returns 0.0)."""
    if nparts < 1:
        raise PartitioningError(f"nparts must be >= 1, got {nparts}")
    weights = [0.0] * nparts
    for vertex, part in enumerate(parts):
        if not 0 <= part < nparts:
            raise PartitioningError(
                f"vertex {vertex} assigned to part {part}; "
                f"expected 0..{nparts - 1}"
            )
        weights[part] += graph.vertex_weight(vertex)
    total = sum(weights)
    if total <= 0:
        return 0.0
    return max(weights) / (total / nparts)


def _recurse(
    graph: Graph,
    global_ids: List[int],
    nparts: int,
    part_offset: int,
    level_imbalance: float,
    rng: random.Random,
    out: List[int],
) -> None:
    """Assign parts ``part_offset .. part_offset + nparts - 1`` to the
    vertices of ``graph`` (whose original ids are ``global_ids``)."""
    if graph.num_vertices == 0:
        return
    if nparts == 1:
        for original in global_ids:
            out[original] = part_offset
        return

    left = (nparts + 1) // 2
    right = nparts - left
    total = graph.total_vertex_weight
    target0 = total * left / nparts
    target1 = total - target0
    # Balance is bounded by vertex granularity: like Metis, accept at
    # least one extra heaviest-vertex of slack per side, otherwise tiny
    # graphs (few heavy keys) would be shattered just to meet α.
    max_vertex = max(
        (graph.vertex_weight(v) for v in range(graph.num_vertices)),
        default=0.0,
    )
    max_weights = (
        max(level_imbalance * max(target0, 1e-12), target0 + max_vertex),
        max(level_imbalance * max(target1, 1e-12), target1 + max_vertex),
    )
    halves = multilevel_bisection(graph, target0, max_weights, rng)

    side0 = [v for v in range(graph.num_vertices) if halves[v] == 0]
    side1 = [v for v in range(graph.num_vertices) if halves[v] == 1]
    sub0, picked0 = graph.subgraph(side0)
    sub1, picked1 = graph.subgraph(side1)
    _recurse(
        sub0,
        [global_ids[v] for v in picked0],
        left,
        part_offset,
        level_imbalance,
        rng,
        out,
    )
    _recurse(
        sub1,
        [global_ids[v] for v in picked1],
        right,
        part_offset + left,
        level_imbalance,
        rng,
        out,
    )
