"""Periodic time-series snapshots of a running deployment.

The end-of-run numbers in :class:`~repro.engine.runner.RunResult` hide
the dynamics the paper's Figures 12–14 are about: locality climbing
after a reconfiguration, load balance degrading as a key flashes,
throughput dipping during migration. The probe samples those series
every ``interval_s`` of *simulated* time and emits one ``snapshot``
record per window to the telemetry sink::

    {"type": "snapshot", "ts": 0.35, "window_s": 0.05,
     "locality": 0.91, "window_locality": 0.97,
     "throughput": {"B": 14250.0},              # tuples/s this window
     "load_balance": {"B": 1.08},               # cumulative max/mean
     "streams": {"A->B": {"local": 612, "remote": 41}},   # this window
     "network_bytes": 81234,                    # this window
     "cut_weight": 512.0, "predicted_locality": 0.88}     # last plan

``cut_weight``/``predicted_locality`` come from the registry gauges the
manager sets after each PARTITION step and are omitted until a plan
exists. Windowed values are deltas of the shared registry counters —
the probe keeps only the previous cumulative values, never a second
tally.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.observability.sink import NULL_SINK, TelemetrySink


class SnapshotProbe:
    """Samples locality / load balance / throughput time series.

    Parameters
    ----------
    deployment:
        The running :class:`~repro.engine.runner.Deployment`; supplies
        the simulator clock, the metrics hub and operator parallelisms.
    interval_s:
        Simulated seconds between snapshots.
    sink:
        Where records go; the default null sink makes the probe free to
        leave attached (it also skips sampling entirely).
    """

    def __init__(
        self,
        deployment,
        interval_s: float,
        sink: TelemetrySink = NULL_SINK,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval must be > 0, got {interval_s}")
        self._deployment = deployment
        self._sim = deployment.sim
        self._metrics = deployment.metrics
        self._interval = interval_s
        self._sink = sink
        self._parallelism = {
            op.name: op.parallelism
            for op in deployment.topology.operators.values()
        }
        self._bolts = [op.name for op in deployment.topology.bolts]
        self._last_processed: Dict[str, int] = {}
        self._last_streams: Dict[str, tuple] = {}
        self._last_bytes = 0
        #: every emitted record, newest last (tests and in-process use)
        self.samples: List[dict] = []
        self._started = False

    def start(self) -> None:
        """Arm the periodic sampling (idempotent)."""
        if self._started or not self._sink.enabled:
            return
        self._started = True
        self._rebase()
        self._sim.schedule(self._interval, self._tick, daemon=True)

    def _rebase(self) -> None:
        metrics = self._metrics
        self._last_processed = {
            op: metrics.processed_total(op) for op in self._bolts
        }
        self._last_streams = {
            name: (c.local_tuples, c.remote_tuples)
            for name, c in metrics.streams.items()
        }
        self._last_bytes = self._deployment.cluster.network.bytes_sent

    def _tick(self) -> None:
        metrics = self._metrics
        record = {
            "type": "snapshot",
            "ts": self._sim.now,
            "window_s": self._interval,
            "locality": metrics.locality(),
        }

        streams: Dict[str, Dict[str, int]] = {}
        window_local = 0
        window_total = 0
        for name, counters in metrics.streams.items():
            last_local, last_remote = self._last_streams.get(name, (0, 0))
            local = counters.local_tuples - last_local
            remote = counters.remote_tuples - last_remote
            self._last_streams[name] = (
                counters.local_tuples, counters.remote_tuples
            )
            streams[name] = {"local": local, "remote": remote}
            window_local += local
            window_total += local + remote
        record["streams"] = streams
        record["window_locality"] = (
            window_local / window_total if window_total else 1.0
        )

        throughput = {}
        for op in self._bolts:
            total = metrics.processed_total(op)
            throughput[op] = (
                total - self._last_processed.get(op, 0)
            ) / self._interval
            self._last_processed[op] = total
        record["throughput"] = throughput

        record["load_balance"] = {
            op: metrics.load_balance(op, self._parallelism[op])
            for op in self._bolts
        }

        bytes_sent = self._deployment.cluster.network.bytes_sent
        record["network_bytes"] = bytes_sent - self._last_bytes
        self._last_bytes = bytes_sent

        registry = getattr(metrics, "registry", None)
        if registry is not None:
            for field, gauge_name in (
                ("cut_weight", "reconf_last_cut_weight"),
                ("predicted_locality", "reconf_last_predicted_locality"),
            ):
                gauge = registry.get(gauge_name)
                if gauge is not None:
                    record[field] = gauge.value

        self.samples.append(record)
        self._sink.emit(record)
        self._sim.schedule(self._interval, self._tick, daemon=True)
