"""Discrete-event simulation core.

A minimal, fast event loop: events are ``(time, sequence, callback)``
entries in a binary heap. Ties in time are broken by insertion order,
which gives deterministic FIFO semantics for same-instant events — the
reconfiguration protocol relies on this for its channel ordering.
"""

from __future__ import annotations

import heapq
import zlib
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError


class Event:
    """A scheduled callback. Returned by :meth:`Simulator.schedule` so
    callers can cancel it."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "daemon")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable,
        args: tuple,
        daemon: bool = False,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.daemon = daemon

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time:.6f}, fn={self.fn.__name__}{state})"


class Simulator:
    """Event loop with a simulated clock (seconds as float)."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._now = 0.0
        self._seq = 0
        self._executed = 0
        #: queued non-daemon events (cancelled ones are counted until
        #: their heap entry is popped — cancellation is lazy)
        self._live = 0
        #: optional hook ``fn(event) -> bool`` consulted before each
        #: event runs; returning False consumes the event (it neither
        #: executes nor counts). Used by repro.faults to drop or defer
        #: deliveries; the hook may reschedule the event's callback.
        self.interceptor: Optional[Callable[[Event], bool]] = None
        self.intercepted = 0
        #: opt-in event-sequence fingerprint (see :meth:`enable_fingerprint`)
        self._fp_enabled = False
        self._fp = 0

    # ------------------------------------------------------------------
    # Determinism fingerprint
    # ------------------------------------------------------------------

    def enable_fingerprint(self) -> None:
        """Start folding every executed event into a running CRC.

        The fingerprint covers ``(time, callback qualname)`` of each
        executed event — enough to detect any divergence in event
        *ordering* or *timing* between two runs. It deliberately avoids
        ``hash()`` (randomized per process for strings) so that the same
        seed yields the same fingerprint across processes; the replay
        layer (repro.testing) compares it to certify that a repro bundle
        reproduced the identical event sequence.
        """
        self._fp_enabled = True

    @property
    def fingerprint(self) -> int:
        """Running CRC of the executed event sequence (0 until enabled)."""
        return self._fp

    def _fp_update(self, event: Event) -> None:
        fn = event.fn
        name = getattr(fn, "__qualname__", None) or getattr(
            fn, "__name__", "<callable>"
        )
        data = f"{event.time!r}:{name}".encode()
        self._fp = zlib.crc32(data, self._fp)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        return self._executed

    @property
    def pending_events(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def stats(self) -> dict:
        """Event-loop health counters, exported by the telemetry layer
        (a large ``pending`` at flush time means the run was cut off
        mid-transient; ``intercepted`` counts fault-consumed events)."""
        return {
            "now": self._now,
            "events_executed": self._executed,
            "events_pending": self.pending_events,
            "events_intercepted": self.intercepted,
        }

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(
        self, delay: float, fn: Callable, *args: Any, daemon: bool = False
    ) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        ``daemon`` events never keep the loop alive: a drain-style
        :meth:`run` (no ``until``) stops once only daemon events remain.
        Use it for self-rescheduling periodic probes (samplers,
        telemetry snapshots) that would otherwise make a drain run
        forever.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        return self.schedule_at(self._now + delay, fn, *args, daemon=daemon)

    def schedule_at(
        self, time: float, fn: Callable, *args: Any, daemon: bool = False
    ) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before now={self._now}"
            )
        event = Event(time, self._seq, fn, args, daemon=daemon)
        self._seq += 1
        if not daemon:
            self._live += 1
        heapq.heappush(self._heap, event)
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Run the next event. Returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.daemon:
                self._live -= 1
            if event.cancelled:
                continue
            self._now = event.time
            if self.interceptor is not None and not self.interceptor(event):
                self.intercepted += 1
                continue
            self._executed += 1
            if self._fp_enabled:
                self._fp_update(event)
            event.fn(*event.args)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events until the queue drains, the clock passes ``until``,
        or ``max_events`` have executed. Returns the number executed.

        Daemon events (see :meth:`schedule`) don't count as work: a
        drain run (``until=None``) stops as soon as only daemon events
        remain queued.

        When stopping at ``until``, the clock is advanced to exactly
        ``until`` (events after it stay queued).
        """
        executed = 0
        heap = self._heap
        while heap:
            if until is None and self._live <= 0:
                break
            event = heap[0]
            if event.cancelled:
                heapq.heappop(heap)
                if not event.daemon:
                    self._live -= 1
                continue
            if until is not None and event.time > until:
                break
            if max_events is not None and executed >= max_events:
                break
            heapq.heappop(heap)
            if not event.daemon:
                self._live -= 1
            self._now = event.time
            if self.interceptor is not None and not self.interceptor(event):
                self.intercepted += 1
                continue
            self._executed += 1
            executed += 1
            if self._fp_enabled:
                self._fp_update(event)
            event.fn(*event.args)
        if until is not None and until > self._now:
            self._now = until
        return executed
