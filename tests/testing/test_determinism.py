"""Determinism regression: same seed ⇒ identical trace.

Every record the telemetry layer emits is stamped with the *simulated*
clock only (DESIGN.md §8.3) — there are no wall-clock fields to strip —
so two same-seed runs must produce byte-identical telemetry and the
same event-sequence fingerprint, in this process and (checked via a
subprocess with a different ``PYTHONHASHSEED``) across processes.
"""

import json
import os
import subprocess
import sys

from repro.testing import RngTree, generate_config, run_episode

SEED = 1


def _telemetry_jsonl(result):
    return "\n".join(
        json.dumps(record, sort_keys=True, default=str)
        for record in result.sink.records
    )


def test_same_seed_identical_telemetry_and_fingerprint():
    tree = RngTree(0)
    first = run_episode(generate_config(tree, SEED))
    second = run_episode(generate_config(tree, SEED))
    assert first.fingerprint == second.fingerprint
    assert _telemetry_jsonl(first) == _telemetry_jsonl(second)
    assert [v.to_dict() for v in first.violations] == [
        v.to_dict() for v in second.violations
    ]


def test_different_seeds_diverge():
    tree = RngTree(0)
    first = run_episode(generate_config(tree, 0))
    second = run_episode(generate_config(tree, 2))
    assert first.fingerprint != second.fingerprint


def test_fingerprint_stable_across_hash_randomization():
    """Replaying in a fresh interpreter with a different hash seed must
    not change the event sequence (the property bare ``hash()`` or
    set-iteration order anywhere in the hot path would break)."""
    script = (
        "from repro.testing import RngTree, generate_config, run_episode;"
        f"r = run_episode(generate_config(RngTree(0), {SEED}));"
        "print(r.fingerprint, r.telemetry_records)"
    )
    import repro

    src_dir = os.path.dirname(os.path.dirname(repro.__file__))
    outputs = set()
    for hash_seed in ("1", "421"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [env.get("PYTHONPATH"), src_dir])
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        outputs.add(proc.stdout.strip())
    assert len(outputs) == 1, outputs
    in_process = run_episode(generate_config(RngTree(0), SEED))
    expected = f"{in_process.fingerprint} {in_process.telemetry_records}"
    assert outputs == {expected}
