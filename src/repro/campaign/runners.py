"""What one campaign cell runs.

Three runners are registered:

``episode``
    A fuzz-grade deployment episode (``repro.testing``): PairsWorkload
    topology, periodic reconfiguration, the full invariant suite armed,
    simulator event fingerprint enabled. Boolean axes toggle features —
    ``hybrid`` (hot-key splitting), ``rescale`` (scripted mid-stream
    rescales), ``faults`` (a conservation-safe chaos plan),
    ``delta_propagation`` and ``compact_tables`` (wire-format flags) —
    while structured sub-configs (the fault plan, the rescale schedule,
    the hybrid knobs) are drawn deterministically from the cell seed,
    so the same cell id always runs the identical episode and must
    reproduce the identical fingerprint.

``fig13``
    One (bandwidth, padding) point of the Figure 13 locality sweep,
    with and without reconfiguration, ported from
    ``benchmarks/bench_fig13.py``.

``skew``
    One (exponent, flash_share, policy) point of the PR 6 skew
    experiment, ported from the ``skew`` figure.

Every runner returns a :class:`CellOutcome` whose ``metrics`` follow
the ``tools/bench_record.py`` axis convention (``*_per_s`` higher is
better; unsuffixed metrics get their direction from the campaign's
``axes:`` mapping).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

#: EpisodeConfig scalar fields a campaign may set directly (defaults
#: or matrix axes); feature toggles and seeds are handled separately.
EPISODE_PARAMS = (
    "parallelism",
    "keys",
    "exponent",
    "correlation",
    "tuples_per_instance",
    "period_s",
    "round_timeout_s",
    "rpc_latency_s",
    "imbalance",
    "until_s",
)

#: boolean feature toggles of the episode runner
EPISODE_FLAGS = (
    "hybrid",
    "rescale",
    "faults",
    "delta_propagation",
    "compact_tables",
)

#: non-boolean episode extras: ``inject`` arms a deliberate bug
#: (harness self-test, mirrors ``python -m repro.testing.fuzz --inject``)
EPISODE_EXTRAS = ("inject",)


@dataclass
class CellOutcome:
    """What one cell produced (worker-side; JSON-serializable)."""

    metrics: Dict[str, float] = field(default_factory=dict)
    #: simulator event-sequence fingerprint (episode cells), hex string
    fingerprint: Optional[str] = None
    violations: List[dict] = field(default_factory=list)
    #: repro bundle payload for a failing episode cell (written next to
    #: the report by the worker so the failure replays anywhere)
    bundle: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return not self.violations


def _unknown(params: Dict[str, Any], allowed: set, runner: str) -> None:
    extra = sorted(set(params) - allowed)
    if extra:
        raise ValueError(
            f"{runner} runner got unknown parameter(s) "
            f"{', '.join(map(repr, extra))}; allowed: {sorted(allowed)}"
        )


def episode_config(params: Dict[str, Any], seed: int):
    """Derive the deterministic EpisodeConfig for one cell.

    Unlike the fuzz driver's ``generate_config`` (which randomizes the
    episode *shape*), a campaign cell is explicit: scalars come from
    the campaign file, and only the structured sub-plans — fault plan,
    rescale schedule, hybrid knobs — are drawn, each from its own
    seed-rooted RNG stream so cell id → episode is a pure function.
    """
    from repro.faults import fault_plan_to_dict, generate_fault_plan
    from repro.testing.episode import EpisodeConfig
    from repro.testing.rng import RngTree

    _unknown(
        params,
        set(EPISODE_PARAMS) | set(EPISODE_FLAGS) | set(EPISODE_EXTRAS),
        "episode",
    )
    config = EpisodeConfig(seed=seed)
    for name in EPISODE_PARAMS:
        if name in params:
            setattr(config, name, params[name])
    config.delta_propagation = bool(params.get("delta_propagation", True))
    config.compact_tables = bool(params.get("compact_tables", False))
    config.inject = params.get("inject")

    tree = RngTree(seed)
    if params.get("faults", False):
        plan = generate_fault_plan(
            tree.rng("campaign", "faults"),
            ops=("A", "B"),
            parallelism=config.parallelism,
            servers=config.parallelism,
            max_rules=4,
            allow_crashes=False,
            horizon_s=config.until_s,
        )
        config.fault_plan = fault_plan_to_dict(plan)
    if params.get("rescale", False):
        rng = tree.rng("campaign", "rescale")
        actions = []
        for _ in range(rng.choice((1, 1, 2))):
            at_s = rng.uniform(0.05, config.until_s * 0.8)
            target = rng.choice((1, 2, 3, 4, 5))
            actions.append([round(at_s, 6), target])
        config.rescales = sorted(actions)
    if params.get("hybrid", False):
        rng = tree.rng("campaign", "hybrid")
        config.hybrid = [
            round(rng.uniform(0.3, 0.8), 6),  # hot_fraction
            rng.choice((2, 2, 3)),  # split_width
            rng.choice((2, 4, 8)),  # max_split_keys
        ]
    return config


def run_episode_cell(params: Dict[str, Any], seed: int) -> CellOutcome:
    from repro.testing.bundle import bundle_data
    from repro.testing.episode import run_episode

    config = episode_config(params, seed)
    result = run_episode(config)
    sim_s = result.sim_now_s or 1.0
    metrics = {
        "sim_tuples_per_s": result.tuples_processed / sim_s,
        "rounds_total": float(result.rounds),
        "rounds_completed": float(result.rounds_completed),
        "rounds_aborted": float(result.rounds_aborted),
        "faults_injected": float(result.faults_injected),
        "violations": float(len(result.violations)),
    }
    return CellOutcome(
        metrics=metrics,
        fingerprint=f"{result.fingerprint:#010x}",
        violations=[v.to_dict() for v in result.violations],
        bundle=bundle_data(result) if result.violations else None,
    )


def run_fig13_cell(params: Dict[str, Any], seed: int) -> CellOutcome:
    from repro.analysis.experiments import fig13

    _unknown(
        params,
        {"bandwidth_gbps", "padding", "parallelism", "quick"},
        "fig13",
    )
    rows = fig13(
        bandwidths=[float(params["bandwidth_gbps"])],
        paddings=[int(params["padding"])],
        parallelism=int(params.get("parallelism", 6)),
        quick=bool(params.get("quick", True)),
    )
    with_reconf = next(r for r in rows if r["reconfigure"])
    without = next(r for r in rows if not r["reconfigure"])
    after_with = with_reconf["mean_after_first_reconf"]
    after_without = without["mean_after_first_reconf"]
    return CellOutcome(
        metrics={
            "after_with_reconf_per_s": after_with,
            "after_without_reconf_per_s": after_without,
            "before_with_reconf_per_s": with_reconf[
                "mean_before_first_reconf"
            ],
            "reconf_gain": after_with / after_without if after_without else 0.0,
            "rounds_completed": float(with_reconf["rounds"]),
        }
    )


def run_skew_cell(params: Dict[str, Any], seed: int) -> CellOutcome:
    from repro.analysis.experiments import skew

    _unknown(
        params,
        {"exponent", "flash_share", "policy", "parallelism"},
        "skew",
    )
    rows = skew(
        exponents=[float(params["exponent"])],
        flash_shares=[float(params["flash_share"])],
        policies=[str(params["policy"])],
        parallelism=int(params.get("parallelism", 4)),
    )
    (row,) = rows
    return CellOutcome(
        metrics={
            "tuples_per_s": row["throughput"],
            "locality": row["locality"],
            "load_balance": row["load_balance"],
        }
    )


RUNNERS: Dict[str, Callable[[Dict[str, Any], int], CellOutcome]] = {
    "episode": run_episode_cell,
    "fig13": run_fig13_cell,
    "skew": run_skew_cell,
}


def run_cell(runner: str, params: Dict[str, Any], seed: int) -> CellOutcome:
    """Dispatch one cell to its registered runner."""
    try:
        fn = RUNNERS[runner]
    except KeyError:
        raise ValueError(
            f"unknown runner {runner!r}; one of {sorted(RUNNERS)}"
        ) from None
    return fn(params, seed)
