"""The flow model must agree with the discrete-event simulation."""

import pytest

from repro.engine import RunConfig, run
from repro.engine.flow import (
    FlowStage,
    predict_throughput,
    synthetic_stages,
)
from repro.workloads import SyntheticConfig, SyntheticWorkload


def test_validation():
    with pytest.raises(ValueError):
        predict_throughput([], 2)
    with pytest.raises(ValueError):
        predict_throughput([FlowStage("S", "spout")], 0)
    with pytest.raises(ValueError):
        synthetic_stages(2, 0.5, 0, "magic")


def test_cpu_bound_chain():
    stages = [
        FlowStage("S", "spout", out_bytes=100, remote_out=0.0),
        FlowStage("A", "bolt", out_bytes=100, remote_in=0.0, remote_out=0.0),
        FlowStage("B", "bolt", out_bytes=0, remote_in=0.0),
    ]
    prediction = predict_throughput(stages, 4, bandwidth_gbps=10.0)
    # Fully local: the 9 µs bolt service is the bottleneck.
    assert prediction.bottleneck.startswith("cpu:")
    assert prediction.throughput == pytest.approx(4 / 9e-6, rel=1e-6)


def test_nic_bound_chain():
    stages = [
        FlowStage("S", "spout", out_bytes=20000, remote_out=1.0),
        FlowStage(
            "A", "bolt", out_bytes=20000, remote_in=1.0, remote_out=1.0
        ),
        FlowStage("B", "bolt", out_bytes=0, remote_in=1.0),
    ]
    prediction = predict_throughput(stages, 4, bandwidth_gbps=1.0)
    assert prediction.bottleneck == "nic"
    # 40 kB remote per tuple at 125 MB/s per NIC direction.
    assert prediction.throughput == pytest.approx(
        4 * 1e9 / 8 / 40000, rel=1e-6
    )


def test_infinite_bandwidth_skips_nic():
    stages = [FlowStage("S", "spout", out_bytes=1000, remote_out=1.0)]
    prediction = predict_throughput(stages, 2, bandwidth_gbps=None)
    assert all(name.startswith("cpu") for name, _ in prediction.capacities)


@pytest.mark.parametrize(
    "parallelism,locality,padding,policy",
    [
        (1, 1.0, 0, "locality-aware"),
        (4, 1.0, 0, "locality-aware"),
        (4, 1.0, 20000, "locality-aware"),
        (4, 0.6, 20000, "locality-aware"),
        (4, 0.6, 0, "hash-based"),
        (4, 0.6, 20000, "hash-based"),
        (6, 0.8, 8000, "hash-based"),
        (4, 0.8, 8000, "worst-case"),
    ],
)
def test_flow_model_matches_des(parallelism, locality, padding, policy):
    """Closed form vs simulation.

    locality-aware traffic is homogeneous across instances, so the
    symmetric model is tight (8%). The hash/worst permutations make
    per-instance service times heterogeneous (the permutation's fixed
    point pays no deserialization), and the sum of per-instance rates
    exceeds n / mean-service — the DES legitimately runs a bit faster
    than the symmetric closed form, so those get a looser band.
    """
    prediction = predict_throughput(
        synthetic_stages(parallelism, locality, padding, policy),
        parallelism,
        bandwidth_gbps=10.0,
    )
    workload = SyntheticWorkload(
        SyntheticConfig(
            parallelism=parallelism, locality=locality, padding=padding
        )
    )
    result = run(
        workload.topology(policy),
        RunConfig(
            duration_s=0.25, warmup_s=0.1, num_servers=parallelism
        ),
    )
    tolerance = 0.08 if policy == "locality-aware" else 0.25
    assert result.throughput == pytest.approx(
        prediction.throughput, rel=tolerance
    )


def _remotes(stages):
    sa = next(s for s in stages if s.name == "A")
    ab = next(s for s in stages if s.name == "B")
    return sa.remote_in, ab.remote_in


def test_hybrid_policy_with_no_hot_share_matches_locality_aware():
    hybrid = synthetic_stages(4, 0.6, 0, "hybrid", hot_share=0.0)
    table = synthetic_stages(4, 0.6, 0, "locality-aware")
    assert _remotes(hybrid) == pytest.approx(_remotes(table))


def test_hybrid_policy_remote_fractions():
    """Split traffic pays hash-like spread (1 - 1/n) on both hops;
    tail traffic keeps the table's locality on the keyed hop."""
    n, locality, hot = 4, 0.6, 0.3
    spread = 1 - 1 / n
    sa_remote, ab_remote = _remotes(
        synthetic_stages(n, locality, 0, "hybrid", hot_share=hot)
    )
    assert sa_remote == pytest.approx(hot * spread)
    assert ab_remote == pytest.approx(
        (1 - hot) * (1 - locality) + hot * spread
    )


def test_hybrid_policy_all_hot_is_all_spread():
    sa_remote, ab_remote = _remotes(
        synthetic_stages(4, 0.6, 0, "hybrid", hot_share=1.0)
    )
    assert sa_remote == pytest.approx(0.75)
    assert ab_remote == pytest.approx(0.75)


def test_hybrid_policy_single_instance_is_fully_local():
    sa_remote, ab_remote = _remotes(
        synthetic_stages(1, 0.6, 0, "hybrid", hot_share=0.8)
    )
    assert sa_remote == 0.0
    assert ab_remote == 0.0


def test_hybrid_policy_rejects_bad_hot_share():
    with pytest.raises(ValueError):
        synthetic_stages(4, 0.6, 0, "hybrid", hot_share=1.5)
    with pytest.raises(ValueError):
        synthetic_stages(4, 0.6, 0, "hybrid", hot_share=-0.1)
