"""Tests for assignment planning: tables, predicted locality,
migration lists."""

import pytest

from repro.core import (
    KeyGraph,
    RoutingTable,
    compute_assignment,
    expected_locality,
    plan_reconfiguration,
)
from repro.core.assignment import RoutedStream
from repro.errors import ReconfigurationError


def _paper_figure5_graph():
    graph = KeyGraph()
    graph.add_pair("S->A", "Asia", "A->B", "#java", 3463)
    graph.add_pair("S->A", "Asia", "A->B", "#ruby", 3011)
    graph.add_pair("S->A", "Asia", "A->B", "#python", 969)
    graph.add_pair("S->A", "Oceania", "A->B", "#java", 1201)
    graph.add_pair("S->A", "Oceania", "A->B", "#ruby", 881)
    graph.add_pair("S->A", "Oceania", "A->B", "#python", 3108)
    return graph


def test_compute_assignment_covers_all_keys():
    graph = _paper_figure5_graph()
    assignment = compute_assignment(graph, 2, seed=1)
    assert len(assignment.parts) == 5  # 2 locations + 3 hashtags
    assert set(assignment.parts.values()) <= {0, 1}


def test_figure5_assignment_matches_paper():
    """Asia + #java + #ruby on one server, Oceania + #python on the
    other (Section 3.3)."""
    graph = _paper_figure5_graph()
    assignment = compute_assignment(graph, 2, imbalance=1.3, seed=0)
    asia = assignment.server_of("S->A", "Asia")
    assert assignment.server_of("A->B", "#java") == asia
    assert assignment.server_of("A->B", "#ruby") == asia
    oceania = assignment.server_of("S->A", "Oceania")
    assert assignment.server_of("A->B", "#python") == oceania
    assert asia != oceania
    locality = expected_locality(graph, assignment)
    assert locality == pytest.approx(
        (3463 + 3011 + 3108) / 12633, rel=1e-6
    )


def test_assignment_invalid_parts():
    with pytest.raises(ReconfigurationError):
        compute_assignment(KeyGraph(), 0)


def test_expected_locality_empty_graph():
    graph = KeyGraph()
    assignment = compute_assignment(graph, 2)
    assert expected_locality(graph, assignment) == 1.0


def test_max_edges_truncation_changes_graph():
    graph = KeyGraph()
    for i in range(20):
        graph.add_pair("in", i, "out", i + 100, 100 - i)
    assignment = compute_assignment(graph, 2, max_edges=5)
    # Only keys from the 5 heaviest pairs are assigned.
    assert len(assignment.parts) == 10


def test_table_for_maps_servers_to_instances():
    graph = KeyGraph()
    graph.add_pair("S->A", "a", "A->B", "b", 10)
    assignment = compute_assignment(graph, 2, seed=0)
    table = assignment.table_for("S->A", {0: 5, 1: 7})
    assert table.lookup("a") in (5, 7)


def test_table_for_missing_server_raises():
    graph = KeyGraph()
    graph.add_pair("S->A", "a", "A->B", "b", 10)
    graph.add_pair("S->A", "c", "A->B", "d", 10)
    assignment = compute_assignment(graph, 2, seed=0)
    with pytest.raises(ReconfigurationError):
        assignment.table_for("S->A", {0: 0})  # server 1 unmapped


def _streams(n):
    return [
        RoutedStream("S->A", "S", "A", list(range(n)), stateful_dst=True),
        RoutedStream("A->B", "A", "B", list(range(n)), stateful_dst=True),
    ]


def test_plan_reconfiguration_produces_tables_for_all_streams():
    graph = _paper_figure5_graph()
    plan = plan_reconfiguration(graph, _streams(2), 2, {}, imbalance=1.3)
    assert set(plan.tables) == {"S->A", "A->B"}
    assert len(plan.tables["S->A"]) == 2
    assert len(plan.tables["A->B"]) == 3
    assert 0.0 < plan.predicted_locality <= 1.0


def test_plan_migrations_against_hash_fallback():
    """First plan ever: keys move from their hash owners to their
    table owners."""
    graph = _paper_figure5_graph()
    streams = _streams(2)
    plan = plan_reconfiguration(graph, streams, 2, {}, imbalance=1.3)
    # Every key whose table owner differs from its hash owner must be
    # migrated; keys matching their hash owner must not.
    for stream in streams:
        table = plan.tables[stream.name]
        moved = {
            key
            for per_pair in [plan.migrations.get(stream.dst_op, {})]
            for keys in per_pair.values()
            for key in keys
            if key in table
        }
        for key, owner in table.items():
            if stream.fallback_instance(key) != owner:
                assert key in moved
            else:
                assert key not in moved


def test_plan_second_round_migrates_only_diffs():
    graph = _paper_figure5_graph()
    streams = _streams(2)
    first = plan_reconfiguration(graph, streams, 2, {}, imbalance=1.3)
    second = plan_reconfiguration(
        graph, streams, 2, first.tables, imbalance=1.3, seed=0
    )
    # Same data, same seed: the partition is identical up to part
    # relabeling; migrations only occur if labels flipped.
    if second.tables == first.tables:
        assert second.total_moved_keys() == 0


def test_plan_stateless_destination_has_no_migrations():
    graph = _paper_figure5_graph()
    streams = [
        RoutedStream("S->A", "S", "A", [0, 1], stateful_dst=False),
        RoutedStream("A->B", "A", "B", [0, 1], stateful_dst=True),
    ]
    plan = plan_reconfiguration(graph, streams, 2, {}, imbalance=1.3)
    assert "A" not in plan.migrations


def test_routed_stream_rejects_two_instances_per_server():
    stream = RoutedStream("S->A", "S", "A", [0, 0])
    with pytest.raises(ReconfigurationError):
        stream.server_to_instance()


def test_fallback_matches_engine_seed():
    """The planner's hash fallback must agree with the engine router."""
    from repro.engine.grouping import (
        RouterContext,
        TableFieldsGrouping,
        stable_hash,
    )

    stream = RoutedStream("A->B", "A", "B", [0, 1, 2])
    router = TableFieldsGrouping(0).build_router(
        RouterContext("A->B", 0, 0, [0, 1, 2], stable_hash("A->B"))
    )
    for key in ["asia", "#java", 42, ("t", 1)]:
        assert router.select((key,)) == [stream.fallback_instance(key)]
