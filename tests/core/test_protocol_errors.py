"""Protocol error paths of the reconfiguration agent, unit-tested
message by message: duplicate/excess/stale PROPAGATE, stale and
duplicated MIGRATE (state installed exactly once, never destroyed),
and unexpected control kinds.

Also the regression test for routing-table payload addressing: stream
names are labels, not ``src->dst`` strings to be parsed.
"""

import random

import pytest

from repro.core import Manager, ManagerConfig
from repro.core.reconfiguration import (
    MIGRATE,
    PROPAGATE,
    MigratePayload,
    PoiReconfiguration,
)
from repro.engine import (
    Cluster,
    CountBolt,
    Simulator,
    TableFieldsGrouping,
    TopologyBuilder,
    deploy,
)
from repro.engine.executor import ControlMessage
from repro.engine.operators import IteratorSpout
from repro.errors import ReconfigurationError

N = 3
PER_SPOUT = 6000


def _source(ctx):
    rng = random.Random(ctx.instance_index)
    for _ in range(PER_SPOUT):
        a = ctx.instance_index if rng.random() < 0.8 else rng.randrange(N)
        yield (a, a + 100)


def _build(stream_names=("S->A", "A->B")):
    builder = TopologyBuilder()
    builder.spout("S", lambda: IteratorSpout(_source), parallelism=N)
    builder.bolt("A", lambda: CountBolt(0, forward=True), parallelism=N)
    builder.bolt("B", lambda: CountBolt(1, forward=False), parallelism=N)
    builder.stream("S", "A", TableFieldsGrouping(0), name=stream_names[0])
    builder.stream("A", "B", TableFieldsGrouping(1), name=stream_names[1])
    return builder.build()


def _deployed(**kwargs):
    sim = Simulator()
    deployment = deploy(sim, Cluster(sim, N), _build(**kwargs))
    manager = Manager(deployment, ManagerConfig(period_s=None))
    return sim, deployment, manager


def _propagate(agent, round_id, sender):
    agent.handle(
        ControlMessage(PROPAGATE, round_id, sender=sender), agent.executor
    )


def _migrate(agent, round_id, sender, keys, entries):
    agent.handle(
        ControlMessage(
            MIGRATE, MigratePayload(round_id, keys, entries), sender=sender
        ),
        agent.executor,
    )


class TestPropagatePaths:
    def test_applies_only_after_all_distinct_predecessors(self):
        sim, deployment, manager = _deployed()
        agent = manager._agents[("A", 0)]  # needs all N spout instances
        agent.on_reconf(PoiReconfiguration(round_id=1))

        _propagate(agent, 1, "S[0]")
        _propagate(agent, 1, "S[0]")  # duplicate sender: absorbed
        assert agent.anomalies["duplicate_propagate"] == 1
        assert agent._applied_round != 1

        _propagate(agent, 1, "S[1]")
        assert agent._applied_round != 1  # still one short

        _propagate(agent, 1, "S[2]")
        assert agent._applied_round == 1
        sim.run()  # flush forwarded PROPAGATEs

    def test_excess_propagate_after_apply_is_absorbed(self):
        sim, deployment, manager = _deployed()
        agent = manager._agents[("A", 0)]
        agent.on_reconf(PoiReconfiguration(round_id=1))
        for i in range(N):
            _propagate(agent, 1, f"S[{i}]")
        assert agent._applied_round == 1
        # expected_migrations == 0: the round finished at apply time,
        # so a late extra PROPAGATE is stale, not an error.
        assert not agent.busy
        _propagate(agent, 1, "S[0]")
        assert agent.anomalies["stale_propagate"] == 1
        sim.run()

    def test_propagate_without_pending_round_is_stale(self):
        sim, deployment, manager = _deployed()
        agent = manager._agents[("A", 1)]
        _propagate(agent, 7, "S[0]")
        assert agent.anomalies["stale_propagate"] == 1
        assert not agent.busy

    def test_propagate_for_wrong_round_is_stale(self):
        sim, deployment, manager = _deployed()
        agent = manager._agents[("A", 0)]
        agent.on_reconf(PoiReconfiguration(round_id=3))
        _propagate(agent, 2, "S[0]")  # aborted round's leftover
        assert agent.anomalies["stale_propagate"] == 1
        assert agent._propagated_from == set()


class TestMigratePaths:
    def test_stale_migrate_still_installs_state(self):
        # "Never destroy state": counts from an aborted round's MIGRATE
        # must land, or the per-key totals invariant breaks.
        sim, deployment, manager = _deployed()
        agent = manager._agents[("B", 0)]
        bolt = deployment.executor("B", 0).operator
        _migrate(agent, 99, "B[1]", [105], {105: 7})
        assert bolt.state.get(105) == 7
        assert agent.anomalies["stale_migrate"] == 1

    def test_duplicate_migrate_installs_once(self):
        sim, deployment, manager = _deployed()
        agent = manager._agents[("B", 0)]
        bolt = deployment.executor("B", 0).operator
        _migrate(agent, 99, "B[1]", [105], {105: 7})
        _migrate(agent, 99, "B[1]", [105], {105: 7})  # exact redelivery
        assert bolt.state.get(105) == 7  # not 14
        assert agent.anomalies["duplicate_migrate"] == 1

    def test_migrate_counts_only_toward_its_own_round(self):
        sim, deployment, manager = _deployed()
        agent = manager._agents[("B", 0)]
        agent.on_reconf(
            PoiReconfiguration(round_id=5, expected_migrations=1)
        )
        _migrate(agent, 4, "B[1]", [105], {105: 2})  # stale
        assert agent._migrations == 0
        assert agent.busy  # round 5 still waiting
        _migrate(agent, 5, "B[2]", [106], {106: 3})
        assert agent._migrations == 1

    def test_unexpected_control_kind_raises(self):
        sim, deployment, manager = _deployed()
        executor = deployment.executor("A", 0)
        with pytest.raises(ReconfigurationError):
            executor.control_handler(
                ControlMessage("BOGUS", None, sender="test"), executor
            )


class TestPayloadAddressing:
    def test_streams_with_custom_names_are_routed_by_metadata(self):
        # Regression: _build_payloads used to split the stream name on
        # "->" to find the source operator, which breaks the moment a
        # stream has a label that is not "src->dst".
        sim, deployment, manager = _deployed(
            stream_names=("ingest", "pairs")
        )
        deployment.start()
        sim.run(until=0.05)
        done = []
        assert manager.reconfigure(on_complete=done.append) is True
        sim.run(until=0.2)
        assert len(done) == 1
        assert done[0].completed_at is not None
        assert set(manager.current_tables) <= {"ingest", "pairs"}
        assert manager.current_tables  # tables actually installed
        for executor in deployment.instances("S"):
            assert executor.table_router("ingest").table is not None
        sim.run()
        assert deployment.metrics.processed_total("B") == N * PER_SPOUT

    def test_plan_for_unknown_stream_is_rejected(self):
        from repro.core.assignment import ReconfigurationPlan
        from repro.core.routing_table import RoutingTable

        sim, deployment, manager = _deployed()
        plan = ReconfigurationPlan(
            tables={"nope": RoutingTable({})},
            migrations={},
            predicted_locality=1.0,
        )
        with pytest.raises(ReconfigurationError):
            manager._build_payloads(plan)
