"""Failure and fallback paths of the trace-driven evaluator.

``test_trace_eval.py`` covers the happy paths; here we pin the
behaviour at the seams: partial table sets (one hop routed, one
hashed), table misses falling back to hashing, worst-case load
concentration, sketch budgets far below the distinct-pair count, and
degenerate ``weekly_series`` invocations.
"""

import pytest

from repro.analysis.trace_eval import TwoHopEvaluator, weekly_series
from repro.core.routing_table import RoutingTable
from repro.errors import WorkloadError


def test_zero_servers_rejected():
    with pytest.raises(WorkloadError):
        TwoHopEvaluator(0)
    with pytest.raises(WorkloadError):
        TwoHopEvaluator(-3)


def test_partial_tables_fall_back_to_hashing_and_count_unseen():
    """A table for the first hop only: the second hop hashes, and
    every pair counts as unseen (its second key missed the tables)."""
    evaluator = TwoHopEvaluator(2)
    pairs = [("a", "x"), ("b", "y")] * 5
    tables = {evaluator.first_hop.name: RoutingTable({"a": 0, "b": 1})}
    result = evaluator.evaluate(pairs, tables)
    assert result.pairs == 10
    assert result.unseen_fraction == 1.0
    # First hop honoured the table exactly.
    assert result.loads_first == [5, 5]
    # Second hop still routed every tuple somewhere valid.
    assert sum(result.loads_second) == 10


def test_table_miss_on_some_keys_is_partial_unseen():
    evaluator = TwoHopEvaluator(2)
    pairs = [("a", "x"), ("c", "x"), ("a", "x"), ("a", "x")]
    tables = {
        evaluator.first_hop.name: RoutingTable({"a": 0}),  # "c" missing
        evaluator.second_hop.name: RoutingTable({"x": 0}),
    }
    result = evaluator.evaluate(pairs, tables)
    assert result.unseen_fraction == pytest.approx(1 / 4)


def test_hash_only_run_reports_no_unseen():
    """Without tables there is nothing to miss: unseen stays 0 even
    though every key is 'unknown'."""
    evaluator = TwoHopEvaluator(3)
    result = evaluator.evaluate([("a", "x"), ("b", "y")], tables=None)
    assert result.unseen_fraction == 0.0


def test_total_concentration_hits_worst_load_balance():
    """Every pair on one key: load balance degrades to num_servers
    exactly (max load == total, mean == total / n)."""
    evaluator = TwoHopEvaluator(4)
    tables = {
        evaluator.first_hop.name: RoutingTable({"k": 2}),
        evaluator.second_hop.name: RoutingTable({"v": 2}),
    }
    result = evaluator.evaluate([("k", "v")] * 20, tables)
    assert result.load_balance == pytest.approx(4.0)
    assert result.locality == 1.0
    assert result.loads_first == [0, 0, 20, 0]


def test_plan_tables_with_tiny_sketch_still_yields_valid_tables():
    """A SpaceSaving budget far below the distinct-pair count must
    degrade accuracy, not correctness: tables stay within range and
    the evaluator accepts them."""
    evaluator = TwoHopEvaluator(2)
    pairs = [(f"k{i}", f"v{i}") for i in range(50)] * 3
    tables, predicted = evaluator.plan_tables(pairs, sketch_capacity=4)
    for table in tables.values():
        if not table.empty():
            assert 0 <= table.max_instance() < 2
    assert 0.0 <= predicted <= 1.0
    result = evaluator.evaluate(pairs, tables)
    assert result.pairs == 150
    assert 0.0 <= result.locality <= 1.0


def test_plan_tables_max_edges_one_keeps_only_heaviest_pair():
    evaluator = TwoHopEvaluator(2)
    pairs = [("hot", "hot2")] * 30 + [("a", "x"), ("b", "y")]
    tables, _ = evaluator.plan_tables(pairs, max_edges=1)
    table1 = tables[evaluator.first_hop.name]
    table2 = tables[evaluator.second_hop.name]
    assert table1.lookup("hot") is not None
    assert table2.lookup("hot2") is not None
    # The truncated keys are absent and will hash at run time.
    assert table1.lookup("a") is None
    assert table2.lookup("y") is None
    assert table1.lookup("hot") == table2.lookup("hot2")


def test_weekly_series_zero_weeks_is_empty():
    assert weekly_series(lambda w: [], 0, 2, "online") == []


def test_weekly_series_empty_weeks_do_not_crash_planning():
    """Weeks with no traffic: evaluation is trivially perfect and the
    online replan from an empty window produces empty tables rather
    than failing."""
    results = weekly_series(lambda w: [], 3, 2, "online")
    assert len(results) == 3
    assert all(r.pairs == 0 for r in results)
    assert all(r.locality == 1.0 for r in results)


def test_weekly_series_offline_plans_only_from_week_zero():
    """Offline mode must keep week-0 tables even when later weeks
    shift: week 0 is unrouted, later weeks route with stale tables."""
    def week_pairs(week):
        if week == 0:
            return [("a", "x")] * 10 + [("b", "y")] * 10
        return [("c", "z")] * 10  # keys the stale tables never saw

    results = weekly_series(week_pairs, 3, 2, "offline")
    assert results[0].unseen_fraction == 0.0  # no tables yet
    assert results[1].unseen_fraction == 1.0
    assert results[2].unseen_fraction == 1.0
