#!/usr/bin/env python
"""A trending-hashtags dashboard: windows, top-k, and latency.

The paper's introduction motivates stream processing with Twitter's
trending pipeline, and Fig. 10 asks "where is this hashtag trending?".
This example answers it live:

    tweets -> per-region windowed rate stats -> per-hashtag top regions

routing first by region, then by hashtag — the exact double fields
grouping the paper optimizes. It runs once with hash routing and once
with offline-mined routing tables, then prints trending locations for
popular hashtags plus throughput *and end-to-end latency* for both
configurations.

Run:  python examples/trending_dashboard.py
"""

import random

from repro.core import offline_tables
from repro.engine import (
    FieldsGrouping,
    RunConfig,
    TableFieldsGrouping,
    TopologyBuilder,
    run,
)
from repro.engine.operators import IteratorSpout
from repro.engine.windowing import TopKBolt, TumblingWindowCountBolt
from repro.workloads import TwitterConfig, TwitterWorkload

SERVERS = 4
WINDOW_S = 0.1

workload = TwitterWorkload(
    TwitterConfig(
        num_locations=40,
        base_hashtags=500,
        new_hashtags_per_week=50,
        affinity=0.85,
        seed=13,
    )
)


def tweet_stream(ctx):
    """Endless stream of (region, hashtag), sharded per spout."""
    week = 0
    while True:
        for i, pair in enumerate(workload.week_pairs(week)):
            if i % ctx.num_instances == ctx.instance_index:
                yield pair
        week += 1


def build(grouping_region, grouping_tag):
    builder = TopologyBuilder()
    builder.spout("tweets", lambda: IteratorSpout(tweet_stream), SERVERS)
    builder.bolt(
        "window_counts",
        lambda: TumblingWindowCountBolt(
            0, window_s=WINDOW_S, forward=True, emit_on_flush=False
        ),
        parallelism=SERVERS,
        inputs={"tweets": grouping_region},
    )
    builder.bolt(
        "trending",
        # Grouped by the routing key (hashtag): consistent state, and
        # the ranking answers "which regions is this tag trending in?"
        lambda: TopKBolt(group=1, item=0, k=3, window_s=WINDOW_S),
        parallelism=SERVERS,
        inputs={"window_counts": grouping_tag},
    )
    return builder.build()


def main():
    config = RunConfig(duration_s=0.6, warmup_s=0.1, num_servers=SERVERS)

    hashed = run(build(FieldsGrouping(0), FieldsGrouping(1)), config)

    sample = list(workload.week_pairs(0))[:20000]
    tables, predicted = offline_tables(
        sample,
        num_servers=SERVERS,
        in_stream="tweets->window_counts",
        out_stream="window_counts->trending",
    )
    optimized = run(
        build(
            TableFieldsGrouping(
                0, table=tables["tweets->window_counts"]
            ),
            TableFieldsGrouping(
                1, table=tables["window_counts->trending"]
            ),
        ),
        config,
    )

    print(f"predicted locality from the sample: {predicted:.0%}\n")
    header = f"{'':14}  {'throughput':>12}  {'locality':>8}  {'p50':>8}  {'p99':>8}"
    print(header)
    for label, result in (("hash-based", hashed), ("locality-aware", optimized)):
        print(
            f"{label:14}  {result.throughput / 1e3:9.1f} K/s  "
            f"{result.locality:8.0%}  "
            f"{result.latency_p50 * 1e6:6.0f}µs  "
            f"{result.latency_p99 * 1e6:6.0f}µs"
        )

    # Pull live rankings out of the optimized deployment: where are
    # the busiest hashtags trending right now?
    print("\nwhere hashtags are trending (locality-aware run):")
    rankings = []
    for executor in optimized.deployment.instances("trending"):
        for tag in executor.operator.state:
            ranking = executor.operator.top(tag)
            if ranking:
                rankings.append((sum(c for _, c in ranking), tag, ranking))
    for _, tag, ranking in sorted(rankings, reverse=True)[:4]:
        regions = ", ".join(f"{r} ({c})" for r, c in ranking)
        print(f"  {tag}: {regions}")


if __name__ == "__main__":
    main()
