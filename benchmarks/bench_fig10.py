"""Figure 10: a flash hashtag's daily frequency across locations.

Paper claim asserted: the same hashtag is correlated with *different*
locations at *different* times (the reason reconfiguration must be
online).
"""

import pytest

from helpers import save_table
from repro.analysis.experiments import fig10
from repro.analysis.report import format_table


@pytest.fixture(scope="module")
def rows(quick):
    return fig10(weeks=4 if quick else 8, quick=quick)


def test_fig10_regenerate(rows, benchmark):
    benchmark.pedantic(lambda: fig10(weeks=2), rounds=1, iterations=1)
    table = format_table(rows, title="Figure 10: flash hashtag frequency")
    print()
    print(table)
    save_table("fig10", table)


def test_fig10_peaks_in_multiple_locations(rows):
    locations = {row["location"] for row in rows}
    assert len(locations) >= 2


def test_fig10_peaks_on_different_days(rows):
    peak_day = {}
    for row in rows:
        location = row["location"]
        if (
            location not in peak_day
            or row["frequency"] > peak_day[location][1]
        ):
            peak_day[location] = (row["day"], row["frequency"])
    days = {day for day, _ in peak_day.values()}
    assert len(days) >= 2


def test_fig10_spikes_are_bursty(rows):
    """A flash event lasts a couple of days: each location's activity
    is concentrated, not uniform across the trace."""
    by_location = {}
    for row in rows:
        by_location.setdefault(row["location"], []).append(row["frequency"])
    for location, frequencies in by_location.items():
        assert max(frequencies) >= 2 * (
            sum(frequencies) / len(frequencies)
        ) or len(frequencies) <= 3
