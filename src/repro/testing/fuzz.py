"""The seeded fuzz driver: ``python -m repro.testing.fuzz``.

Generates N episodes from a master seed, runs each with every
invariant armed, and writes a repro bundle for any episode that
violates one. Exit status 0 means all episodes were clean; 1 means at
least one violation (bundles written); 2 means a replay did not
reproduce its bundle.

Typical runs::

    # the CI gate: 50 seeds, bundles into ./fuzz-bundles on failure
    python -m repro.testing.fuzz --seeds 50

    # replay a failing seed's bundle and verify it reproduces
    python -m repro.testing.fuzz --replay fuzz-bundles/bundle-seed7.json

    # prove the harness catches a deliberately injected bug
    python -m repro.testing.fuzz --seeds 1 --inject double_migrate
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.testing.bundle import replay_bundle, write_bundle
from repro.testing.episode import (
    INJECTIONS,
    generate_config,
    run_episode,
)
from repro.testing.rng import RngTree


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.fuzz",
        description=(
            "Deterministic fuzzing of the reconfiguration protocol: "
            "seeded episodes, armed invariants, replayable failures."
        ),
    )
    parser.add_argument(
        "--seeds", type=int, default=50,
        help="number of episodes to run (default 50)",
    )
    parser.add_argument(
        "--master-seed", type=int, default=0,
        help="root of the RNG tree; episode i uses seed master+i",
    )
    parser.add_argument(
        "--bundle-dir", default="fuzz-bundles",
        help="directory for repro bundles of failing episodes",
    )
    parser.add_argument(
        "--inject", choices=INJECTIONS, default=None,
        help="arm a deliberate bug in every episode (harness self-test)",
    )
    parser.add_argument(
        "--rescale", action="store_true",
        help="script 1-2 elastic rescales into every episode",
    )
    parser.add_argument(
        "--hybrid", action="store_true",
        help="enable hybrid routing (hot-key splitting) in every episode",
    )
    parser.add_argument(
        "--replay", metavar="BUNDLE", default=None,
        help="replay one bundle and verify it reproduces identically",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="print one line per episode instead of a summary",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.replay is not None:
        return _replay(args.replay)

    tree = RngTree(args.master_seed)
    failures = 0
    rounds = completed = aborted = faults = 0
    for index in range(args.seeds):
        seed = args.master_seed + index
        config = generate_config(
            tree, seed, rescale=args.rescale, hybrid=args.hybrid
        )
        if args.inject is not None:
            config.inject = args.inject
        result = run_episode(config)
        rounds += result.rounds
        completed += result.rounds_completed
        aborted += result.rounds_aborted
        faults += result.faults_injected
        if args.verbose:
            print(
                f"seed {seed}: rounds={result.rounds} "
                f"(completed={result.rounds_completed}, "
                f"aborted={result.rounds_aborted}) "
                f"faults={result.faults_injected} "
                f"violations={len(result.violations)} "
                f"fingerprint={result.fingerprint:#010x}"
            )
        if result.violations:
            failures += 1
            path = write_bundle(args.bundle_dir, result)
            print(f"seed {seed}: {len(result.violations)} violation(s), "
                  f"bundle written to {path}", file=sys.stderr)
            for violation in result.violations[:5]:
                print(f"  [{violation.invariant}] {violation.detail}",
                      file=sys.stderr)

    print(
        f"{args.seeds} episodes: {failures} with violations; "
        f"{rounds} rounds ({completed} completed, {aborted} aborted), "
        f"{faults} faults injected"
    )
    if failures:
        print(
            f"replay a failure with: python -m repro.testing.fuzz "
            f"--replay {args.bundle_dir}/bundle-seed<seed>.json",
            file=sys.stderr,
        )
    return 1 if failures else 0


def _replay(path: str) -> int:
    outcome = replay_bundle(path)
    result = outcome.result
    print(
        f"replayed {path}: fingerprint "
        f"{result.fingerprint:#010x} "
        f"(expected {outcome.expected_fingerprint:#010x}), "
        f"{len(result.violations)} violation(s) "
        f"(expected {len(outcome.expected_violations)})"
    )
    if outcome.reproduced:
        print("identical trace reproduced")
        return 0
    if not outcome.fingerprint_matches:
        print("event-sequence fingerprint DIVERGED", file=sys.stderr)
    if not outcome.violations_match:
        print("violation list DIVERGED", file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main())
