"""From key graph to routing tables and migration lists.

``compute_assignment`` partitions the key graph across servers (the
paper's Metis step). ``plan_reconfiguration`` turns an assignment into
the deployable artifacts: one routing table per table-routed stream,
plus the per-operator state migration lists the protocol ships inside
its reconfiguration messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.core.keygraph import KeyGraph, KeyVertex
from repro.core.routing_table import RoutingTable
from repro.engine.grouping import stable_hash
from repro.errors import ReconfigurationError
from repro.partitioning import partition

#: Default balance constraint α (Metis default, used by the paper).
DEFAULT_IMBALANCE = 1.03


@dataclass
class KeyAssignment:
    """A partition of namespaced keys over servers."""

    parts: Dict[KeyVertex, int]
    num_parts: int

    def server_of(self, stream: str, key: Hashable) -> Optional[int]:
        return self.parts.get((stream, key))

    def keys_of(self, stream: str) -> Dict[Hashable, int]:
        """key → server for one stream namespace."""
        return {
            key: part
            for (name, key), part in self.parts.items()
            if name == stream
        }

    def table_for(
        self, stream: str, server_to_instance: Mapping[int, int]
    ) -> RoutingTable:
        """Routing table for ``stream``: key → destination instance.

        Raises
        ------
        ReconfigurationError
            If a key is assigned to a server hosting no destination
            instance (cannot happen with the paper's one-instance-per-
            server placement).
        """
        mapping: Dict[Hashable, int] = {}
        for key, server in self.keys_of(stream).items():
            instance = server_to_instance.get(server)
            if instance is None:
                raise ReconfigurationError(
                    f"stream {stream!r}: key {key!r} assigned to server "
                    f"{server} which hosts no destination instance"
                )
            mapping[key] = instance
        return RoutingTable(mapping)


def compute_assignment(
    keygraph: KeyGraph,
    num_parts: int,
    imbalance: float = DEFAULT_IMBALANCE,
    seed: int = 0,
    max_edges: Optional[int] = None,
) -> KeyAssignment:
    """Partition the key graph into ``num_parts`` balanced parts.

    Parameters
    ----------
    max_edges:
        Keep only the heaviest ``max_edges`` pairs before partitioning
        (the statistics budget of Fig. 12); None keeps everything.
    """
    if num_parts < 1:
        raise ReconfigurationError(f"num_parts must be >= 1: {num_parts}")
    working = keygraph if max_edges is None else keygraph.top_edges(max_edges)
    graph, vertices = working.to_partition_graph()
    parts = partition(graph, num_parts, imbalance=imbalance, seed=seed)
    return KeyAssignment(
        parts=dict(zip(vertices, parts)), num_parts=num_parts
    )


def expected_locality(keygraph: KeyGraph, assignment: KeyAssignment) -> float:
    """Fraction of pair weight whose two keys share a server.

    This is the locality the partitioner *predicts* on the data it was
    given — the "Metis reports an expected locality of 75%" number of
    Section 4.3; achieved locality on future data is lower because of
    unseen keys.
    """
    total = 0.0
    colocated = 0.0
    for u, v, weight in keygraph.edges():
        total += weight
        if assignment.parts.get(u) == assignment.parts.get(v):
            colocated += weight
    if total == 0.0:
        return 1.0
    return colocated / total


# ----------------------------------------------------------------------
# Full reconfiguration planning
# ----------------------------------------------------------------------


@dataclass
class RoutedStream:
    """Deployment facts about one table-routed stream."""

    name: str
    src_op: str
    dst_op: str
    #: server hosting each destination instance
    dst_placements: Sequence[int]
    #: True when the destination operator holds keyed state to migrate
    stateful_dst: bool = True

    @property
    def hash_seed(self) -> int:
        # Must match repro.engine.runner.deploy, which seeds each
        # stream's router with stable_hash(stream name).
        return stable_hash(self.name)

    def fallback_instance(self, key: Hashable) -> int:
        """The hash-fallback owner of ``key`` (engine-identical)."""
        return stable_hash(key, self.hash_seed) % len(self.dst_placements)

    def server_to_instance(self) -> Dict[int, int]:
        mapping: Dict[int, int] = {}
        for instance, server in enumerate(self.dst_placements):
            if server in mapping:
                raise ReconfigurationError(
                    f"stream {self.name!r}: two destination instances on "
                    f"server {server}; locality-aware routing requires at "
                    f"most one instance per server"
                )
            mapping[server] = instance
        return mapping


@dataclass
class ReconfigurationPlan:
    """Everything needed to reconfigure the application."""

    #: stream name → new routing table
    tables: Dict[str, RoutingTable]
    #: op name → {(old_instance, new_instance) → [keys]}
    migrations: Dict[str, Dict[Tuple[int, int], List[Hashable]]]
    #: locality the partitioner predicts on the collected statistics
    predicted_locality: float
    #: the underlying key assignment
    assignment: KeyAssignment = field(repr=False, default=None)

    def total_moved_keys(self) -> int:
        return sum(
            len(keys)
            for per_op in self.migrations.values()
            for keys in per_op.values()
        )


def plan_migrations(
    old_table: RoutingTable,
    new_table: RoutingTable,
    stream: RoutedStream,
) -> Dict[Tuple[int, int], List[Hashable]]:
    """Per-(old, new)-instance-pair key lists moving between tables.

    Combines single-owner moves (:meth:`RoutingTable.moved_keys`) with
    split consolidations: a key split in ``old_table`` but not in
    ``new_table`` must gather its partial state from *every* old member
    onto the new owner, so it expands to one migration per old member.
    Keys split in ``new_table`` never migrate — their partial state
    stays put and new traffic spreads over the members.
    """
    per_pair: Dict[Tuple[int, int], List[Hashable]] = {}
    moved = old_table.moved_keys(new_table, stream.fallback_instance)
    for key, (old_instance, new_instance) in moved.items():
        per_pair.setdefault((old_instance, new_instance), []).append(key)
    consolidations = old_table.split_consolidations(
        new_table, stream.fallback_instance
    )
    for key, (members, new_owner) in consolidations.items():
        for member in members:
            if member == new_owner:
                continue
            per_pair.setdefault((member, new_owner), []).append(key)
    return per_pair


def plan_reconfiguration(
    keygraph: KeyGraph,
    streams: Sequence[RoutedStream],
    num_servers: int,
    old_tables: Mapping[str, RoutingTable],
    imbalance: float = DEFAULT_IMBALANCE,
    seed: int = 0,
    max_edges: Optional[int] = None,
) -> ReconfigurationPlan:
    """Compute new tables and migration lists for the routed streams.

    ``old_tables`` may omit streams that never had a table (hash-only
    routing so far); migration then compares against hash owners.
    """
    assignment = compute_assignment(
        keygraph, num_servers, imbalance=imbalance, seed=seed,
        max_edges=max_edges,
    )
    predicted = expected_locality(keygraph, assignment)

    tables: Dict[str, RoutingTable] = {}
    migrations: Dict[str, Dict[Tuple[int, int], List[Hashable]]] = {}
    for stream in streams:
        new_table = assignment.table_for(
            stream.name, stream.server_to_instance()
        )
        tables[stream.name] = new_table
        if not stream.stateful_dst:
            continue
        old_table = old_tables.get(stream.name, RoutingTable.empty())
        per_pair = plan_migrations(old_table, new_table, stream)
        if not per_pair:
            continue
        existing = migrations.setdefault(stream.dst_op, {})
        for pair, keys in per_pair.items():
            existing.setdefault(pair, []).extend(keys)

    return ReconfigurationPlan(
        tables=tables,
        migrations=migrations,
        predicted_locality=predicted,
        assignment=assignment,
    )
