"""Ablations beyond the paper's figures.

- statistics collector: SpaceSaving budgets vs exact counting;
- reconfiguration period: how locality decays when reconfiguring
  less often (the trade-off Section 4.3 discusses);
- benefit estimator (future work): vetoes low-benefit rounds;
- partial key grouping baseline: better load balance than hash
  fields grouping, but no locality;
- rack-aware hierarchical partitioning (future work): cheaper
  traffic than flat partitioning on a racked cluster.
"""

import statistics

import pytest

from helpers import save_table
from repro.analysis.report import format_table
from repro.analysis.trace_eval import TwoHopEvaluator
from repro.core.assignment import plan_reconfiguration
from repro.core.estimator import EstimatorConfig, ReconfigurationEstimator
from repro.core.hierarchical import (
    assignment_quality,
    compute_hierarchical_assignment,
)
from repro.core.keygraph import KeyGraph
from repro.core.offline import keygraph_from_pairs
from repro.workloads import TwitterConfig, TwitterWorkload

N_SERVERS = 4


@pytest.fixture(scope="module")
def workload(quick):
    return TwitterWorkload(
        TwitterConfig(
            tweets_per_week=6000 if quick else 20000,
            num_locations=150,
            base_hashtags=1500,
            new_hashtags_per_week=150,
            seed=3,
        )
    )


@pytest.fixture(scope="module")
def evaluator():
    return TwoHopEvaluator(N_SERVERS)


def test_ablation_spacesaving_vs_exact(workload, evaluator, benchmark):
    train = list(workload.week_pairs(0))
    test = list(workload.week_pairs(1))

    def locality_with(capacity):
        tables, _ = evaluator.plan_tables(
            train, sketch_capacity=capacity
        )
        return evaluator.evaluate(test, tables).locality

    benchmark.pedantic(lambda: locality_with(512), rounds=1, iterations=1)
    rows = []
    for capacity in (64, 512, 4096, None):
        rows.append(
            {
                "collector": "exact" if capacity is None else
                f"spacesaving({capacity})",
                "locality": locality_with(capacity),
            }
        )
    table = format_table(rows, title="Ablation: statistics collector")
    print()
    print(table)
    save_table("ablation_collector", table)
    by_name = {r["collector"]: r["locality"] for r in rows}
    # A moderate sketch gets within a few points of exact counting
    # (Zipfian tail: most of the optimization lives in the top pairs).
    assert by_name["spacesaving(4096)"] > by_name["exact"] - 0.08
    # A tiny sketch is strictly worse.
    assert by_name["spacesaving(64)"] < by_name["exact"]


def test_ablation_reconfiguration_period(workload, evaluator):
    weeks = 10

    def mean_locality(period):
        tables = None
        series = []
        for week in range(weeks):
            pairs = list(workload.week_pairs(week))
            series.append(evaluator.evaluate(pairs, tables).locality)
            if week % period == 0:
                tables, _ = evaluator.plan_tables(pairs)
        return statistics.mean(series[1:])

    rows = [
        {"period_weeks": period, "mean_locality": mean_locality(period)}
        for period in (1, 2, 4)
    ]
    table = format_table(rows, title="Ablation: reconfiguration period")
    print()
    print(table)
    save_table("ablation_period", table)
    localities = [r["mean_locality"] for r in rows]
    assert localities[0] >= localities[-1]


def test_ablation_estimator_vetoes_ephemeral_gains(workload):
    """With a short amortization horizon, most weekly replans are not
    worth their migration cost; with a long one, they all are."""
    evaluator = TwoHopEvaluator(N_SERVERS)
    streams = [evaluator.first_hop, evaluator.second_hop]

    def deployed_rounds(horizon):
        estimator = ReconfigurationEstimator(
            EstimatorConfig(horizon_tuples=horizon)
        )
        tables = {}
        deployed = 0
        for week in range(6):
            pairs = list(workload.week_pairs(week))
            graph = keygraph_from_pairs(pairs, "S->A", "A->B")
            plan = plan_reconfiguration(
                graph, streams, N_SERVERS, tables, seed=week
            )
            if estimator.should_deploy(graph, plan, tables, streams):
                tables = dict(tables)
                tables.update(plan.tables)
                deployed += 1
        return deployed

    generous = deployed_rounds(horizon=50_000_000)
    stingy = deployed_rounds(horizon=100)
    rows = [
        {"horizon_tuples": 50_000_000, "deployed_rounds": generous},
        {"horizon_tuples": 100, "deployed_rounds": stingy},
    ]
    table = format_table(rows, title="Ablation: benefit estimator")
    print()
    print(table)
    save_table("ablation_estimator", table)
    assert generous == 6
    assert stingy < generous


def test_ablation_partial_key_grouping_balance():
    """PKG balances a skewed stream better than hash fields grouping —
    at the price of splitting keys (no locality tables possible)."""
    import random

    from repro.engine import (
        CountBolt,
        FieldsGrouping,
        PartialKeyGrouping,
        RunConfig,
        TopologyBuilder,
        run,
    )
    from repro.engine.operators import IteratorSpout
    from repro.workloads import ZipfSampler

    def build(grouping):
        def source(ctx):
            sampler = ZipfSampler(100, exponent=1.2, seed=9)
            rng = random.Random(ctx.instance_index)
            while True:
                yield (f"k{sampler.sample(rng)}",)

        builder = TopologyBuilder()
        builder.spout("S", lambda: IteratorSpout(source), parallelism=4)
        builder.bolt(
            "B",
            lambda: CountBolt(0, forward=False),
            parallelism=4,
            inputs={"S": grouping},
        )
        return builder.build()

    config = RunConfig(duration_s=0.15, warmup_s=0.05, num_servers=4)
    hash_result = run(build(FieldsGrouping(0)), config)
    pkg_result = run(build(PartialKeyGrouping(0)), config)
    rows = [
        {"grouping": "fields(hash)", "balance": hash_result.load_balance["B"]},
        {"grouping": "partial-key", "balance": pkg_result.load_balance["B"]},
    ]
    table = format_table(rows, title="Ablation: load balance under skew")
    print()
    print(table)
    save_table("ablation_pkg", table)
    assert pkg_result.load_balance["B"] < hash_result.load_balance["B"]


def test_ablation_hierarchical_vs_flat(workload):
    """On a 2-rack cluster, two-level partitioning pays less weighted
    network cost than flat partitioning once rack crossings are
    priced higher than in-rack hops."""
    from repro.core.assignment import compute_assignment

    pairs = list(workload.week_pairs(0))
    graph = keygraph_from_pairs(pairs, "S->A", "A->B")
    racks = [[0, 1], [2, 3]]

    flat = compute_assignment(graph, 4, seed=2)
    flat_quality = assignment_quality(graph, flat, racks)
    hierarchical = compute_hierarchical_assignment(graph, racks, seed=2)
    hier_quality = assignment_quality(graph, hierarchical, racks)

    rows = [
        {
            "scheme": "flat",
            "same_server": flat_quality.same_server,
            "same_rack": flat_quality.same_rack,
            "cross_rack": flat_quality.cross_rack,
            "weighted_cost": flat_quality.weighted_cost(),
        },
        {
            "scheme": "hierarchical",
            "same_server": hier_quality.same_server,
            "same_rack": hier_quality.same_rack,
            "cross_rack": hier_quality.cross_rack,
            "weighted_cost": hier_quality.weighted_cost(),
        },
    ]
    table = format_table(rows, title="Ablation: rack-aware partitioning")
    print()
    print(table)
    save_table("ablation_hierarchical", table)
    assert hier_quality.weighted_cost() <= flat_quality.weighted_cost() * 1.05
    # Server-locality stays comparable.
    assert hier_quality.same_server > flat_quality.same_server - 0.1
