"""Contract tests for the PhysicalOperator seam (DESIGN.md §15).

The seam is what makes backends pluggable, so its lifecycle rules are
pinned independently of any backend: stats accounting in the base
class, the completion/flush protocol, input-after-done rejection, and
the plan driver's quiescent ``on_round`` hook.
"""

import pytest

from repro.engine.physical import (
    OpStats,
    PhysicalEdge,
    PhysicalOperator,
    PhysicalPlan,
    SourceOperator,
    TupleBatch,
    merge_op_stats,
)
from repro.errors import DeploymentError


class ListSource(SourceOperator):
    """Source producing one fixed batch per poll."""

    def __init__(self, name, batches):
        super().__init__(name)
        self._batches = list(batches)

    def _poll(self):
        if not self._batches:
            return None
        return self._batches.pop(0)


class Passthrough(PhysicalOperator):
    def _process(self, batch, input_index):
        self._emit(batch)


class HoldAll(PhysicalOperator):
    """Buffers everything; emits one merged batch only at flush —
    exercises the completion/flush half of the protocol."""

    def __init__(self, name, input_names):
        super().__init__(name, input_names)
        self.held = []

    def _process(self, batch, input_index):
        self.held.extend(batch.values)

    def _flush(self):
        self._emit(TupleBatch(list(self.held)))


def _batch(*values):
    return TupleBatch([(v,) for v in values])


class TestOperatorLifecycle:
    def test_stats_track_batches_and_tuples(self):
        op = Passthrough("p", ["in"])
        op.add_input(_batch(1, 2, 3))
        assert op.stats.batches_in == 1
        assert op.stats.tuples_in == 3
        assert op.has_next()
        out = op.get_next()
        assert len(out) == 3
        assert op.stats.batches_out == 1
        assert op.stats.tuples_out == 3

    def test_completed_requires_done_and_drained(self):
        op = Passthrough("p", ["in"])
        op.add_input(_batch(1))
        assert not op.completed  # input not done
        op.input_done(0)
        assert not op.completed  # output not drained
        op.get_next()
        assert op.completed

    def test_input_after_done_rejected(self):
        op = Passthrough("p", ["in"])
        op.input_done(0)
        with pytest.raises(DeploymentError):
            op.add_input(_batch(1))

    def test_flush_fires_once_when_all_inputs_done(self):
        op = HoldAll("h", ["a", "b"])
        op.add_input(_batch(1), 0)
        op.add_input(_batch(2), 1)
        op.input_done(0)
        assert not op.has_next()  # input b still open
        op.input_done(1)
        assert op.has_next()
        assert sorted(op.get_next().values) == [(1,), (2,)]

    def test_source_exhaustion_flips_once(self):
        src = ListSource("s", [_batch(1)])
        first = src.poll()
        assert first is not None and src.stats.tuples_out == 1
        assert src.poll() is None
        assert src.exhausted
        assert src.poll() is None  # stays exhausted
        assert src.completed

    def test_source_rejects_input(self):
        src = ListSource("s", [])
        with pytest.raises(DeploymentError):
            src.add_input(_batch(1))


class TestPlanDriver:
    def _linear_plan(self, batches):
        src = ListSource("s", batches)
        mid = Passthrough("mid", ["s"])
        sink = HoldAll("sink", ["mid"])
        plan = PhysicalPlan(
            [src, mid, sink],
            [
                PhysicalEdge("s->mid", src, mid, 0),
                PhysicalEdge("mid->sink", mid, sink, 0),
            ],
        )
        return plan, sink

    def test_execute_drains_and_completes(self):
        plan, sink = self._linear_plan([_batch(1, 2), _batch(3)])
        plan.execute()
        assert sink.held == [(1,), (2,), (3,)]
        assert all(op.completed for op in plan.operators)

    def test_edge_transform_applies_per_batch(self):
        src = ListSource("s", [_batch(1, 2)])
        sink = HoldAll("sink", ["s"])
        doubled = []

        def transform(batch):
            doubled.append(len(batch))
            return TupleBatch([(v[0] * 2,) for v in batch.values])

        plan = PhysicalPlan(
            [src, sink], [PhysicalEdge("e", src, sink, 0, transform)]
        )
        plan.execute()
        assert sink.held == [(2,), (4,)]
        assert doubled == [2]

    def test_on_round_fires_at_quiescent_points(self):
        plan, sink = self._linear_plan([_batch(1), _batch(2), _batch(3)])
        seen = []
        plan.execute(
            on_round=lambda p: seen.append(
                sum(s.stats.tuples_out for s in p.sources())
            )
        )
        # one round per poll pass (3 batches + the exhausting pass)
        assert seen == [1, 2, 3, 3]

    def test_incomplete_operator_raises(self):
        src = ListSource("s", [])

        class NeverFlushes(PhysicalOperator):
            def _process(self, batch, input_index):
                pass

            def input_done(self, input_index=0):
                # deliberately breaks protocol: never flushes
                self._inputs_done[input_index] = True

        sink = NeverFlushes("bad", ["s"])
        plan = PhysicalPlan([src, sink], [PhysicalEdge("e", src, sink, 0)])
        with pytest.raises(DeploymentError, match="incomplete"):
            plan.execute()

    def test_multi_input_fan_in(self):
        left = ListSource("l", [_batch(1)])
        right = ListSource("r", [_batch(2), _batch(3)])
        sink = HoldAll("sink", ["l", "r"])
        plan = PhysicalPlan(
            [left, right, sink],
            [
                PhysicalEdge("l->sink", left, sink, 0),
                PhysicalEdge("r->sink", right, sink, 1),
            ],
        )
        plan.execute()
        assert sorted(sink.held) == [(1,), (2,), (3,)]
        assert sink.stats.batches_in == 3


class TestMergeOpStats:
    """The sharded-stats contract (multiprocess backend): OpStats is
    plain unsynchronized state, so every shard keeps its own and the
    coordinator combines with merge_op_stats — no double-count, no
    loss, even when some shards never report (early termination)."""

    def _stats(self, **kw):
        stats = OpStats()
        for name, value in kw.items():
            setattr(stats, name, value)
        return stats

    def test_merge_sums_every_field(self):
        merged = merge_op_stats(
            [
                {"A": self._stats(batches_in=1, tuples_in=10, busy_s=0.5)},
                {"A": self._stats(batches_in=2, tuples_in=20, busy_s=0.25)},
                {"B": self._stats(tuples_out=7)},
            ]
        )
        assert merged["A"].batches_in == 3
        assert merged["A"].tuples_in == 30
        assert merged["A"].busy_s == 0.75
        assert merged["B"].tuples_out == 7

    def test_merge_does_not_mutate_shards(self):
        # aliasing a shard's object into the result would double-count
        # on the next aggregation of the same shard list
        shard = {"A": self._stats(tuples_in=5)}
        merged = merge_op_stats([shard])
        assert merged["A"] is not shard["A"]
        merge_op_stats([shard])
        assert shard["A"].tuples_in == 5

    def test_merge_accepts_serialized_dicts(self):
        # worker results cross a process boundary as as_dict() payloads
        merged = merge_op_stats(
            [
                {"A": self._stats(tuples_in=4, batches_out=1).as_dict()},
                {"A": self._stats(tuples_in=6)},
            ]
        )
        assert merged["A"].tuples_in == 10
        assert merged["A"].batches_out == 1

    def test_missing_shards_lose_nothing_present(self):
        # early termination: only one worker reported — the merge is
        # exactly that worker's stats, not zeros
        merged = merge_op_stats([{}, {"A": self._stats(tuples_in=3)}])
        assert merged["A"].tuples_in == 3
