"""Tests for the Section 4.2 synthetic workload."""

import itertools

import pytest

from repro.engine import Padding, RunConfig, run
from repro.errors import WorkloadError
from repro.workloads import SyntheticConfig, SyntheticWorkload


def test_config_validation():
    with pytest.raises(WorkloadError):
        SyntheticConfig(parallelism=0)
    with pytest.raises(WorkloadError):
        SyntheticConfig(locality=1.5)
    with pytest.raises(WorkloadError):
        SyntheticConfig(padding=-1)


def test_tuples_structure_and_padding():
    workload = SyntheticWorkload(
        SyntheticConfig(parallelism=4, locality=0.5, padding=1234)
    )
    for i, j, pad in itertools.islice(workload.tuples_for_instance(2), 50):
        assert i == 2
        assert 0 <= j < 4
        assert pad == Padding(1234)


def test_locality_parameter_controls_match_rate():
    config = SyntheticConfig(parallelism=4, locality=0.7, seed=3)
    workload = SyntheticWorkload(config)
    matched = 0
    total = 4000
    for i, j, _ in itertools.islice(workload.tuples_for_instance(1), total):
        matched += i == j
    assert matched / total == pytest.approx(0.7, abs=0.03)


def test_locality_one_always_matches():
    workload = SyntheticWorkload(SyntheticConfig(parallelism=3, locality=1.0))
    for i, j, _ in itertools.islice(workload.tuples_for_instance(0), 100):
        assert i == j


def test_parallelism_one_always_matches():
    workload = SyntheticWorkload(SyntheticConfig(parallelism=1, locality=0.0))
    for i, j, _ in itertools.islice(workload.tuples_for_instance(0), 10):
        assert (i, j) == (0, 0)


def test_tuples_per_instance_bounds_stream():
    workload = SyntheticWorkload(
        SyntheticConfig(parallelism=2, tuples_per_instance=17)
    )
    assert len(list(workload.tuples_for_instance(0))) == 17


def test_unknown_policy_rejected():
    workload = SyntheticWorkload(SyntheticConfig(parallelism=2))
    with pytest.raises(WorkloadError):
        workload.topology("magic")


@pytest.mark.parametrize("policy", ["locality-aware", "hash-based", "worst-case"])
def test_topologies_run(policy):
    workload = SyntheticWorkload(
        SyntheticConfig(parallelism=2, locality=0.8, seed=1)
    )
    result = run(
        workload.topology(policy),
        RunConfig(duration_s=0.08, warmup_s=0.02, num_servers=2),
    )
    assert result.throughput > 0


def test_policy_ordering_matches_paper():
    """locality-aware >= hash-based >= worst-case in throughput."""
    config = RunConfig(duration_s=0.12, warmup_s=0.04, num_servers=3)
    results = {}
    for policy in ("locality-aware", "hash-based", "worst-case"):
        workload = SyntheticWorkload(
            SyntheticConfig(parallelism=3, locality=0.9, padding=8000)
        )
        results[policy] = run(workload.topology(policy), config).throughput
    assert results["locality-aware"] > results["hash-based"]
    assert results["hash-based"] >= results["worst-case"] * 0.9


def test_locality_aware_sa_hop_is_local():
    workload = SyntheticWorkload(
        SyntheticConfig(parallelism=3, locality=0.6)
    )
    result = run(
        workload.topology("locality-aware"),
        RunConfig(duration_s=0.08, warmup_s=0.02, num_servers=3),
    )
    assert result.stream_locality["S->A"] == 1.0
    assert result.stream_locality["A->B"] == pytest.approx(0.6, abs=0.05)


def test_worst_case_matched_tuples_always_remote():
    workload = SyntheticWorkload(
        SyntheticConfig(parallelism=2, locality=1.0)
    )
    result = run(
        workload.topology("worst-case"),
        RunConfig(duration_s=0.08, warmup_s=0.02, num_servers=2),
    )
    assert result.stream_locality["A->B"] == 0.0


def test_online_topology_uses_tables():
    from repro.engine.grouping import TableFieldsGrouping

    workload = SyntheticWorkload(SyntheticConfig(parallelism=2))
    topology = workload.online_topology()
    for stream in topology.streams:
        assert isinstance(stream.grouping, TableFieldsGrouping)
