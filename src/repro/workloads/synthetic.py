"""The Section 4.2 synthetic workload and its three routing variants.

Tuples are ``(i, j, padding)`` with ``i, j`` in ``0..n-1``. Spout
instance ``i`` always emits first field ``i``, and second field ``i``
with probability ``locality`` (uniform over the others otherwise) — so
that with perfect routing tables, a ``locality`` fraction of the
A→B stream never leaves the server, and (matching Fig. 7d–f) the
spout→A hop is always local.

The three fields-grouping variants of the paper:

- **locality-aware** — the tables an analysis of the data would build:
  first field ``i`` routes to ``A_i``, second field ``j`` to ``B_j``.
- **hash-based** — a "random but deterministic" key → instance
  assignment with the properties the paper measures for Storm's
  default: perfectly balanced load, and co-location probability
  exactly ``1/n`` per hop *independent of the data's locality*
  (Fig. 8's flat hash line, and the 16.6% of Fig. 11a at n = 6).
  A literal random hash over this workload's tiny key space (n keys!)
  would collide and wreck load balance — something neither Storm's
  actual integer hashing nor the paper's smooth curves exhibit — so
  we realize the assignment as two balanced permutations agreeing at
  exactly one point, which yields the 1/n co-location analytically.
- **worst-case** — matched tuples ``(i, i, p)`` are *always* routed
  through the network (to ``B_{(i+1) mod n}``); unmatched tuples fall
  back to hashing. A lower bound with negative synergy with locality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.engine import (
    CountBolt,
    CustomGrouping,
    FieldsGrouping,
    Padding,
    TableFieldsGrouping,
    Topology,
    TopologyBuilder,
)
from repro.engine.grouping import stable_hash
from repro.engine.operators import IteratorSpout
from repro.errors import WorkloadError
from repro.workloads.zipf import derived_rng

#: The three fields-grouping variants evaluated in Section 4.2.
POLICIES = ("locality-aware", "hash-based", "worst-case")


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of the synthetic workload."""

    parallelism: int = 2
    #: Probability that a tuple's two integers are equal (60–100% in
    #: the paper).
    locality: float = 0.8
    #: Extra payload bytes per tuple (0–20 kB in the paper).
    padding: int = 0
    seed: int = 0
    #: Cap on emitted tuples per spout instance; None = unbounded.
    tuples_per_instance: int = None

    def __post_init__(self) -> None:
        if self.parallelism < 1:
            raise WorkloadError(
                f"parallelism must be >= 1, got {self.parallelism}"
            )
        if not 0.0 <= self.locality <= 1.0:
            raise WorkloadError(
                f"locality must be in [0, 1], got {self.locality}"
            )
        if self.padding < 0:
            raise WorkloadError(f"padding must be >= 0, got {self.padding}")


class SyntheticWorkload:
    """Builds topologies for the Section 4.2 experiments."""

    def __init__(self, config: SyntheticConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------
    # Data generation
    # ------------------------------------------------------------------

    def tuples_for_instance(self, instance: int) -> Iterator[Tuple]:
        """The tuple stream of spout instance ``instance``."""
        config = self.config
        n = config.parallelism
        rng = derived_rng(config.seed, instance)
        pad = Padding(config.padding)
        others = [j for j in range(n) if j != instance]
        emitted = 0
        while (
            config.tuples_per_instance is None
            or emitted < config.tuples_per_instance
        ):
            if n == 1 or rng.random() < config.locality:
                j = instance
            else:
                j = others[rng.randrange(len(others))]
            yield (instance, j, pad)
            emitted += 1

    # ------------------------------------------------------------------
    # Topologies
    # ------------------------------------------------------------------

    def topology(self, policy: str) -> Topology:
        """The evaluation application under one routing policy.

        ``S -> A (fields on f0) -> B (fields on f1)``; both POs count
        occurrences of their field, as in Section 4.1.
        """
        if policy not in POLICIES:
            raise WorkloadError(
                f"unknown policy {policy!r}; expected one of {POLICIES}"
            )
        n = self.config.parallelism
        builder = TopologyBuilder()
        builder.spout(
            "S",
            lambda: IteratorSpout(
                lambda ctx: self.tuples_for_instance(ctx.instance_index)
            ),
            parallelism=n,
        )
        builder.bolt(
            "A",
            lambda: CountBolt(0, forward=True),
            parallelism=n,
            inputs={"S": self._grouping_sa(policy)},
        )
        builder.bolt(
            "B",
            lambda: CountBolt(1, forward=False),
            parallelism=n,
            inputs={"A": self._grouping_ab(policy)},
        )
        return builder.build()

    def online_topology(self) -> Topology:
        """Same application with swappable (initially empty) routing
        tables, for manager-driven runs."""
        n = self.config.parallelism
        builder = TopologyBuilder()
        builder.spout(
            "S",
            lambda: IteratorSpout(
                lambda ctx: self.tuples_for_instance(ctx.instance_index)
            ),
            parallelism=n,
        )
        builder.bolt(
            "A",
            lambda: CountBolt(0, forward=True),
            parallelism=n,
            inputs={"S": TableFieldsGrouping(0)},
        )
        builder.bolt(
            "B",
            lambda: CountBolt(1, forward=False),
            parallelism=n,
            inputs={"A": TableFieldsGrouping(1)},
        )
        return builder.build()

    # ------------------------------------------------------------------
    # Grouping variants
    # ------------------------------------------------------------------

    def _grouping_sa(self, policy: str):
        if policy == "locality-aware":
            return CustomGrouping(lambda values, context: values[0])

        def hashed_sa(values, context):
            # Both hash-based and worst-case misalign the S->A hop:
            # key i reaches its home server with probability 1/n.
            pi1 = _one_fixed_point_permutation(len(context.dst_placements))
            return pi1[values[0]]

        return CustomGrouping(hashed_sa)

    def _grouping_ab(self, policy: str):
        if policy == "locality-aware":
            return CustomGrouping(lambda values, context: values[1])
        if policy == "hash-based":

            def hashed_ab(values, context):
                # pi2 agrees with pi1 at exactly one key, so the A->B
                # hop is local with probability exactly 1/n for both
                # matched and unmatched tuples — flat in the data's
                # locality, as in Fig. 8.
                pi2 = _second_permutation(len(context.dst_placements))
                return pi2[values[1]]

            return CustomGrouping(hashed_ab)

        def worst_case_ab(values, context):
            # Matched tuples (i, i, p) are always routed through the
            # network: the tuple sits at A_{pi1[i]}, so aim one server
            # past it. Unmatched tuples hash.
            n = len(context.dst_placements)
            pi1 = _one_fixed_point_permutation(n)
            if values[0] == values[1]:
                return (pi1[values[1]] + 1) % n
            return stable_hash(values[1], context.seed) % n

        return CustomGrouping(worst_case_ab)


def _one_fixed_point_permutation(n: int):
    """A balanced permutation of 0..n-1 with exactly one fixed point
    (n >= 3); identity for n = 1, the swap for n = 2."""
    if n == 1:
        return [0]
    if n == 2:
        return [1, 0]
    perm = [0] * n
    for j in range(1, n - 1):
        perm[j] = j + 1
    perm[n - 1] = 1
    return perm


def _second_permutation(n: int):
    """A permutation agreeing with the first at exactly one position
    (n >= 3): composing with another one-fixed-point permutation does
    it. For n = 2 the group is too small — matched tuples align."""
    pi1 = _one_fixed_point_permutation(n)
    sigma = _one_fixed_point_permutation(n)
    if n == 2:
        return pi1  # agree everywhere; see module docstring
    return [pi1[sigma[j]] for j in range(n)]
