"""Tests for topology construction and validation."""

import pytest

from repro.engine import (
    Bolt,
    FieldsGrouping,
    ShuffleGrouping,
    Spout,
    TopologyBuilder,
)
from repro.errors import TopologyError


class _NullSpout(Spout):
    def next_tuple(self, context):
        return False


class _NullBolt(Bolt):
    def process(self, tup, context):
        pass


def _chain_builder():
    builder = TopologyBuilder()
    builder.spout("S", _NullSpout, parallelism=2)
    builder.bolt("A", _NullBolt, parallelism=2, inputs={"S": FieldsGrouping(0)})
    builder.bolt("B", _NullBolt, parallelism=3, inputs={"A": FieldsGrouping(1)})
    return builder


def test_build_valid_chain():
    topology = _chain_builder().build()
    assert [op.name for op in topology.spouts] == ["S"]
    assert {op.name for op in topology.bolts} == {"A", "B"}
    assert topology.topological_order() == ["S", "A", "B"]
    assert topology.sinks() == ["B"]
    assert topology.operator("B").parallelism == 3
    assert topology.stream("S", "A").name == "S->A"


def test_inputs_and_outputs():
    topology = _chain_builder().build()
    assert [s.name for s in topology.inputs_of("A")] == ["S->A"]
    assert [s.name for s in topology.outputs_of("A")] == ["A->B"]
    assert topology.inputs_of("S") == []


def test_duplicate_operator_rejected():
    builder = TopologyBuilder()
    builder.spout("S", _NullSpout)
    with pytest.raises(TopologyError):
        builder.spout("S", _NullSpout)


def test_duplicate_stream_rejected():
    builder = TopologyBuilder()
    builder.spout("S", _NullSpout)
    builder.bolt("A", _NullBolt, inputs={"S": ShuffleGrouping()})
    with pytest.raises(TopologyError):
        builder.stream("S", "A", ShuffleGrouping())


def test_invalid_parallelism():
    builder = TopologyBuilder()
    with pytest.raises(TopologyError):
        builder.spout("S", _NullSpout, parallelism=0)


def test_stream_to_unknown_operator():
    builder = TopologyBuilder()
    builder.spout("S", _NullSpout)
    builder.stream("S", "ghost", ShuffleGrouping())
    with pytest.raises(TopologyError):
        builder.build()


def test_spout_cannot_receive():
    builder = TopologyBuilder()
    builder.spout("S", _NullSpout)
    builder.spout("T", _NullSpout)
    builder.stream("S", "T", ShuffleGrouping())
    with pytest.raises(TopologyError):
        builder.build()


def test_bolt_without_input_rejected():
    builder = TopologyBuilder()
    builder.spout("S", _NullSpout)
    builder.bolt("orphan", _NullBolt)
    with pytest.raises(TopologyError):
        builder.build()


def test_topology_without_spout_rejected():
    builder = TopologyBuilder()
    builder.bolt("A", _NullBolt)
    with pytest.raises(TopologyError):
        builder.build()


def test_cycle_rejected():
    builder = TopologyBuilder()
    builder.spout("S", _NullSpout)
    builder.bolt("A", _NullBolt, inputs={"S": ShuffleGrouping()})
    builder.bolt("B", _NullBolt, inputs={"A": ShuffleGrouping()})
    builder.stream("B", "A", ShuffleGrouping())
    with pytest.raises(TopologyError):
        builder.build()


def test_non_grouping_rejected():
    builder = TopologyBuilder()
    builder.spout("S", _NullSpout)
    with pytest.raises(TopologyError):
        builder.bolt("A", _NullBolt, inputs={"S": "shuffle"})


def test_diamond_topology_order():
    builder = TopologyBuilder()
    builder.spout("S", _NullSpout)
    builder.bolt("L", _NullBolt, inputs={"S": ShuffleGrouping()})
    builder.bolt("R", _NullBolt, inputs={"S": ShuffleGrouping()})
    builder.bolt("J", _NullBolt, inputs={
        "L": FieldsGrouping(0), "R": FieldsGrouping(0)
    })
    topology = builder.build()
    order = topology.topological_order()
    assert order[0] == "S"
    assert order[-1] == "J"
    assert set(order[1:3]) == {"L", "R"}
    assert topology.sinks() == ["J"]
    assert len(topology.inputs_of("J")) == 2
