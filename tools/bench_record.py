"""Record engine benchmark results as a committed perf trajectory.

``BENCH_engine.json`` at the repo root holds the engine's measured
wall-clock performance over time:

- ``baseline`` — the reference numbers a regression gate compares
  against (recorded once per optimization PR, from the pre-change
  tree);
- ``current`` — the most recent measurement of the committed tree;
- ``history`` — every recorded entry, append-only, so successive PRs
  leave a trajectory instead of overwriting each other.

All throughput metrics (``*_per_s``) are higher-is-better wall-clock
rates; ``*_bytes_per_key`` metrics are lower-is-better memory-model
numbers from the routing-table scale sweep. ``compare`` judges both,
with a configurable tolerance — rates because ratios within one run of
the suite are machine-stable, bytes/key because the byte model is
machine-independent entirely. Other metrics are informational.

The axis-direction convention itself lives in
``repro.campaign.baseline`` (campaign reports gate on the same rules);
this module keeps its historical ``compare`` interface and delegates.

Used by ``benchmarks/bench_engine.py`` (which can also be run as a
CLI) and by the ``engine-bench`` CI job.
"""

from __future__ import annotations

import datetime
import json
import os
import subprocess
import sys
from typing import Dict, List, Optional

_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
try:
    from repro.campaign.baseline import axis_of, compare_metrics
except ImportError:  # standalone use without PYTHONPATH=src
    sys.path.insert(0, _SRC)
    from repro.campaign.baseline import axis_of, compare_metrics

SCHEMA_VERSION = 1

#: default location: repo root, next to this file's parent directory
DEFAULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_engine.json",
)


def git_commit(cwd: Optional[str] = None) -> str:
    """Current commit hash, or "unknown" outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=cwd or os.path.dirname(DEFAULT_PATH),
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def load(path: str = DEFAULT_PATH) -> Dict:
    """Load the trajectory file, or an empty skeleton if absent."""
    if os.path.exists(path):
        with open(path) as handle:
            return json.load(handle)
    return {
        "schema": SCHEMA_VERSION,
        "note": (
            "Engine wall-clock performance trajectory. *_per_s metrics "
            "are higher-is-better rates measured by "
            "benchmarks/bench_engine.py; regenerate with "
            "PYTHONPATH=src python benchmarks/bench_engine.py --record current"
        ),
        "baseline": None,
        "current": None,
        "history": [],
    }


def record(
    metrics: Dict[str, float],
    role: str = "current",
    label: str = "",
    path: str = DEFAULT_PATH,
) -> Dict:
    """Record one measurement under ``role`` ("baseline" or "current").

    The entry is also appended to ``history``. Returns the full
    document after writing it back to ``path``.
    """
    if role not in ("baseline", "current"):
        raise ValueError(f"role must be 'baseline' or 'current': {role!r}")
    doc = load(path)
    entry = {
        "label": label or role,
        "role": role,
        "commit": git_commit(),
        "recorded_utc": datetime.datetime.now(
            datetime.timezone.utc
        ).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "metrics": {k: metrics[k] for k in sorted(metrics)},
    }
    doc[role] = entry
    doc.setdefault("history", []).append(entry)
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return doc


def compare(
    baseline_metrics: Dict[str, float],
    metrics: Dict[str, float],
    tolerance: float = 0.20,
    extra_axes: Optional[Dict[str, str]] = None,
) -> List[str]:
    """Regression messages for every rate metric that dropped — and
    every bytes/key metric that grew — more than ``tolerance`` vs the
    baseline. Empty list means no regression. ``extra_axes`` assigns
    directions ("higher"/"lower") to unsuffixed metric names; see
    ``repro.campaign.baseline.axis_of`` for the full convention."""
    return compare_metrics(
        baseline_metrics, metrics, tolerance=tolerance,
        extra_axes=extra_axes,
    )


def speedup(
    baseline_metrics: Dict[str, float],
    metrics: Dict[str, float],
    key: str,
) -> float:
    """current/baseline ratio for one metric (0.0 if unavailable)."""
    base = baseline_metrics.get(key, 0.0)
    now = metrics.get(key, 0.0)
    if not base:
        return 0.0
    return now / base
