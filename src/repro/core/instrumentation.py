"""Per-instance statistics collection (Section 3.2, Figure 4).

Every instrumented operator instance counts, for each tuple it
processes, the pair *(key that routed the tuple here, key that routes
the produced tuple onward)*. Counting uses SpaceSaving so memory stays
bounded no matter how many distinct pairs appear; only the most
frequent pairs — the ones worth co-locating — survive.

The tracker plugs into the engine through the executor's
``instrumentation`` hook, which calls
``observe(in_op, in_key, out_stream, out_key)``.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Tuple

from repro.spacesaving import ItemEstimate, SpaceSaving

#: A pair observation namespace: (input stream name, output stream name).
EdgePair = Tuple[str, str]


class PairTracker:
    """Bounded-memory (input key, output key) pair counter.

    Parameters
    ----------
    op_name:
        The instrumented operator (used to reconstruct the input stream
        name from the source operator the executor reports).
    capacity:
        SpaceSaving capacity *per (in-stream, out-stream) pair*. The
        paper uses a few MB per instance; at ~100 B per monitored pair,
        the default tracks the top 4096 pairs in well under 1 MB.
    sketch_factory:
        Alternative counter (e.g. ``ExactCounter``) with the same
        interface — used by the offline baseline and the Fig. 12
        edge-budget sweep.
    """

    def __init__(
        self,
        op_name: str,
        capacity: int = 4096,
        sketch_factory: Callable[[int], object] = SpaceSaving,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.op_name = op_name
        self.capacity = capacity
        self._sketch_factory = sketch_factory
        self._sketches: Dict[EdgePair, object] = {}
        self.observed = 0

    # ------------------------------------------------------------------
    # Hot path (called by the executor for every processed tuple)
    # ------------------------------------------------------------------

    def observe(
        self,
        in_op: str,
        in_key: Hashable,
        out_stream: str,
        out_key: Hashable,
    ) -> None:
        in_stream = f"{in_op}->{self.op_name}"
        edge_pair = (in_stream, out_stream)
        sketch = self._sketches.get(edge_pair)
        if sketch is None:
            sketch = self._sketch_factory(self.capacity)
            self._sketches[edge_pair] = sketch
        sketch.offer((in_key, out_key))
        self.observed += 1

    # ------------------------------------------------------------------
    # Collection (the manager's GET_METRICS)
    # ------------------------------------------------------------------

    def collect(self) -> Dict[EdgePair, List[ItemEstimate]]:
        """All monitored pair counts, most frequent first."""
        return {
            edge_pair: list(sketch.items())
            for edge_pair, sketch in self._sketches.items()
        }

    def collect_and_clear(self) -> Dict[EdgePair, List[ItemEstimate]]:
        """Collect, then reinitialize — the paper resets statistics at
        every reconfiguration so only recent data shapes the next
        routing decision."""
        stats = self.collect()
        self.clear()
        return stats

    def clear(self) -> None:
        for sketch in self._sketches.values():
            sketch.clear()
        self.observed = 0

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    def sketch_stats(self) -> Dict[str, Dict[str, int]]:
        """Occupancy and error bound of every sketch, keyed by
        ``"in_stream|out_stream"`` — how full the SpaceSaving summaries
        are and how loose their estimates have become (``error_bound``
        is the sketch's ``N / m`` overestimation cap; 0 for exact
        counters). Sampled by the telemetry layer between collections.
        """
        stats: Dict[str, Dict[str, int]] = {}
        for (in_stream, out_stream), sketch in self._sketches.items():
            stats[f"{in_stream}|{out_stream}"] = {
                "occupancy": len(sketch),
                "capacity": self.capacity,
                "observed_weight": getattr(sketch, "n", 0),
                "error_bound": (
                    sketch.max_error() if hasattr(sketch, "max_error") else 0
                ),
            }
        return stats

    def __repr__(self) -> str:
        return (
            f"PairTracker(op={self.op_name!r}, observed={self.observed}, "
            f"edges={list(self._sketches)})"
        )
