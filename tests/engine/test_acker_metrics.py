"""Tests for acking/flow control and the metrics hub."""

import pytest

from repro.engine import Simulator
from repro.engine.acker import Acker
from repro.engine.metrics import MetricsHub, StreamCounters, ThroughputSampler
from repro.errors import SimulationError


def test_acker_single_chain():
    sim = Simulator()
    acker = Acker(sim, ack_delay_s=0.01)
    acked = []
    acker.register(1, lambda: acked.append(1))
    assert acker.in_flight == 1
    acker.on_processed(1, emitted=1)  # hop 1: one child
    acker.on_processed(1, emitted=0)  # hop 2: sink
    assert acker.in_flight == 0
    sim.run()
    assert acked == [1]
    assert sim.now == pytest.approx(0.01)
    assert acker.completed == 1


def test_acker_fan_out_tree():
    sim = Simulator()
    acker = Acker(sim, ack_delay_s=0.0)
    acked = []
    acker.register(7, lambda: acked.append(7))
    acker.on_processed(7, emitted=3)  # splits into 3
    for _ in range(3):
        assert acker.in_flight == 1
        acker.on_processed(7, emitted=0)
    sim.run()
    assert acked == [7]


def test_acker_duplicate_root_rejected():
    acker = Acker(Simulator(), 0.0)
    acker.register(1, lambda: None)
    with pytest.raises(SimulationError):
        acker.register(1, lambda: None)


def test_acker_unknown_root_ignored():
    acker = Acker(Simulator(), 0.0)
    acker.on_processed(99, emitted=1)  # silently ignored
    assert acker.in_flight == 0


def test_stream_counters_locality_and_delta():
    counters = StreamCounters()
    assert counters.locality() == 1.0  # vacuous
    counters.local_tuples = 3
    counters.remote_tuples = 1
    assert counters.locality() == 0.75
    snapshot = counters.copy()
    counters.local_tuples = 5
    counters.remote_tuples = 5
    delta = counters.minus(snapshot)
    assert delta.local_tuples == 2
    assert delta.remote_tuples == 4
    assert delta.locality() == pytest.approx(2 / 6)


def test_metrics_aggregates():
    hub = MetricsHub()
    hub.on_processed("B", 0)
    hub.on_processed("B", 0)
    hub.on_processed("B", 1)
    assert hub.processed_total("B") == 3
    hub.on_emit("A", 0)
    assert hub.emitted_total("A") == 1
    hub.on_delivered("B", 0)
    hub.on_delivered("B", 0)
    hub.on_delivered("B", 1)
    assert hub.received_per_instance("B", 3) == [2, 1, 0]
    assert hub.load_balance("B", 3) == pytest.approx(2 / 1.0)


def test_metrics_load_balance_empty():
    hub = MetricsHub()
    assert hub.load_balance("B", 4) == 1.0


def test_metrics_locality_overall():
    hub = MetricsHub()
    hub.on_route("S->A", remote=False, nbytes=10)
    hub.on_route("S->A", remote=True, nbytes=10)
    hub.on_route("A->B", remote=True, nbytes=10)
    assert hub.locality("S->A") == 0.5
    assert hub.locality() == pytest.approx(1 / 3)
    assert hub.locality("A->B") == 0.0


def test_throughput_sampler():
    sim = Simulator()
    hub = MetricsHub()
    sampler = ThroughputSampler(sim, hub, "B", interval_s=1.0)
    sampler.start()
    # 10 tuples in the first second, 20 in the second.
    for i in range(10):
        sim.schedule(0.5, hub.on_processed, "B", 0)
    for i in range(20):
        sim.schedule(1.5, hub.on_processed, "B", 0)
    sim.run(until=3.0)
    assert [rate for _, rate in sampler.samples] == [10.0, 20.0, 0.0]


def test_sampler_interval_validation():
    with pytest.raises(ValueError):
        ThroughputSampler(Simulator(), MetricsHub(), "B", interval_s=0.0)
