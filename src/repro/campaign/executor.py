"""The parallel cell executor: worker subprocesses, timeouts, crashes.

Each planned cell becomes one ``python -m repro.campaign.worker``
subprocess. The executor:

- exports ``PYTHONHASHSEED=<cell seed>`` into the worker's environment
  (and makes sure ``src/`` is importable there), so a cell's RNG
  environment is fully determined by its spec;
- enforces the per-cell wall-clock timeout: a stuck cell is killed and
  recorded as ``status="timeout"`` — the *cell* fails, the campaign
  keeps running;
- captures crashes: a worker that exits without writing its result
  file becomes ``status="crash"`` with the log tail attached;
- tees each worker's stdout/stderr into ``cells/<id>.log`` next to the
  result JSON, so a failing cell's full output is one file away.

Results come back in plan order regardless of completion order, so
reports, JSONL and baselines line up run after run.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import repro
from repro.campaign.planner import CellSpec
from repro.campaign.worker import EXIT_VIOLATION

#: terminal statuses a cell can end in
STATUSES = ("ok", "violation", "timeout", "crash")

#: log lines kept as the ``error`` excerpt of a crashed cell
LOG_TAIL_LINES = 25


@dataclass
class CellResult:
    """One executed cell, as the report sees it."""

    id: str
    runner: str
    seed: int
    status: str
    params: Dict = field(default_factory=dict)
    assignment: Dict = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)
    fingerprint: Optional[str] = None
    violations: List[dict] = field(default_factory=list)
    bundle_path: Optional[str] = None
    duration_s: float = 0.0
    hash_seed: Optional[str] = None
    log_path: Optional[str] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "runner": self.runner,
            "seed": self.seed,
            "status": self.status,
            "params": dict(self.params),
            "assignment": dict(self.assignment),
            "metrics": dict(self.metrics),
            "fingerprint": self.fingerprint,
            "violations": list(self.violations),
            "bundle_path": self.bundle_path,
            "duration_s": self.duration_s,
            "hash_seed": self.hash_seed,
            "log_path": self.log_path,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CellResult":
        return cls(
            **{
                key: data.get(key)
                for key in (
                    "id",
                    "runner",
                    "seed",
                    "status",
                    "fingerprint",
                    "bundle_path",
                    "hash_seed",
                    "log_path",
                    "error",
                )
            },
            params=dict(data.get("params", {})),
            assignment=dict(data.get("assignment", {})),
            metrics=dict(data.get("metrics", {})),
            violations=list(data.get("violations", [])),
            duration_s=data.get("duration_s", 0.0),
        )


def worker_env(seed: int) -> Dict[str, str]:
    """The subprocess environment for one cell: the cell seed exported
    as PYTHONHASHSEED and the live ``repro`` package's src/ prepended
    to PYTHONPATH (the worker must import the same tree)."""
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(seed)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    parts = [src] + [
        p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p
    ]
    env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
    return env


def run_one(
    spec: CellSpec,
    cells_dir: str,
    bundle_dir: str,
    timeout_s: float,
) -> CellResult:
    """Run one cell in a worker subprocess; never raises on cell
    failure — timeouts and crashes come back as statuses."""
    os.makedirs(cells_dir, exist_ok=True)
    safe = _safe(spec.id)
    spec_path = os.path.join(cells_dir, f"{safe}.spec.json")
    result_path = os.path.join(cells_dir, f"{safe}.json")
    log_path = os.path.join(cells_dir, f"{safe}.log")
    if os.path.exists(result_path):
        os.remove(result_path)  # never report a stale result
    with open(spec_path, "w", encoding="utf-8") as handle:
        json.dump(
            {"cell": spec.to_dict(), "bundle_dir": bundle_dir},
            handle,
            indent=2,
            sort_keys=True,
        )

    command = [
        sys.executable,
        "-m",
        "repro.campaign.worker",
        spec_path,
        result_path,
    ]
    started = time.time()
    timed_out = False
    with open(log_path, "w", encoding="utf-8") as log:
        try:
            proc = subprocess.run(
                command,
                env=worker_env(spec.seed),
                stdout=log,
                stderr=subprocess.STDOUT,
                timeout=timeout_s,
            )
            returncode = proc.returncode
        except subprocess.TimeoutExpired:
            timed_out = True
            returncode = None
    elapsed = round(time.time() - started, 3)

    base = CellResult(
        id=spec.id,
        runner=spec.runner,
        seed=spec.seed,
        status="crash",
        params=spec.params,
        assignment=spec.assignment,
        duration_s=elapsed,
        log_path=log_path,
    )
    if timed_out:
        base.status = "timeout"
        base.error = (
            f"cell exceeded its {timeout_s:g}s timeout and was killed"
        )
        return base
    if os.path.exists(result_path) and returncode in (0, EXIT_VIOLATION):
        with open(result_path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        result = CellResult.from_dict(data)
        result.log_path = log_path
        return result
    base.error = (
        f"worker exited with code {returncode} without a result; "
        f"log tail:\n{_tail(log_path)}"
    )
    return base


def run_cells(
    specs: List[CellSpec],
    out_dir: str,
    timeout_s: float = 120.0,
    workers: int = 0,
    on_done: Optional[Callable[[CellResult, int, int], None]] = None,
) -> List[CellResult]:
    """Run every cell in a bounded pool; results in plan order.

    ``on_done(result, finished, total)`` fires as each cell completes
    (from worker threads, serialized by an internal lock).
    """
    cells_dir = os.path.join(out_dir, "cells")
    bundle_dir = os.path.join(out_dir, "bundles")
    if workers <= 0:
        workers = min(len(specs), os.cpu_count() or 2) or 1
    lock = threading.Lock()
    finished = [0]

    def _run(spec: CellSpec) -> CellResult:
        result = run_one(spec, cells_dir, bundle_dir, timeout_s)
        if on_done is not None:
            with lock:
                finished[0] += 1
                on_done(result, finished[0], len(specs))
        return result

    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_run, specs))


def _safe(cell_id: str) -> str:
    return "".join(
        ch if ch.isalnum() or ch in "._+-" else "_" for ch in cell_id
    )


def _tail(log_path: str, lines: int = LOG_TAIL_LINES) -> str:
    try:
        with open(log_path, "r", encoding="utf-8", errors="replace") as f:
            return "".join(f.readlines()[-lines:]).rstrip()
    except OSError:
        return "<no log captured>"
