"""Property-based tests of the network model's ordering guarantees.

The reconfiguration protocol's barrier correctness rests on per-pair
FIFO delivery; these properties pin it down under arbitrary traffic.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Cluster, Simulator

transfers = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),   # src server
        st.integers(min_value=0, max_value=2),   # dst server
        st.integers(min_value=1, max_value=5000),  # bytes
        st.floats(min_value=0.0, max_value=0.01),  # send delay
    ),
    min_size=1,
    max_size=40,
)


def _run(batch, bandwidth_gbps):
    sim = Simulator()
    cluster = Cluster(sim, 3, bandwidth_gbps=bandwidth_gbps)
    deliveries = []
    for index, (src, dst, nbytes, delay) in enumerate(batch):
        if src == dst:
            continue

        def send(src=src, dst=dst, nbytes=nbytes, index=index):
            cluster.transfer(
                cluster.server(src),
                cluster.server(dst),
                nbytes,
                lambda: deliveries.append((src, dst, index, sim.now)),
            )

        sim.schedule(delay, send)
    sim.run()
    return cluster, deliveries


@given(batch=transfers, bandwidth=st.sampled_from([0.001, 1.0, None]))
@settings(max_examples=80, deadline=None)
def test_every_transfer_is_delivered_exactly_once(batch, bandwidth):
    cluster, deliveries = _run(batch, bandwidth)
    expected = sum(1 for s, d, _, _ in batch if s != d)
    assert len(deliveries) == expected
    assert cluster.network.messages_sent == expected


@given(batch=transfers, bandwidth=st.sampled_from([0.001, 1.0]))
@settings(max_examples=80, deadline=None)
def test_per_pair_fifo_delivery(batch, bandwidth):
    """Between any (src, dst) pair, deliveries follow *send order*
    (send time, ties broken by scheduling order)."""
    _, deliveries = _run(batch, bandwidth)
    expected = {}
    for index, (src, dst, _, delay) in enumerate(batch):
        if src != dst:
            expected.setdefault((src, dst), []).append((delay, index))
    for pair in expected:
        expected[pair] = [i for _, i in sorted(expected[pair])]
    observed = {}
    for src, dst, index, _ in deliveries:
        observed.setdefault((src, dst), []).append(index)
    assert observed == expected


@given(batch=transfers)
@settings(max_examples=50, deadline=None)
def test_delivery_times_never_beat_latency(batch):
    sim_latency = 50e-6
    _, deliveries = _run(batch, bandwidth_gbps=None)
    for _, _, _, at in deliveries:
        assert at >= sim_latency


@given(batch=transfers)
@settings(max_examples=50, deadline=None)
def test_byte_accounting(batch):
    cluster, _ = _run(batch, bandwidth_gbps=1.0)
    expected_bytes = sum(n for s, d, n, _ in batch if s != d)
    assert cluster.network.bytes_sent == expected_bytes
