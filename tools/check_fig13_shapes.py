"""Assert the Figure 13 paper-claim shapes from a campaign artifact.

``benchmarks/bench_fig13.py`` regenerates the Figure 13 grid in-process
and asserts the paper's claims on it; ``campaigns/fig13-locality.yaml``
sweeps the same grid through the campaign orchestrator and records it
as ``report.jsonl``. This tool closes the loop: the same expected-shape
assertions run off the recorded artifact, so one campaign run feeds
both the regression baseline and the figure-shape gate — no second
sweep, no drift between what was measured and what was asserted.

Shapes checked per fig13 cell (mirroring bench_fig13):

- at least one reconfiguration round completed;
- the jump: post-reconfiguration throughput exceeds the
  pre-reconfiguration mean by > 25%;
- the win: the with-reconfiguration run beats the never-reconfigured
  run's steady state by > 20%;
- on the throttled 1 Gb/s network the reconfiguration gain exceeds
  1.8x (the NIC-bound regime where locality matters most).

Usage::

    python tools/check_fig13_shapes.py results/campaigns/fig13-locality/report.jsonl
"""

from __future__ import annotations

import json
import sys
from typing import Dict, Iterable, List

#: the bench_fig13 claim thresholds, shared by all checks
JUMP_RATIO = 1.25
WIN_RATIO = 1.20
SLOW_NETWORK_GBPS = 1.0
SLOW_NETWORK_MIN_GAIN = 1.8


def load_cells(path: str) -> List[dict]:
    """The cell rows of a campaign ``report.jsonl`` (header skipped)."""
    cells = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            if row.get("schema"):  # header row
                continue
            cells.append(row)
    return cells


def check_fig13_shapes(cells: Iterable[dict]) -> List[str]:
    """Violation messages for every broken Figure 13 shape claim.

    ``cells`` are campaign report rows from a ``fig13``-runner
    campaign; non-ok cells are reported as violations too (a crashed
    cell must not silently pass the shape gate).
    """
    violations: List[str] = []
    checked = 0
    for cell in cells:
        cell_id = cell.get("id", "<cell>")
        if cell.get("runner") not in (None, "fig13"):
            continue
        if cell.get("status") != "ok":
            violations.append(
                f"{cell_id}: status {cell.get('status')!r}, cannot "
                f"assert shapes"
            )
            continue
        metrics: Dict[str, float] = cell.get("metrics", {})
        required = (
            "before_with_reconf_per_s",
            "after_with_reconf_per_s",
            "after_without_reconf_per_s",
            "rounds_completed",
        )
        missing = [key for key in required if key not in metrics]
        if missing:
            violations.append(
                f"{cell_id}: metrics missing {missing} — not a fig13 "
                f"campaign artifact?"
            )
            continue
        checked += 1
        before = metrics["before_with_reconf_per_s"]
        after = metrics["after_with_reconf_per_s"]
        without = metrics["after_without_reconf_per_s"]
        if metrics["rounds_completed"] < 1:
            violations.append(f"{cell_id}: no reconfiguration round ran")
        if after <= JUMP_RATIO * before:
            violations.append(
                f"{cell_id}: no post-reconfiguration jump "
                f"(after {after:,.0f} <= {JUMP_RATIO} x "
                f"before {before:,.0f})"
            )
        if after <= WIN_RATIO * without:
            violations.append(
                f"{cell_id}: reconfiguration does not beat the "
                f"no-reconfiguration run (after {after:,.0f} <= "
                f"{WIN_RATIO} x without {without:,.0f})"
            )
        bandwidth = cell.get("params", {}).get("bandwidth_gbps")
        if bandwidth == SLOW_NETWORK_GBPS and without > 0:
            gain = after / without
            if gain <= SLOW_NETWORK_MIN_GAIN:
                violations.append(
                    f"{cell_id}: gain {gain:.2f}x on the "
                    f"{SLOW_NETWORK_GBPS:g} Gb/s network (expected "
                    f"> {SLOW_NETWORK_MIN_GAIN}x)"
                )
    if not checked:
        violations.append("no fig13 cells found in the artifact")
    return violations


def main(argv: List[str]) -> int:
    if len(argv) != 2:
        print(__doc__.strip().splitlines()[-1], file=sys.stderr)
        return 2
    try:
        cells = load_cells(argv[1])
    except (OSError, ValueError) as exc:
        print(f"cannot read artifact: {exc}", file=sys.stderr)
        return 2
    violations = check_fig13_shapes(cells)
    if violations:
        print(f"fig13 shape check: {len(violations)} violation(s)")
        for violation in violations:
            print(f"  {violation}")
        return 1
    print(f"fig13 shape check: all claims hold across the artifact")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
