"""Integration: export a real run's telemetry as JSONL, load it back
with :class:`repro.analysis.telemetry.TelemetryLog`, and render the
report — the full pipeline ISSUE acceptance asks for."""

import random

import pytest

from repro.analysis.report import render_report
from repro.analysis.telemetry import TelemetryLog
from repro.core import Manager, ManagerConfig
from repro.engine import (
    Cluster,
    CountBolt,
    Simulator,
    TableFieldsGrouping,
    TopologyBuilder,
    deploy,
)
from repro.engine.operators import IteratorSpout
from repro.observability import attach_telemetry

N = 3
PER_SPOUT = 8000


def _source(ctx):
    rng = random.Random(ctx.instance_index)
    for _ in range(PER_SPOUT):
        a = ctx.instance_index if rng.random() < 0.8 else rng.randrange(N)
        yield (a, a + 100)


def _build():
    builder = TopologyBuilder()
    builder.spout("S", lambda: IteratorSpout(_source), parallelism=N)
    builder.bolt(
        "A",
        lambda: CountBolt(0, forward=True),
        parallelism=N,
        inputs={"S": TableFieldsGrouping(0)},
    )
    builder.bolt(
        "B",
        lambda: CountBolt(1, forward=False),
        parallelism=N,
        inputs={"A": TableFieldsGrouping(1)},
    )
    return builder.build()


@pytest.fixture(scope="module")
def exported(tmp_path_factory):
    """One telemetry-enabled run, exported and reloaded."""
    path = str(tmp_path_factory.mktemp("telemetry") / "run.jsonl")
    sim = Simulator()
    cluster = Cluster(sim, N)
    deployment = deploy(sim, cluster, _build())
    manager = Manager(deployment, ManagerConfig(period_s=0.05))
    telemetry = attach_telemetry(
        deployment, manager=manager, path=path, snapshot_interval_s=0.02
    )
    manager.start()
    deployment.start()
    sim.run(until=0.3)
    manager.stop()
    sim.run()
    telemetry.flush()
    return TelemetryLog.load(path), deployment, manager


class TestRoundTrip:
    def test_complete_round_span_with_all_phases(self, exported):
        log, _, manager = exported
        rounds = [r for r in log.rounds() if r.complete]
        assert rounds, "no complete reconfiguration round in the trace"
        assert len(rounds) == len(manager.completed_rounds)
        first = rounds[0]
        assert first.attrs["status"] == "committed"
        for phase in ("STATS_COLLECT", "PARTITION", "PROPAGATE", "MIGRATE"):
            child = first.child(phase)
            assert child is not None, f"missing {phase} span"
            assert child.complete, f"{phase} span never ended"
        assert [name for _, name, _ in first.events] == ["COMMIT"]

    def test_phases_are_ordered_and_nested(self, exported):
        log, _, _ = exported
        span = [r for r in log.rounds() if r.complete][0]
        names = [c.name for c in span.children]
        assert names == ["STATS_COLLECT", "PARTITION", "PROPAGATE", "MIGRATE"]
        for child in span.children:
            assert span.start <= child.start
            assert child.end <= span.end

    def test_snapshots_present_and_timestamped(self, exported):
        log, _, _ = exported
        assert len(log.snapshots) >= 10
        stamps = [s["ts"] for s in log.snapshots]
        assert stamps == sorted(stamps)
        assert all("locality" in s and "throughput" in s
                   for s in log.snapshots)

    def test_metric_dump_matches_live_deployment(self, exported):
        log, deployment, _ = exported
        streams = log.metric_family("stream_traffic")
        assert set(streams) == {"stream=S->A", "stream=A->B"}
        live = deployment.metrics.streams["A->B"]
        assert streams["stream=A->B"]["local_tuples"] == live.local_tuples
        assert streams["stream=A->B"]["remote_tuples"] == live.remote_tuples
        assert log.metric("network_bytes_total") == (
            deployment.cluster.network.bytes_sent
        )

    def test_routing_and_migration_metrics_exported(self, exported):
        log, _, manager = exported
        hits = log.metric_family("routing_table_hits")
        assert hits, "no routing_table_hits samples"
        assert log.metric("migrated_keys_total") > 0
        assert log.metric("reconf_rounds_completed") == len(
            manager.completed_rounds
        )

    def test_report_renders(self, exported):
        log, _, _ = exported
        report = render_report(log)
        assert "Run summary" in report
        assert "Round 1 — committed" in report
        assert "STATS_COLLECT" in report
        assert "COMMIT" in report
