"""Scenario campaigns: declarative matrix sweeps with tracked results.

A *campaign* is a declarative experiment matrix — workload knobs ×
grouping policy × fault plan × rescale schedule × delta/compact wire
flags × seeds — described by one YAML (or JSON) file under
``campaigns/``.  ``python -m repro.campaign run campaigns/<name>.yaml``
expands the matrix into *cells*, executes every cell in a parallel pool
of worker subprocesses (per-cell timeout, crash capture, seeded
``PYTHONHASHSEED``), attaches the ``repro.testing`` invariant suite to
episode cells, and aggregates everything into a per-campaign JSONL +
markdown report that diffs against a committed baseline with the same
axis semantics ``tools/bench_record.py`` uses for the engine
trajectory (``*_per_s`` higher-is-better, ``*_bytes_per_key``
lower-is-better, >20% moves gated).

Module map:

- :mod:`repro.campaign.config` — the campaign schema: loading and
  validation of campaign files (:class:`CampaignConfig`);
- :mod:`repro.campaign.planner` — matrix → ordered list of
  :class:`CellSpec` with stable, human-readable cell ids;
- :mod:`repro.campaign.runners` — what one cell *does*: the
  ``episode`` runner (fuzz-grade invariants + simulator fingerprint),
  and the ``fig13`` / ``skew`` runners that port the corresponding
  ``benchmarks/bench_fig*.py`` sweeps;
- :mod:`repro.campaign.worker` — the subprocess entry point
  (``python -m repro.campaign.worker``) that runs exactly one cell;
- :mod:`repro.campaign.executor` — the parallel pool: spawns one
  worker per cell with the cell's seeds exported, enforces timeouts,
  and turns crashes into failed *cells* instead of failed campaigns;
- :mod:`repro.campaign.collector` — JSONL report writing/loading;
- :mod:`repro.campaign.baseline` — metric axis semantics + committed
  baseline diffing (shared with ``tools/bench_record.py``);
- :mod:`repro.campaign.report` — the markdown report.

Quick start::

    PYTHONPATH=src python -m repro.campaign run campaigns/matrix-quick.yaml
    PYTHONPATH=src python -m repro.campaign list campaigns/matrix-quick.yaml
    # re-run one cell and verify it reproduces the report's fingerprint
    PYTHONPATH=src python -m repro.campaign run campaigns/matrix-quick.yaml \\
        --cell "compact_tables=on,delta_propagation=on,faults=on,hybrid=on,rescale=on,seed=7"
"""

from repro.campaign.baseline import (
    axis_of,
    compare_metrics,
    diff_campaign,
    load_baseline,
    write_baseline,
)
from repro.campaign.config import CampaignConfig, CampaignError, load_campaign
from repro.campaign.executor import CellResult, run_cells
from repro.campaign.planner import CellSpec, cell_id, plan
from repro.campaign.runners import CellOutcome, run_cell

__all__ = [
    "CampaignConfig",
    "CampaignError",
    "CellOutcome",
    "CellResult",
    "CellSpec",
    "axis_of",
    "cell_id",
    "compare_metrics",
    "diff_campaign",
    "load_baseline",
    "load_campaign",
    "plan",
    "run_cell",
    "run_cells",
    "write_baseline",
]
