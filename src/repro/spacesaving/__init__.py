"""Bounded-memory frequent-item estimation (SpaceSaving).

This subpackage implements the SpaceSaving algorithm of Metwally, Agrawal
and El Abbadi (ICDT'05), which the paper uses to collect key-pair
frequency statistics inside operator instances with a fixed memory budget
(Section 3.2 of the paper).

Public API:

- :class:`~repro.spacesaving.sketch.SpaceSaving` — the sketch itself.
- :class:`~repro.spacesaving.sketch.ItemEstimate` — (item, count, error).
- :class:`~repro.spacesaving.exact.ExactCounter` — an exact counter with
  the same interface, used as the offline baseline.
"""

from repro.spacesaving.exact import ExactCounter
from repro.spacesaving.sketch import ItemEstimate, SpaceSaving
from repro.spacesaving.summary import StreamSummary

__all__ = ["SpaceSaving", "ItemEstimate", "ExactCounter", "StreamSummary"]
