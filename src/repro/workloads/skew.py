"""A Zipf-skewed workload with a flash hot key — the regime the
paper punts on.

Spout instance ``i`` emits tail key ``rank * P + i`` for a Zipf-drawn
``rank``, so every tail key has a perfect home instance (100% locality
under an ideal routing table). On top of that, *every* instance emits
the shared flash key ``HOT_KEY`` with probability ``flash_share`` —
the SpaceSaving-detectable heavy hitter a single POI cannot absorb.

Three routing policies expose the tension the hybrid router resolves:

- ``table``  — pure locality-aware tables: the tail is 100% local but
  the hot key pins one instance (bad load balance);
- ``hash``   — plain hash fields grouping: balanced-ish load but only
  ~1/P of the tail stays local;
- ``hybrid`` — tables for the tail, the hot key split over
  ``split_width`` least-loaded members: local tail *and* spread hot
  key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from repro.core.routing_table import RoutingTable
from repro.engine import (
    FieldsGrouping,
    HybridTableFieldsGrouping,
    TableFieldsGrouping,
    Topology,
    TopologyBuilder,
)
from repro.engine.operators import CountBolt, IteratorSpout
from repro.errors import WorkloadError
from repro.workloads.zipf import ZipfSampler, derived_rng

#: the flash-crowd key every spout instance emits
HOT_KEY = "HOT"

#: routing policies compared by the skew experiment
SKEW_POLICIES = ("table", "hash", "hybrid")


@dataclass(frozen=True)
class SkewConfig:
    """Parameters of the skewed workload."""

    parallelism: int = 4
    #: Zipf ranks per spout instance (tail key population = ranks × P)
    ranks: int = 64
    #: Zipf exponent of the tail distribution
    exponent: float = 1.5
    #: probability each emission is the shared flash hot key
    flash_share: float = 0.3
    #: instances the hybrid policy splits the hot key over
    split_width: int = 2
    seed: int = 0
    #: cap on emitted tuples per spout instance; None = unbounded
    tuples_per_instance: int = None

    def __post_init__(self) -> None:
        if self.parallelism < 1:
            raise WorkloadError(
                f"parallelism must be >= 1, got {self.parallelism}"
            )
        if self.ranks < 1:
            raise WorkloadError(f"ranks must be >= 1, got {self.ranks}")
        if not 0.0 <= self.flash_share <= 1.0:
            raise WorkloadError(
                f"flash_share must be in [0, 1], got {self.flash_share}"
            )
        if self.split_width < 2:
            raise WorkloadError(
                f"split_width must be >= 2, got {self.split_width}"
            )


class SkewWorkload:
    """Builds skew-experiment topologies: ``S -> A (count on f0)``."""

    def __init__(self, config: SkewConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------
    # Data generation
    # ------------------------------------------------------------------

    def tuples_for_instance(self, instance: int) -> Iterator[Tuple]:
        config = self.config
        rng = derived_rng(config.seed, "skew", instance)
        sampler = ZipfSampler(config.ranks, config.exponent, rng)
        emitted = 0
        while (
            config.tuples_per_instance is None
            or emitted < config.tuples_per_instance
        ):
            if rng.random() < config.flash_share:
                yield (HOT_KEY,)
            else:
                rank = sampler.sample()
                yield (rank * config.parallelism + instance,)
            emitted += 1

    # ------------------------------------------------------------------
    # Routing tables
    # ------------------------------------------------------------------

    def home_table(self) -> Dict:
        """The ideal key → instance mapping: each tail key to its home
        instance (``key % P``), the hot key to instance 0."""
        P = self.config.parallelism
        mapping = {
            rank * P + i: i
            for rank in range(self.config.ranks)
            for i in range(P)
        }
        mapping[HOT_KEY] = 0
        return mapping

    def split_set(self) -> Dict:
        """The hybrid policy's split set: the hot key over the first
        ``split_width`` instances (its table owner included)."""
        width = min(self.config.split_width, self.config.parallelism)
        return {HOT_KEY: tuple(range(width))}

    # ------------------------------------------------------------------
    # Topologies
    # ------------------------------------------------------------------

    def topology(self, policy: str) -> Topology:
        """``S -> A`` under one routing policy; A counts field 0."""
        if policy not in SKEW_POLICIES:
            raise WorkloadError(
                f"unknown policy {policy!r}; expected one of {SKEW_POLICIES}"
            )
        P = self.config.parallelism
        if policy == "hash":
            grouping = FieldsGrouping(0)
        elif policy == "table":
            grouping = TableFieldsGrouping(
                0, table=RoutingTable(self.home_table())
            )
        else:
            grouping = HybridTableFieldsGrouping(
                0,
                table=RoutingTable(self.home_table(), self.split_set()),
            )
        builder = TopologyBuilder()
        builder.spout(
            "S",
            lambda: IteratorSpout(
                lambda ctx: self.tuples_for_instance(ctx.instance_index)
            ),
            parallelism=P,
        )
        builder.bolt(
            "A",
            lambda: CountBolt(0, forward=False),
            parallelism=P,
            inputs={"S": grouping},
        )
        return builder.build()

    # ------------------------------------------------------------------
    # Ground truth
    # ------------------------------------------------------------------

    def expected_counts(self) -> Dict:
        """Exact per-key counts A should hold (summed over instances)
        at quiescence — the conservation oracle."""
        counts: Dict = {}
        for instance in range(self.config.parallelism):
            for (key,) in self.tuples_for_instance(instance):
                counts[key] = counts.get(key, 0) + 1
        return counts
