"""Telemetry sinks: where trace events, snapshots and metric dumps go.

A sink receives plain-dict records and owns their serialization. The
default everywhere is :data:`NULL_SINK`, whose ``emit`` is a no-op —
instrumented code pays nothing unless a run opts in by passing a
:class:`JsonlSink` (files, the exchange format ``repro.analysis``
loads) or a :class:`MemorySink` (tests).

Record shapes (the JSONL schema, also documented in DESIGN.md §8.3):

- ``{"type": "span_begin", "ts", "span", "parent", "name", ...attrs}``
- ``{"type": "span_end",   "ts", "span", "name", ...attrs}``
- ``{"type": "event",      "ts", "span", "name", ...attrs}``
- ``{"type": "snapshot",   "ts", ...sampled series}``
- ``{"type": "metric",     "ts", "metric", "kind", "labels", "value"}``

Every record carries ``ts``, the *simulated* clock in seconds.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional


class TelemetrySink:
    """Interface: accepts records; may buffer until :meth:`close`."""

    #: False only on the null sink — publishers with per-record cost
    #: beyond a dict literal may check this before building the record.
    enabled = True

    def emit(self, record: Dict[str, Any]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (idempotent)."""


class NullSink(TelemetrySink):
    """Discards everything (the opt-out default)."""

    enabled = False

    def emit(self, record: Dict[str, Any]) -> None:
        pass


#: Shared no-op sink instance.
NULL_SINK = NullSink()


class MemorySink(TelemetrySink):
    """Keeps records in a list — for tests and in-process analysis."""

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []

    def emit(self, record: Dict[str, Any]) -> None:
        self.records.append(record)


class JsonlSink(TelemetrySink):
    """Writes one JSON object per line to ``path``.

    Records are buffered and written on :meth:`close` (or every
    ``flush_every`` records), so a simulated hot loop never blocks on
    file I/O. Non-JSON-serializable attribute values are stringified
    rather than raising — telemetry must never take down a run.
    """

    def __init__(self, path: str, flush_every: int = 10_000) -> None:
        self.path = path
        self._buffer: List[str] = []
        self._flush_every = max(1, flush_every)
        self._handle: Optional[Any] = open(path, "w")

    def emit(self, record: Dict[str, Any]) -> None:
        self._buffer.append(json.dumps(record, default=str))
        if len(self._buffer) >= self._flush_every:
            self._flush()

    def _flush(self) -> None:
        if self._buffer and self._handle is not None:
            self._handle.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()

    def close(self) -> None:
        if self._handle is not None:
            self._flush()
            self._handle.close()
            self._handle = None
