"""Windowed stateful operators.

The paper's motivating application — "the Twitter infrastructure ...
maintains a list of trending hashtags" — needs more than running
counters: trends are computed over *windows*. These operators provide
tumbling-window aggregation on top of the keyed-state API, so their
state migrates through the reconfiguration protocol like any other.

Windows are flushed lazily: the simulation has no operator timers, so
a window closes when the first tuple of a later window arrives (the
common practice in watermark-less engines).
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Optional

from repro.engine.operators import OperatorContext, StatefulBolt
from repro.spacesaving import SpaceSaving


class TumblingWindowCountBolt(StatefulBolt):
    """Counts keys within fixed, non-overlapping time windows.

    On the first tuple of a new window, one tuple
    ``(window_start, key, count)`` is emitted for every key counted in
    the closed window.

    Parameters
    ----------
    key:
        Field index (or callable) extracting the counted key.
    window_s:
        Window length in (simulated) seconds.
    forward:
        When True, the input tuple's values are also re-emitted
        (pass-through counting).
    emit_on_flush:
        When False, closed windows are only recorded in
        ``flushed_windows`` instead of being emitted — for mid-chain
        statistics stages whose downstream consumes the *raw* stream.
    """

    def __init__(
        self,
        key: int = 0,
        window_s: float = 1.0,
        forward: bool = False,
        emit_on_flush: bool = True,
    ) -> None:
        super().__init__()
        if window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {window_s}")
        if callable(key):
            self._key_fn = key
        else:
            index = key
            self._key_fn = lambda values: values[index]
        self.window_s = window_s
        self._forward = forward
        self._emit_on_flush = emit_on_flush
        self._window_start: Optional[float] = None
        #: (window_start, num_keys, total_count) of closed windows when
        #: emit_on_flush is off
        self.flushed_windows = []

    def window_of(self, time_s: float) -> float:
        return (time_s // self.window_s) * self.window_s

    def process(self, tup, context: OperatorContext) -> None:
        window = self.window_of(context.now)
        if self._window_start is None:
            self._window_start = window
        elif window > self._window_start:
            self.flush(context)
            self._window_start = window
        key = self._key_fn(tup.values)
        self.state[key] = self.state.get(key, 0) + 1
        if self._forward:
            context.emit(tup.values)

    def flush(self, context: OperatorContext) -> None:
        """Emit (or record) and clear the current window's counts."""
        window = self._window_start
        if self._emit_on_flush:
            for key, count in sorted(
                self.state.items(), key=lambda kv: str(kv[0])
            ):
                context.emit((window, key, count))
        else:
            self.flushed_windows.append(
                (window, len(self.state), sum(self.state.values()))
            )
        self.state.clear()

    def merge_state_entry(self, key, mine, theirs):
        return mine + theirs


class TopKBolt(StatefulBolt):
    """Maintains the top-k heavy hitters per key group using
    SpaceSaving — the "trending hashtags" operator.

    Input tuples carry a *group* field (e.g. a region) and an *item*
    field (e.g. a hashtag); the bolt keeps one bounded sketch per
    group. On the first tuple of a new window it emits, per group, one
    tuple ``(window_start, group, [(item, count), ...])`` with the
    current top-k, then resets the sketches.

    The per-group sketches are keyed state, so reassigning a group to
    another instance migrates its sketch.
    """

    def __init__(
        self,
        group: int = 0,
        item: int = 1,
        k: int = 10,
        capacity: int = 256,
        window_s: float = 1.0,
        sketch_factory: Callable[[int], Any] = SpaceSaving,
    ) -> None:
        super().__init__()
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {window_s}")
        self._group_fn = group if callable(group) else (
            lambda values, _index=group: values[_index]
        )
        self._item_fn = item if callable(item) else (
            lambda values, _index=item: values[_index]
        )
        self.k = k
        self.capacity = capacity
        self.window_s = window_s
        self._sketch_factory = sketch_factory
        self._window_start: Optional[float] = None

    def process(self, tup, context: OperatorContext) -> None:
        window = (context.now // self.window_s) * self.window_s
        if self._window_start is None:
            self._window_start = window
        elif window > self._window_start:
            self.flush(context)
            self._window_start = window
        group = self._group_fn(tup.values)
        sketch = self.state.get(group)
        if sketch is None:
            sketch = self._sketch_factory(self.capacity)
            self.state[group] = sketch
        sketch.offer(self._item_fn(tup.values))

    def flush(self, context: OperatorContext) -> None:
        """Emit each group's current top-k and reset the sketches."""
        window = self._window_start
        for group in sorted(self.state, key=str):
            sketch = self.state[group]
            ranking = tuple(
                (estimate.item, estimate.count)
                for estimate in sketch.top(self.k)
            )
            context.emit((window, group, ranking))
        self.state.clear()

    def top(self, group: Hashable, k: Optional[int] = None):
        """Current in-window ranking of one group (for inspection)."""
        sketch = self.state.get(group)
        if sketch is None:
            return []
        return [
            (estimate.item, estimate.count)
            for estimate in sketch.top(k or self.k)
        ]

    def merge_state_entry(self, key, mine, theirs):
        return mine.merge(theirs)
