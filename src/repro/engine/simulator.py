"""Discrete-event simulation core.

A minimal, fast event loop: events are ``(time, sequence, Event)``
entries in a binary heap. Ties in time are broken by insertion order,
which gives deterministic FIFO semantics for same-instant events — the
reconfiguration protocol relies on this for its channel ordering.

Heap entries are plain tuples so ordering is decided by C-level
``(float, int)`` comparison; with millions of sift comparisons per run,
a Python-level ``__lt__`` on the event object would dominate the loop
(it did, before this was changed — see DESIGN.md §10).
"""

from __future__ import annotations

import heapq
import zlib
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError


class Event:
    """A scheduled callback. Returned by :meth:`Simulator.schedule` so
    callers can cancel it."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "daemon", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable,
        args: tuple,
        daemon: bool = False,
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.daemon = daemon
        self._sim = sim

    def cancel(self) -> None:
        """Cancel the event (idempotent). The owning simulator's live
        and cancelled counters are updated *eagerly* so that
        :attr:`Simulator.pending_events` stays O(1); the heap entry
        itself is discarded lazily when it reaches the top."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            sim._cancelled += 1
            if not self.daemon:
                sim._live -= 1

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time:.6f}, fn={self.fn.__name__}{state})"


class Simulator:
    """Event loop with a simulated clock (seconds as float)."""

    def __init__(self) -> None:
        #: heap of (time, seq, Event) — tuple-ordered, see module doc
        self._heap: List[Tuple[float, int, Event]] = []
        self._now = 0.0
        self._seq = 0
        self._executed = 0
        #: queued non-daemon, non-cancelled events (cancel() decrements
        #: eagerly; popping a cancelled entry must NOT decrement again)
        self._live = 0
        #: cancelled events whose heap entry has not been popped yet
        self._cancelled = 0
        #: optional hook ``fn(event) -> bool`` consulted before each
        #: event runs; returning False consumes the event (it neither
        #: executes nor counts). Used by repro.faults to drop or defer
        #: deliveries; the hook may reschedule the event's callback.
        self.interceptor: Optional[Callable[[Event], bool]] = None
        self.intercepted = 0
        #: opt-in event-sequence fingerprint (see :meth:`enable_fingerprint`)
        self._fp_enabled = False
        self._fp = 0

    # ------------------------------------------------------------------
    # Determinism fingerprint
    # ------------------------------------------------------------------

    def enable_fingerprint(self) -> None:
        """Start folding every executed event into a running CRC.

        The fingerprint covers ``(time, callback qualname)`` of each
        executed event — enough to detect any divergence in event
        *ordering* or *timing* between two runs. It deliberately avoids
        ``hash()`` (randomized per process for strings) so that the same
        seed yields the same fingerprint across processes; the replay
        layer (repro.testing) compares it to certify that a repro bundle
        reproduced the identical event sequence.
        """
        self._fp_enabled = True

    @property
    def fingerprint(self) -> int:
        """Running CRC of the executed event sequence (0 until enabled)."""
        return self._fp

    def _fp_update(self, event: Event) -> None:
        fn = event.fn
        name = getattr(fn, "__qualname__", None) or getattr(
            fn, "__name__", "<callable>"
        )
        data = f"{event.time!r}:{name}".encode()
        self._fp = zlib.crc32(data, self._fp)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        return self._executed

    @property
    def pending_events(self) -> int:
        """Queued non-cancelled events — O(1): the telemetry layer
        samples this on every snapshot, so it must not scan the heap."""
        return len(self._heap) - self._cancelled

    def stats(self) -> dict:
        """Event-loop health counters, exported by the telemetry layer
        (a large ``pending`` at flush time means the run was cut off
        mid-transient; ``intercepted`` counts fault-consumed events)."""
        return {
            "now": self._now,
            "events_executed": self._executed,
            "events_pending": self.pending_events,
            "events_intercepted": self.intercepted,
        }

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(
        self, delay: float, fn: Callable, *args: Any, daemon: bool = False
    ) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        ``daemon`` events never keep the loop alive: a drain-style
        :meth:`run` (no ``until``) stops once only daemon events remain.
        Use it for self-rescheduling periodic probes (samplers,
        telemetry snapshots) that would otherwise make a drain run
        forever.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        # Inlined schedule_at (this is the hottest scheduling entry
        # point; now + non-negative delay can never land in the past).
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, fn, args, daemon=daemon, sim=self)
        if not daemon:
            self._live += 1
        heapq.heappush(self._heap, (time, seq, event))
        return event

    def schedule_at(
        self, time: float, fn: Callable, *args: Any, daemon: bool = False
    ) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before now={self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, fn, args, daemon=daemon, sim=self)
        if not daemon:
            self._live += 1
        heapq.heappush(self._heap, (time, seq, event))
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Run the next event. Returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)[2]
            event._sim = None  # popped: a late cancel() is a no-op
            if event.cancelled:
                self._cancelled -= 1
                continue
            if not event.daemon:
                self._live -= 1
            self._now = event.time
            if self.interceptor is not None and not self.interceptor(event):
                self.intercepted += 1
                continue
            self._executed += 1
            if self._fp_enabled:
                self._fp_update(event)
            event.fn(*event.args)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events until the queue drains, the clock passes ``until``,
        or ``max_events`` have executed. Returns the number executed.

        Daemon events (see :meth:`schedule`) don't count as work: a
        drain run (``until=None``) stops as soon as only daemon events
        remain queued.

        When stopping at ``until``, the clock is advanced to exactly
        ``until`` (events after it stay queued).
        """
        executed = 0
        heap = self._heap
        pop = heapq.heappop
        while heap:
            if until is None and self._live <= 0:
                break
            entry = heap[0]
            event = entry[2]
            if event.cancelled:
                pop(heap)
                event._sim = None
                self._cancelled -= 1
                continue
            if until is not None and entry[0] > until:
                break
            if max_events is not None and executed >= max_events:
                break
            pop(heap)
            event._sim = None  # popped: a late cancel() is a no-op
            if not event.daemon:
                self._live -= 1
            self._now = event.time
            if self.interceptor is not None and not self.interceptor(event):
                self.intercepted += 1
                continue
            self._executed += 1
            executed += 1
            if self._fp_enabled:
                self._fp_update(event)
            event.fn(*event.args)
        if until is not None and until > self._now:
            self._now = until
        return executed
