"""Reconfiguration on a diamond DAG.

The protocol must handle operators with several successors (PROPAGATE
fan-out) and several predecessors (the join waits for a PROPAGATE from
*every* upstream instance before acting). The paper's evaluation uses
a chain; its design (Algorithm 1) covers general DAGs — this test
exercises that.
"""

import random
from collections import Counter

import pytest

from repro.core import Manager, ManagerConfig
from repro.core.validation import check_deployment
from repro.engine import (
    Cluster,
    CountBolt,
    ShuffleGrouping,
    Simulator,
    TableFieldsGrouping,
    TopologyBuilder,
    deploy,
)
from repro.engine.operators import IteratorSpout

N = 2
PER_SPOUT = 15000


def _source(ctx):
    rng = random.Random(ctx.instance_index)
    for _ in range(PER_SPOUT):
        key = rng.randrange(6)
        yield (key, key + 100, key + 200)


def _build():
    """S -> A; A branches to L and R (both table fields grouped);
    L and R join into sink J (shuffle: stateless join counting)."""
    builder = TopologyBuilder()
    builder.spout("S", lambda: IteratorSpout(_source), parallelism=N)
    builder.bolt(
        "A", lambda: CountBolt(0, forward=True), parallelism=N,
        inputs={"S": TableFieldsGrouping(0)},
    )
    builder.bolt(
        "L", lambda: CountBolt(1, forward=True), parallelism=N,
        inputs={"A": TableFieldsGrouping(1)},
    )
    builder.bolt(
        "R", lambda: CountBolt(2, forward=True), parallelism=N,
        inputs={"A": TableFieldsGrouping(2)},
    )
    builder.bolt(
        "J", lambda: CountBolt(0, forward=False), parallelism=N,
        inputs={"L": ShuffleGrouping(), "R": ShuffleGrouping()},
    )
    return builder.build()


@pytest.fixture(scope="module")
def finished_run():
    sim = Simulator()
    deployment = deploy(sim, Cluster(sim, N), _build())
    manager = Manager(deployment, ManagerConfig(period_s=0.05))
    manager.start()
    deployment.start()
    sim.run(until=0.25)
    manager.stop()
    sim.run()
    return deployment, manager


def test_rounds_complete_on_diamond(finished_run):
    deployment, manager = finished_run
    effective = [r for r in manager.completed_rounds if r.plan]
    assert effective
    for record in effective:
        assert record.completed_at is not None


def test_plan_covers_both_branches(finished_run):
    _, manager = finished_run
    plan = [r.plan for r in manager.completed_rounds if r.plan][0]
    assert set(plan.tables) == {"S->A", "A->L", "A->R"}


def test_exact_counts_on_all_branches(finished_run):
    deployment, _ = finished_run
    truth = {"A": Counter(), "L": Counter(), "R": Counter()}
    for i in range(N):
        rng = random.Random(i)
        for _ in range(PER_SPOUT):
            key = rng.randrange(6)
            truth["A"][key] += 1
            truth["L"][key + 100] += 1
            truth["R"][key + 200] += 1
    for op in ("A", "L", "R"):
        measured = Counter()
        for executor in deployment.instances(op):
            for key, count in executor.operator.state.items():
                measured[key] += count
        assert measured == truth[op], op
    # The join received one tuple from each branch per source tuple.
    assert deployment.metrics.processed_total("J") == 2 * N * PER_SPOUT
    assert deployment.acker.in_flight == 0


def test_correlated_keys_colocated_across_branches(finished_run):
    _, manager = finished_run
    plan = [r.plan for r in manager.completed_rounds if r.plan][-1]
    for key in range(6):
        servers = {
            plan.assignment.server_of("S->A", key),
            plan.assignment.server_of("A->L", key + 100),
            plan.assignment.server_of("A->R", key + 200),
        }
        servers.discard(None)
        assert len(servers) == 1, f"key {key} split across {servers}"


def test_deployment_invariants_hold(finished_run):
    deployment, _ = finished_run
    check_deployment(deployment).raise_if_failed()
