#!/usr/bin/env python
"""Online reconfiguration on a fluctuating Twitter-like stream.

The geo-trending application of the paper's running example: route
tweets first by location, then by hashtag. Correlations drift over
time (flash events, new hashtags), so the manager reconfigures the
routing tables periodically while the stream keeps flowing — state
migrates between operator instances with zero tuple loss.

Run:  python examples/trending_topics.py
"""

from repro.core import Manager, ManagerConfig
from repro.engine import (
    Cluster,
    CountBolt,
    Padding,
    Simulator,
    TableFieldsGrouping,
    TopologyBuilder,
    deploy,
)
from repro.engine.operators import IteratorSpout
from repro.workloads import TwitterConfig, TwitterWorkload
from repro.workloads.zipf import derived_rng

SERVERS = 4
PERIOD_S = 0.25
DURATION_S = 1.5


def main():
    workload = TwitterWorkload(
        TwitterConfig(
            num_locations=150,
            base_hashtags=1200,
            new_hashtags_per_week=120,
            seed=7,
        )
    )

    def tweet_stream(ctx):
        """Endless stream cycling through generated weeks, sharded per
        spout instance."""
        rng = derived_rng("spout", ctx.instance_index)
        week = 0
        while True:
            for i, (location, tag) in enumerate(workload.week_pairs(week)):
                if i % ctx.num_instances == ctx.instance_index:
                    yield (location, tag, Padding(256))
            week += 1
            _ = rng  # placeholder: shard choice is positional

    builder = TopologyBuilder()
    builder.spout("tweets", lambda: IteratorSpout(tweet_stream), SERVERS)
    builder.bolt(
        "by_location",
        lambda: CountBolt(0, forward=True),
        parallelism=SERVERS,
        inputs={"tweets": TableFieldsGrouping(0)},
    )
    builder.bolt(
        "by_hashtag",
        lambda: CountBolt(1, forward=False),
        parallelism=SERVERS,
        inputs={"by_location": TableFieldsGrouping(1)},
    )

    sim = Simulator()
    cluster = Cluster(sim, SERVERS)
    deployment = deploy(sim, cluster, builder.build())
    manager = Manager(
        deployment,
        ManagerConfig(period_s=PERIOD_S, sketch_capacity=20000),
    )
    manager.start()
    deployment.start()

    print(f"{'window':>12}  {'locality':>8}  {'balance':>7}")
    previous = deployment.metrics.snapshot()
    t = 0.0
    while t < DURATION_S:
        t += PERIOD_S
        sim.run(until=t)
        current = deployment.metrics.snapshot()
        local = remote = 0
        for name, counters in current.streams.items():
            base = previous.streams.get(name)
            delta = counters.minus(base) if base else counters
            local += delta.local_tuples
            remote += delta.remote_tuples
        locality = local / max(local + remote, 1)
        balance = deployment.metrics.load_balance("by_hashtag", SERVERS)
        print(f"{t - PERIOD_S:5.2f}-{t:5.2f}s  {locality:8.0%}  {balance:7.2f}")
        previous = current

    manager.stop()
    effective = [r for r in manager.completed_rounds if not r.skipped]
    print(f"\nreconfiguration rounds: {len(effective)}")
    for record in effective:
        print(
            f"  round {record.round_id}: {record.collected_pairs} pairs, "
            f"{record.plan.total_moved_keys()} keys migrated, "
            f"took {record.duration_s * 1e3:.1f} ms, "
            f"predicted locality {record.plan.predicted_locality:.0%}"
        )

    hot = max(
        deployment.instances("by_hashtag"),
        key=lambda e: sum(e.operator.state.values()),
    )
    top = sorted(
        hot.operator.state.items(), key=lambda kv: kv[1], reverse=True
    )[:5]
    print(f"\ntop hashtags on server {hot.server.index}:")
    for tag, count in top:
        print(f"  {tag}: {count}")


if __name__ == "__main__":
    main()
