"""benchmarks/helpers.py: pivot, series_of, save_table, RESULTS_DIR."""

import os
import sys

_BENCHMARKS = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "benchmarks",
)
if _BENCHMARKS not in sys.path:
    sys.path.insert(0, _BENCHMARKS)

import helpers  # noqa: E402

ROWS = [
    {"policy": "table", "exponent": 1.0, "throughput": 100.0},
    {"policy": "table", "exponent": 1.5, "throughput": 80.0},
    {"policy": "hash", "exponent": 1.0, "throughput": 90.0},
    {"policy": "hash", "exponent": 1.5, "throughput": 85.0},
]


def test_results_dir_is_absolute_and_normalized():
    assert os.path.isabs(helpers.RESULTS_DIR)
    assert ".." not in helpers.RESULTS_DIR.split(os.sep)
    assert os.path.basename(helpers.RESULTS_DIR) == "results"


def test_pivot_builds_row_col_table():
    table = helpers.pivot(ROWS, "policy", "exponent", "throughput")
    assert table == {
        "table": {1.0: 100.0, 1.5: 80.0},
        "hash": {1.0: 90.0, 1.5: 85.0},
    }


def test_pivot_last_write_wins_on_duplicates():
    rows = ROWS + [{"policy": "table", "exponent": 1.0, "throughput": 42.0}]
    table = helpers.pivot(rows, "policy", "exponent", "throughput")
    assert table["table"][1.0] == 42.0


def test_series_of_filters_and_sorts():
    shuffled = list(reversed(ROWS))
    series = helpers.series_of(
        shuffled, {"policy": "table"}, "exponent", "throughput"
    )
    assert series == [(1.0, 100.0), (1.5, 80.0)]
    assert helpers.series_of(ROWS, {"policy": "nope"}, "exponent", "throughput") == []


def test_save_table_and_telemetry_path(tmp_path, monkeypatch):
    monkeypatch.setattr(helpers, "RESULTS_DIR", str(tmp_path / "results"))
    helpers.save_table("smoke", "| a | b |")
    saved = tmp_path / "results" / "smoke.txt"
    assert saved.read_text() == "| a | b |\n"
    path = helpers.telemetry_path("smoke")
    assert path == str(tmp_path / "results" / "smoke.jsonl")
    assert os.path.isdir(os.path.dirname(path))
