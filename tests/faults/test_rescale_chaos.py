"""Chaos matrix for elastic rescaling.

Rescale rounds add instances to (or retire instances from) a live
deployment, so their failure modes go beyond the plain protocol's:

- a **newly spawned POI crashing mid-migration** must not wedge the
  system — the round times out, aborts, and the doomed instances are
  drained, evacuated and removed (rollback to the old instance set);
- a **PROPAGATE dropped towards a retiring POI** during scale-in must
  abort the round and leave the old instance set fully intact, with
  per-key totals exact (nothing was crashed, so conservation holds);
- any **round-timeout abort mid-rescale** must roll routing back to
  the pre-round tables and width atomically.
"""

import random
from collections import Counter

from repro.core import Manager, ManagerConfig
from repro.engine import (
    Cluster,
    CountBolt,
    Simulator,
    TableFieldsGrouping,
    TopologyBuilder,
    deploy,
)
from repro.engine.operators import IteratorSpout
from repro.faults import ControlFault, FaultInjector, FaultPlan
from repro.testing.invariants import InvariantSuite

SPOUTS = 3
PER_SPOUT = 8000
TIMEOUT_S = 0.03


def _source(ctx):
    rng = random.Random(ctx.instance_index)
    for _ in range(PER_SPOUT):
        a = rng.randrange(12)
        yield (a, a + 100)


def _ground_truth():
    truth_a, truth_b = Counter(), Counter()
    for i in range(SPOUTS):
        rng = random.Random(i)
        for _ in range(PER_SPOUT):
            a = rng.randrange(12)
            truth_a[a] += 1
            truth_b[a + 100] += 1
    return truth_a, truth_b


def _build(bolts):
    builder = TopologyBuilder()
    builder.spout("S", lambda: IteratorSpout(_source), parallelism=SPOUTS)
    builder.bolt(
        "A",
        lambda: CountBolt(0, forward=True),
        parallelism=bolts,
        inputs={"S": TableFieldsGrouping(0)},
    )
    builder.bolt(
        "B",
        lambda: CountBolt(1, forward=False),
        parallelism=bolts,
        inputs={"A": TableFieldsGrouping(1)},
    )
    return builder.build()


def _deployed(bolts, **deploy_kwargs):
    sim = Simulator()
    cluster = Cluster(sim, bolts)
    deployment = deploy(sim, cluster, _build(bolts), **deploy_kwargs)
    manager = Manager(
        deployment, ManagerConfig(period_s=None, round_timeout_s=TIMEOUT_S)
    )
    return sim, deployment, manager


def _rescale_with_retry(sim, manager, target, done):
    def attempt():
        if manager.rescale(target, on_complete=done.append):
            return
        if manager.tier_parallelism == target:
            return
        sim.schedule(0.005, attempt)

    attempt()


def _state_totals(deployment, op):
    totals = Counter()
    for executor in deployment.instances(op):
        for key, count in executor.operator.state.items():
            totals[key] += count
    return totals


def test_crash_of_new_poi_mid_rescale_rolls_back():
    """Crash a just-spawned instance while the rescale round is live:
    the wedged round must abort at its deadline and the scale-out must
    roll back to the old instance set without dropping any queued
    tuple silently (acker replay covers the crash loss)."""
    sim, deployment, manager = _deployed(2, message_timeout_s=0.08)
    # Crashes destroy state by design: disarm conservation, keep the
    # structural checks (held keys, routing agreement, retiree leaks).
    suite = InvariantSuite(
        deployment, manager, check_conservation=False
    ).attach()
    done = []
    crashed = []

    def crash_newcomer():
        if not crashed and manager.rescale_in_progress:
            newcomers = deployment.executors["A"][2:]
            if newcomers:
                newcomers[0].crash(down_s=1.0)
                crashed.append(newcomers[0])
                return
        if sim.now < 0.3:
            sim.schedule(0.0005, crash_newcomer)

    deployment.start()
    sim.schedule(0.08, _rescale_with_retry, sim, manager, 4, done)
    sim.schedule(0.08, crash_newcomer)
    sim.run(until=0.5)
    sim.run()  # drain: deadline abort, rollback, acker replays

    assert crashed, "never caught the rescale in flight"
    assert len(done) == 1
    record = done[0]
    assert record.is_rescale and record.aborted
    assert record.rescale_rolled_back is True
    # Old instance set restored, doomed instances gone.
    for op in ("A", "B"):
        assert len(deployment.executors[op]) == 2
    assert manager.tier_parallelism == 2
    assert manager.rescale_in_progress is False
    # Control plane at rest; a later rescale still succeeds.
    assert manager.round_active is False
    for op in ("A", "B"):
        for executor in deployment.instances(op):
            assert executor.held_keys == set()
    structural = [
        v for v in suite.violations if v.invariant != "conservation"
    ]
    assert structural == []

    retry = []
    _rescale_with_retry(sim, manager, 3, retry)
    sim.run()
    assert len(retry) == 1 and not retry[0].aborted
    assert manager.tier_parallelism == 3


def test_dropped_propagate_to_retiring_poi_aborts_scale_in():
    """Scale-in 3 -> 2 with every PROPAGATE towards the retiring A[2]
    dropped: the round wedges, the deadline aborts it, and the old
    instance set stays fully intact with exact per-key totals (no
    crash was involved, so conservation must hold)."""
    sim, deployment, manager = _deployed(3)
    suite = InvariantSuite(deployment, manager).attach()
    # A[2]'s predecessors are the three spouts: drop all three.
    plan = FaultPlan(
        control=[
            ControlFault(
                "drop",
                kind="PROPAGATE",
                dst_op="A",
                dst_instance=2,
                max_matches=3,
            )
        ]
    )
    injector = FaultInjector(plan).attach(deployment, manager)
    done = []
    deployment.start()
    sim.schedule(0.08, _rescale_with_retry, sim, manager, 2, done)
    sim.run(until=0.5)
    sim.run()

    assert injector.injected > 0
    assert len(done) == 1
    record = done[0]
    assert record.is_rescale and record.aborted
    assert record.rescale_from == 3 and record.rescale_to == 2
    # Scale-in abort: the retiring instances simply stay.
    assert record.rescale_rolled_back is False
    for op in ("A", "B"):
        assert len(deployment.executors[op]) == 3
    assert manager.tier_parallelism == 3
    assert manager.rescale_in_progress is False

    # Nothing was lost or misplaced.
    truth_a, truth_b = _ground_truth()
    assert deployment.metrics.processed_total("B") == SPOUTS * PER_SPOUT
    assert _state_totals(deployment, "A") == truth_a
    assert _state_totals(deployment, "B") == truth_b
    suite.final_check({"A": truth_a, "B": truth_b})
    assert suite.violations == []


def test_timeout_abort_mid_scale_out_preserves_every_count():
    """Wedge a scale-out round by delaying MIGRATEs past the deadline
    (no crash): the round aborts, the doomed instances drain and their
    state is evacuated back to the pre-round owners; the late MIGRATEs
    then land on already-removed instances and must still be forwarded
    to a live owner. The end state is identical to ground truth."""
    sim, deployment, manager = _deployed(2)
    suite = InvariantSuite(deployment, manager).attach()
    plan = FaultPlan(
        control=[
            ControlFault(
                "delay", kind="MIGRATE", delay_s=0.05, max_matches=2
            )
        ]
    )
    injector = FaultInjector(plan).attach(deployment, manager)
    done = []
    deployment.start()
    sim.schedule(0.08, _rescale_with_retry, sim, manager, 4, done)
    sim.run(until=0.5)
    sim.run()

    assert injector.injected > 0
    assert len(done) == 1
    record = done[0]
    assert record.is_rescale and record.aborted
    assert record.rescale_rolled_back is True
    for op in ("A", "B"):
        assert len(deployment.executors[op]) == 2
    assert manager.tier_parallelism == 2

    truth_a, truth_b = _ground_truth()
    assert deployment.metrics.processed_total("B") == SPOUTS * PER_SPOUT
    assert _state_totals(deployment, "A") == truth_a
    assert _state_totals(deployment, "B") == truth_b
    suite.final_check({"A": truth_a, "B": truth_b})
    assert suite.violations == []
