"""tools/check_fig13_shapes.py: the artifact-driven figure-shape gate.

The checker must pass a healthy artifact, flag each broken claim with
a message naming the cell, refuse non-fig13 artifacts, and surface
crashed cells instead of skipping them.
"""

import json
import os
import sys

import pytest

_TOOLS = os.path.join(
    os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    ),
    "tools",
)
if _TOOLS not in sys.path:
    sys.path.insert(0, _TOOLS)

import check_fig13_shapes as shapes  # noqa: E402


def _cell(
    cell_id="bandwidth_gbps=1,padding=4000,seed=0",
    before=40_000.0,
    after=120_000.0,
    without=50_000.0,
    rounds=1.0,
    bandwidth=1.0,
    status="ok",
):
    return {
        "id": cell_id,
        "status": status,
        "runner": "fig13",
        "params": {"bandwidth_gbps": bandwidth, "padding": 4000},
        "metrics": {
            "before_with_reconf_per_s": before,
            "after_with_reconf_per_s": after,
            "after_without_reconf_per_s": without,
            "reconf_gain": after / without if without else 0.0,
            "rounds_completed": rounds,
        },
    }


def test_healthy_artifact_passes():
    assert shapes.check_fig13_shapes([_cell(), _cell(bandwidth=10.0)]) == []


def test_missing_jump_flagged():
    violations = shapes.check_fig13_shapes([_cell(after=45_000.0)])
    assert any("jump" in v for v in violations)


def test_losing_to_no_reconf_flagged():
    violations = shapes.check_fig13_shapes(
        [_cell(after=55_000.0, without=50_000.0)]
    )
    assert any("beat" in v for v in violations)


def test_slow_network_gain_floor():
    # jump and win hold (3x before, 1.5x without) but gain < 1.8
    violations = shapes.check_fig13_shapes(
        [_cell(before=40_000.0, after=126_000.0, without=80_000.0)]
    )
    assert any("1 Gb/s" in v for v in violations)
    # same numbers on the fast network: no gain-floor claim there
    assert (
        shapes.check_fig13_shapes(
            [
                _cell(
                    before=40_000.0,
                    after=126_000.0,
                    without=80_000.0,
                    bandwidth=10.0,
                )
            ]
        )
        == []
    )


def test_no_rounds_flagged():
    violations = shapes.check_fig13_shapes([_cell(rounds=0.0)])
    assert any("round" in v for v in violations)


def test_crashed_cell_flagged_not_skipped():
    violations = shapes.check_fig13_shapes([_cell(status="crash")])
    assert violations and "crash" in violations[0]


def test_wrong_artifact_rejected():
    row = {"id": "x", "status": "ok", "runner": "fig13", "metrics": {}}
    violations = shapes.check_fig13_shapes([row])
    assert any("not a fig13" in v for v in violations)


def test_empty_artifact_rejected():
    assert shapes.check_fig13_shapes([]) == [
        "no fig13 cells found in the artifact"
    ]


def test_cli_roundtrip(tmp_path):
    path = tmp_path / "report.jsonl"
    header = {"schema": "repro.campaign/report-v1", "campaign": "f"}
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(header) + "\n")
        handle.write(json.dumps(_cell()) + "\n")
    assert shapes.main(["check", str(path)]) == 0
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(_cell(cell_id="bad", after=1.0)) + "\n")
    assert shapes.main(["check", str(path)]) == 1


def test_cli_usage_error():
    assert shapes.main(["check"]) == 2
    assert shapes.main(["check", "/nonexistent/report.jsonl"]) == 2
