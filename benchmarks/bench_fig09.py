"""Figure 9: throughput vs tuple size (locality 80%).

Paper claims asserted:
- the gap between locality-aware and the others grows with padding
  and with parallelism;
- in the most challenging configuration, hash-based and worst-case
  perform similarly.
"""

import pytest

from helpers import save_table, series_of
from repro.analysis.experiments import fig9
from repro.analysis.report import format_table


@pytest.fixture(scope="module")
def rows(quick):
    return fig9(quick=quick)


def test_fig9_regenerate(rows, benchmark):
    benchmark.pedantic(
        lambda: fig9(paddings=(1000,), parallelisms=(2,)),
        rounds=1,
        iterations=1,
    )
    table = format_table(rows, columns=[
        "parallelism", "policy", "padding", "throughput",
    ], title="Figure 9: throughput vs padding (locality 80%)")
    print()
    print(table)
    save_table("fig09", table)


def _gap(rows, parallelism, padding):
    per_policy = {
        r["policy"]: r["throughput"]
        for r in rows
        if r["parallelism"] == parallelism and r["padding"] == padding
    }
    return per_policy["locality-aware"] / per_policy["hash-based"]


def test_fig9_gap_grows_with_padding(rows):
    parallelism = max(r["parallelism"] for r in rows)
    paddings = sorted({r["padding"] for r in rows})
    assert _gap(rows, parallelism, paddings[-1]) > _gap(
        rows, parallelism, paddings[0]
    )


def test_fig9_gap_grows_with_parallelism(rows):
    paddings = sorted({r["padding"] for r in rows})
    parallelisms = sorted({r["parallelism"] for r in rows})
    top_pad = paddings[-1]
    assert _gap(rows, parallelisms[-1], top_pad) > _gap(
        rows, parallelisms[0], top_pad
    )


def test_fig9_hash_and_worst_case_converge_when_challenged(rows):
    parallelism = max(r["parallelism"] for r in rows)
    padding = max(r["padding"] for r in rows)
    per_policy = {
        r["policy"]: r["throughput"]
        for r in rows
        if r["parallelism"] == parallelism and r["padding"] == padding
    }
    ratio = per_policy["hash-based"] / per_policy["worst-case"]
    assert ratio < 1.6  # "very similar" up to model noise
