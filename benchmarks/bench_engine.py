"""Engine throughput benchmark suite (wall-clock, not simulated time).

Measures how fast the *engine itself* runs on this machine:

- **end-to-end**: the Fig. 13-style two-stage Flickr topology
  (``S -> A -> B``, table-routed, 4 kB padding, 1 Gb/s) on the quick
  grid, with and without the reconfiguration manager — reported as
  simulated events/sec and processed tuples/sec of wall clock;
- **backend axis**: the same finite Fig. 13-shape topology executed
  through ``repro.engine.backends`` on the discrete-event reference
  backend, on the batched-vectorized fast path (DESIGN.md §15) —
  tuples/sec each, plus the same-machine speedup ratio, gated in-file
  at ≥ 3x — and on the multiprocess backend (DESIGN.md §16): real
  worker processes, so its throughput (fork startup included) plus
  *measured* per-run CPU ns and IPC bytes join the trajectory, with an
  in-file wall-clock floor instead of a speedup gate;
- **microbenches**: router ``select`` for the hash, table,
  partial-key and hybrid routers, SpaceSaving ``offer``, and executor
  emission planning;
- **skew axis**: wall-clock throughput and load imbalance of the
  Zipf-plus-flash-crowd workload under pure-table vs hybrid routing;
- **scale axis**: routing-table memory (bytes/key, plain vs compact)
  and control-plane bytes per reconfiguration round (delta vs full
  snapshot) at 10k/100k/1M keys, plus compact build and lookup rates —
  the memory-and-bytes trajectory of DESIGN.md §13;
- **telemetry overhead**: instrumented-vs-bare process CPU time on
  the null sink (the DESIGN.md §8 <3 % budget, gated strictly by
  ``bench_observability.py``; recorded here for the trajectory).

Results land in ``BENCH_engine.json`` at the repo root via
``tools/bench_record.py`` so successive PRs leave a perf trajectory::

    PYTHONPATH=src python benchmarks/bench_engine.py --record current
    PYTHONPATH=src python benchmarks/bench_engine.py --check   # CI gate

Set ``REPRO_BENCH_QUICK=1`` for shorter runs (rates stay comparable —
only the measurement window shrinks).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from typing import Dict, Optional

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _sub in ("src", "tools", "benchmarks"):
    _path = os.path.join(_REPO_ROOT, _sub)
    if _path not in sys.path:
        sys.path.insert(0, _path)

import bench_record
from helpers import save_table
from repro.analysis.report import format_table
from repro.core import ElasticityController, Manager, ManagerConfig
from repro.core.routing_table import RoutingTable
from repro.engine import Cluster, Simulator, deploy
from repro.engine.grouping import (
    FieldsGrouping,
    HybridTableFieldsGrouping,
    PartialKeyGrouping,
    RouterContext,
    TableFieldsGrouping,
    stable_hash,
)
from repro.engine.tuples import Padding
from repro.spacesaving import SpaceSaving
from repro.core.compact_table import (
    CompactRoutingTable,
    CompactTableConfig,
    plain_table_memory_bytes,
)
from repro.core.table_delta import TableDelta, snapshot_wire_bytes
from repro.workloads import (
    BigKeysConfig,
    BigKeysWorkload,
    FlickrConfig,
    FlickrWorkload,
    SkewConfig,
    SkewWorkload,
)


def _quick() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") == "1"


# ----------------------------------------------------------------------
# End-to-end: the Fig. 13 quick-grid pipeline, timed on the wall clock
# ----------------------------------------------------------------------

PARALLELISM = 6
PADDING = 4000
BANDWIDTH_GBPS = 1.0


def _pipeline_run(reconfigure: bool, duration_s: float) -> Dict[str, float]:
    workload = FlickrWorkload(FlickrConfig())
    sim = Simulator()
    cluster = Cluster(sim, PARALLELISM, bandwidth_gbps=BANDWIDTH_GBPS)
    deployment = deploy(
        sim, cluster, workload.topology(PARALLELISM, padding=PADDING)
    )
    if reconfigure:
        manager = Manager(
            deployment,
            ManagerConfig(period_s=duration_s / 3.0, sketch_capacity=100_000),
        )
        manager.start()
    deployment.start()
    start = time.perf_counter()
    sim.run(until=duration_s)
    wall = time.perf_counter() - start
    return {
        "wall_s": wall,
        "tuples": float(sum(deployment.metrics.processed.values())),
        "events": float(sim.events_executed),
    }


def bench_pipeline(reconfigure: bool) -> Dict[str, float]:
    """Best-of-N wall clock for one quick-grid cell."""
    duration = 0.75 if _quick() else 1.5
    repeats = 2 if _quick() else 3
    # Discarded warmup: the first run in a fresh process is reliably
    # slower (adaptive-interpreter specialization, hash memo fills),
    # which would otherwise skew whichever metric the suite runs first.
    _pipeline_run(reconfigure, 0.2)
    best: Optional[Dict[str, float]] = None
    for _ in range(repeats):
        sample = _pipeline_run(reconfigure, duration)
        if best is None or sample["wall_s"] < best["wall_s"]:
            best = sample
    return best


# ----------------------------------------------------------------------
# Backend axis: the same finite topology on the discrete-event
# reference backend vs the batched-vectorized fast path (DESIGN.md §15)
# ----------------------------------------------------------------------

#: in-file floor for the vectorized/reference same-machine ratio; the
#: per-backend ``backend_*_tuples_per_s`` rates are informational
#: trajectory numbers, the ratio is what the suite certifies
BACKEND_SPEEDUP_FLOOR = 3.0

#: in-file wall-clock floor for the multiprocess backend (tuples/s on
#: the bench shape, fork startup included). Deliberately loose — the
#: backend exists for *measured* costs and equivalence, not speed; the
#: floor only catches a teardown/backpressure collapse that would make
#: the equivalence campaign crawl. Once the trajectory has a few
#: points, the ``backend_multiprocess_tuples_per_s`` metric is also
#: baseline-gated like every other ``*_per_s`` rate.
MP_BACKEND_FLOOR_TUPLES_PER_S = 500.0


def _backend_run(backend: str, tuples_per_instance: int):
    from repro.engine.backends import BackendOptions, run_topology

    workload = FlickrWorkload(FlickrConfig())
    topology = workload.topology(
        PARALLELISM,
        padding=PADDING,
        tuples_per_instance=tuples_per_instance,
    )
    return run_topology(
        topology,
        backend,
        BackendOptions(bandwidth_gbps=BANDWIDTH_GBPS),
    )


def bench_backends() -> Dict[str, float]:
    """Wall-clock tuples/sec of the Fig. 13-shape pipeline per execution
    backend, from identical finite inputs (so both backends do the same
    logical work), plus the vectorized speedup. Unlike the other rates
    the speedup is a same-machine back-to-back ratio — robust across
    runners — which is why it carries the in-file ≥ 3x gate while the
    absolute rates only feed the trajectory."""
    tuples = 2_000 if _quick() else 5_000
    repeats = 2 if _quick() else 3
    metrics: Dict[str, float] = {}
    for backend in ("reference", "vectorized"):
        _backend_run(backend, 200)  # warmup (see bench_pipeline)
        best = None
        for _ in range(repeats):
            result = _backend_run(backend, tuples)
            if best is None or result.wall_s < best.wall_s:
                best = result
        metrics[f"backend_{backend}_tuples_per_s"] = best.tuples_per_s
    metrics["backend_vectorized_speedup_x"] = (
        metrics["backend_vectorized_tuples_per_s"]
        / metrics["backend_reference_tuples_per_s"]
    )
    metrics.update(bench_multiprocess_backend(tuples, repeats))
    return metrics


def bench_multiprocess_backend(
    tuples: int, repeats: int
) -> Dict[str, float]:
    """The multiprocess backend (DESIGN.md §16) on the same bench
    shape: wall-clock tuples/sec with fork startup included, plus the
    run's *measured* costs — worker CPU ns and bytes actually pickled
    across inter-process queues. The cost metrics are unsuffixed
    (informational trajectory): they have no modeled counterpart to
    regress against, and IPC bytes are a property of the topology's
    locality, not of machine speed."""
    best = None
    for _ in range(repeats):
        result = _backend_run("multiprocess", tuples)
        if best is None or result.wall_s < best.wall_s:
            best = result
    measured = best.measured or {}
    return {
        "backend_multiprocess_tuples_per_s": best.tuples_per_s,
        "backend_multiprocess_cpu_ns": float(
            measured.get("cpu_ns_total", 0)
        ),
        "backend_multiprocess_ipc_bytes": float(
            measured.get("ipc_bytes_total", 0)
        ),
    }


# ----------------------------------------------------------------------
# Microbenches
# ----------------------------------------------------------------------

NUM_KEYS = 2000


def _key_stream(n: int):
    """A zipf-ish stream of (tag, country) value tuples."""
    rng = random.Random(0)
    keys = [f"tag{i}" for i in range(NUM_KEYS)]
    weights = [1.0 / (i + 1) for i in range(NUM_KEYS)]
    tags = rng.choices(keys, weights=weights, k=n)
    return [(tag, f"country{i % 97}") for i, tag in enumerate(tags)]


def _router_context() -> RouterContext:
    return RouterContext(
        stream_name="bench",
        src_instance=0,
        src_server=0,
        dst_placements=list(range(PARALLELISM)),
        seed=stable_hash("bench"),
    )


def _time_select(router, values) -> float:
    select = router.select
    start = time.perf_counter()
    for v in values:
        select(v)
    return len(values) / (time.perf_counter() - start)


def bench_routers(n: int) -> Dict[str, float]:
    values = _key_stream(n)
    context = _router_context()
    table = RoutingTable(
        {f"tag{i}": i % PARALLELISM for i in range(0, NUM_KEYS, 2)}
    )
    # Same mapping with the two heaviest keys split (the stream is
    # 1/(i+1)-weighted, so tag0/tag1 dominate): the hybrid bench pays
    # the split-set lookup on every call and the least-loaded scan on
    # the hot path, the realistic worst case for HybridTableRouter.
    hybrid_table = RoutingTable(
        {f"tag{i}": i % PARALLELISM for i in range(0, NUM_KEYS, 2)},
        {"tag0": (0, 1), "tag1": (1, 2)},
    )
    return {
        "micro_router_hash_select_per_s": _time_select(
            FieldsGrouping(0).build_router(context), values
        ),
        "micro_router_table_select_per_s": _time_select(
            TableFieldsGrouping(0, table=table).build_router(context), values
        ),
        "micro_router_partial_key_select_per_s": _time_select(
            PartialKeyGrouping(0).build_router(context), values
        ),
        "micro_router_hybrid_select_per_s": _time_select(
            HybridTableFieldsGrouping(0, table=hybrid_table).build_router(
                context
            ),
            values,
        ),
    }


def bench_sketch(n: int) -> float:
    values = _key_stream(n)
    sketch = SpaceSaving(capacity=1000)
    offer = sketch.offer
    start = time.perf_counter()
    for v in values:
        offer(v[0])
    return n / (time.perf_counter() - start)


def _emission_executor():
    """A deployed two-stage topology; returns the A[0] bolt executor,
    whose out edge fans out to the table-routed B stage."""
    from repro.engine import CountBolt, TopologyBuilder
    from repro.engine.operators import IteratorSpout

    def source(ctx):
        yield ("tag0", "country0")

    builder = TopologyBuilder()
    builder.spout("S", lambda: IteratorSpout(source), parallelism=1)
    builder.bolt(
        "A",
        lambda: CountBolt(0, forward=True),
        parallelism=PARALLELISM,
        inputs={"S": TableFieldsGrouping(0)},
    )
    builder.bolt(
        "B",
        lambda: CountBolt(1, forward=False),
        parallelism=PARALLELISM,
        inputs={"A": TableFieldsGrouping(1)},
    )
    sim = Simulator()
    cluster = Cluster(sim, PARALLELISM)
    deployment = deploy(sim, cluster, builder.build())
    return deployment.executor("A", 0)


def bench_emission_planning(n: int) -> float:
    executor = _emission_executor()
    values = [
        (tag, country, Padding(PADDING)) for tag, country in _key_stream(n)
    ]
    plan = executor._plan_emissions
    start = time.perf_counter()
    for v in values:
        plan([v], root_id=1)
    return n / (time.perf_counter() - start)


# ----------------------------------------------------------------------
# Skew axis: Zipf tail + flash hot key, pure-table vs hybrid routing
# ----------------------------------------------------------------------


def _skew_pipeline(policy: str, duration_s: float) -> Dict[str, float]:
    config = SkewConfig()
    workload = SkewWorkload(config)
    sim = Simulator()
    cluster = Cluster(
        sim, config.parallelism, bandwidth_gbps=BANDWIDTH_GBPS
    )
    deployment = deploy(sim, cluster, workload.topology(policy))
    deployment.start()
    start = time.perf_counter()
    sim.run(until=duration_s)
    wall = time.perf_counter() - start
    return {
        "wall_s": wall,
        "tuples": float(sum(deployment.metrics.processed.values())),
        "imbalance": deployment.metrics.load_balance(
            "A", config.parallelism
        )
        - 1.0,
    }


def bench_skew() -> Dict[str, float]:
    """Wall-clock throughput and load imbalance (max/mean - 1) of the
    skew workload under pure-table vs hybrid routing. The imbalance
    numbers are simulated-deterministic; the rates join the gated
    ``*_per_s`` axis in BENCH_engine.json."""
    duration = 0.5 if _quick() else 1.0
    _skew_pipeline("hybrid", 0.15)  # warmup (see bench_pipeline)
    metrics: Dict[str, float] = {}
    for policy in ("table", "hybrid"):
        best: Optional[Dict[str, float]] = None
        for _ in range(2):
            sample = _skew_pipeline(policy, duration)
            if best is None or sample["wall_s"] < best["wall_s"]:
                best = sample
        metrics[f"skew_{policy}_tuples_per_s"] = (
            best["tuples"] / best["wall_s"]
        )
        metrics[f"skew_{policy}_imbalance_frac"] = best["imbalance"]
    return metrics


# ----------------------------------------------------------------------
# Scale axis: table memory and control-plane bytes at 10k → 1M keys
# ----------------------------------------------------------------------

#: key count → metric tag of the scale sweep
SCALE_POINTS = ((10_000, "10k"), (100_000, "100k"), (1_000_000, "1m"))


def bench_scale() -> Dict[str, float]:
    """Memory and control-plane bytes as the key population grows.

    The ``*_bytes_per_key`` / ``*_bytes_per_round`` numbers come from
    the DESIGN.md §13 byte model (machine-independent, identical in
    quick and full mode — only the build/lookup rates are wall clock).
    ``*_bytes_per_key`` joins the CI regression gate as a
    lower-is-better axis (tools/bench_record.py); the per-round numbers
    demonstrate the delta-encoding claim: snapshot bytes grow linearly
    with keys while delta bytes track the fixed per-round churn.
    """
    metrics: Dict[str, float] = {}
    for num_keys, tag in SCALE_POINTS:
        workload = BigKeysWorkload(BigKeysConfig(num_keys=num_keys))
        old = workload.make_table(0)
        new = workload.make_table(1)
        size = len(old)

        start = time.perf_counter()
        compact = CompactRoutingTable.from_table(old)
        build_s = time.perf_counter() - start
        metrics[f"scale_{tag}_compact_build_keys_per_s"] = size / build_s

        metrics[f"scale_{tag}_plain_bytes_per_key"] = (
            plain_table_memory_bytes(old) / size
        )
        metrics[f"scale_{tag}_compact_bytes_per_key"] = (
            compact.memory_bytes() / size
        )

        delta = TableDelta.diff(old, new)
        snapshot_bytes = snapshot_wire_bytes(old)
        metrics[f"scale_{tag}_delta_bytes_per_round"] = float(
            delta.wire_bytes()
        )
        metrics[f"scale_{tag}_snapshot_bytes_per_round"] = float(
            snapshot_bytes
        )
        metrics[f"scale_{tag}_propagate_saved_frac"] = (
            1.0 - delta.wire_bytes() / snapshot_bytes
        )

        # Measured false-route rate: absent keys must fall back to
        # hashing; the expected rate is the §13 model prediction.
        absent = [
            workload.key(index)
            for index in range(size, min(num_keys, size + 50_000))
        ]
        false_routes = sum(
            1 for key in absent if compact.lookup(key) is not None
        )
        metrics[f"scale_{tag}_false_route_rate"] = (
            false_routes / len(absent) if absent else 0.0
        )

        sample = [workload.key(index) for index in range(0, size, 7)][
            :20_000
        ]
        lookup = compact.lookup
        start = time.perf_counter()
        for key in sample:
            lookup(key)
        metrics[f"scale_{tag}_compact_lookup_per_s"] = len(sample) / (
            time.perf_counter() - start
        )
    return metrics


# ----------------------------------------------------------------------
# Elasticity-seam overhead (gated here: the rescale machinery must be
# free when the controller is not started)
# ----------------------------------------------------------------------

#: documented ceiling for the disabled-controller overhead
ELASTICITY_BUDGET = 0.03


def _elasticity_run(with_controller: bool, duration_s: float) -> float:
    """CPU seconds for one reconfiguring pipeline run, optionally with
    an ElasticityController constructed (registry hooks registered)
    but never started — the disabled-by-default configuration."""
    workload = FlickrWorkload(FlickrConfig())
    sim = Simulator()
    cluster = Cluster(sim, PARALLELISM, bandwidth_gbps=BANDWIDTH_GBPS)
    deployment = deploy(
        sim, cluster, workload.topology(PARALLELISM, padding=PADDING)
    )
    manager = Manager(
        deployment,
        ManagerConfig(period_s=duration_s / 3.0, sketch_capacity=100_000),
    )
    if with_controller:
        ElasticityController(manager)  # constructed, never started
    manager.start()
    deployment.start()
    start = time.process_time()
    sim.run(until=duration_s)
    return time.process_time() - start


def bench_elasticity_overhead() -> float:
    """Median paired-ratio CPU overhead of the elasticity seams with
    the controller disabled (same method as bench_observability: the
    two modes run back-to-back per round, the median ratio discards
    rounds that caught machine-state noise)."""
    duration = 0.4 if _quick() else 0.8
    repeats = 5 if _quick() else 9
    for flag in (False, True):
        _elasticity_run(flag, 0.2)  # warmup
    ratios = []
    for _ in range(repeats):
        bare = _elasticity_run(False, duration)
        armed = _elasticity_run(True, duration)
        ratios.append(armed / bare)
    ratios.sort()
    return ratios[len(ratios) // 2] - 1.0


# ----------------------------------------------------------------------
# Telemetry overhead (informational here; gated by bench_observability)
# ----------------------------------------------------------------------


def bench_telemetry_overhead() -> float:
    # Shares bench_observability's paired-rounds CPU-time method so the
    # number recorded here and the gated one cannot disagree in kind.
    from bench_observability import measure_overhead

    overheads, _, _ = measure_overhead(modes=("bare", "null-sink"))
    return overheads["null-sink"]


# ----------------------------------------------------------------------
# Suite
# ----------------------------------------------------------------------


def run_suite(include_overhead: bool = True) -> Dict[str, float]:
    n = 20_000 if _quick() else 50_000
    plain = bench_pipeline(reconfigure=False)
    reconf = bench_pipeline(reconfigure=True)
    metrics = {
        "fig13_quick_tuples_per_s": plain["tuples"] / plain["wall_s"],
        "fig13_quick_events_per_s": plain["events"] / plain["wall_s"],
        "fig13_quick_reconf_tuples_per_s": reconf["tuples"]
        / reconf["wall_s"],
        "fig13_quick_reconf_events_per_s": reconf["events"]
        / reconf["wall_s"],
        "micro_sketch_offer_per_s": bench_sketch(n),
        "micro_emission_plan_per_s": bench_emission_planning(n),
    }
    metrics.update(bench_backends())
    metrics.update(bench_routers(n))
    metrics.update(bench_skew())
    metrics.update(bench_scale())
    if include_overhead:
        metrics["telemetry_overhead_frac"] = bench_telemetry_overhead()
        metrics["elasticity_overhead_frac"] = bench_elasticity_overhead()
    return metrics


def _format_value(key: str, value: float) -> str:
    if key.endswith("_per_s"):
        return f"{value:,.0f}/s"
    if key.endswith("_x"):
        return f"{value:.2f}x"
    if key.endswith(("_bytes_per_key", "_bytes_per_round")):
        return f"{value:,.1f} B"
    if key.endswith("_bytes"):
        return f"{value:,.0f} B"
    if key.endswith("_ns"):
        return f"{value:,.0f} ns"
    if key.endswith("_rate"):
        return f"{value:.2e}"
    return f"{value:+.2%}"


def _format(metrics: Dict[str, float]) -> str:
    rows = [
        {"metric": key, "value": _format_value(key, value)}
        for key, value in sorted(metrics.items())
    ]
    mode = "quick" if _quick() else "full"
    return format_table(
        rows, title=f"Engine throughput suite ({mode}, wall clock)"
    )


# ----------------------------------------------------------------------
# Pytest entry points (run with: pytest benchmarks/bench_engine.py)
# ----------------------------------------------------------------------


def test_engine_suite_and_regression_gate():
    """Regenerate the suite; fail on a >20 % drop vs the committed
    baseline in BENCH_engine.json (the engine-bench CI gate)."""
    metrics = run_suite(include_overhead=False)
    table = _format(metrics)
    print()
    print(table)
    save_table("engine_bench", table)

    doc = bench_record.load()
    baseline = doc.get("baseline")
    assert baseline is not None, (
        "BENCH_engine.json has no baseline; record one with "
        "--record baseline"
    )
    regressions = bench_record.compare(
        baseline["metrics"], metrics, tolerance=0.20
    )
    assert not regressions, "\n".join(regressions)


def test_scale_sweep_bytes_gate():
    """The 10k→1M scale sweep's claims, gated:

    - compact bytes/key stays within tolerance of the committed
      baseline (lower-is-better axis of tools/bench_record.py);
    - measured false-route rate stays under the default budget;
    - control-plane bytes/round are sub-linear under delta encoding —
      per-round delta bytes track the fixed churn (flat across 100x
      more keys) while snapshots grow linearly.
    """
    metrics = bench_scale()
    print()
    print(_format(metrics))

    doc = bench_record.load()
    baseline = doc.get("baseline")
    assert baseline is not None, "BENCH_engine.json has no baseline"
    bytes_per_key = {
        key: value
        for key, value in baseline["metrics"].items()
        if key.endswith("_bytes_per_key")
    }
    assert bytes_per_key, (
        "baseline has no scale axis; merge the sweep's *_bytes_per_key "
        "metrics into BENCH_engine.json's baseline entry"
    )
    # The byte model is machine-independent: tighter tolerance than the
    # wall-clock gates.
    regressions = bench_record.compare(bytes_per_key, metrics, tolerance=0.10)
    assert not regressions, "\n".join(regressions)

    budget = CompactTableConfig().false_route_budget
    for _, tag in SCALE_POINTS:
        assert metrics[f"scale_{tag}_false_route_rate"] <= budget
    assert (
        metrics["scale_1m_delta_bytes_per_round"]
        < 2 * metrics["scale_10k_delta_bytes_per_round"]
    ), "delta bytes/round must track churn, not key count"
    assert (
        metrics["scale_1m_snapshot_bytes_per_round"]
        > 50 * metrics["scale_10k_snapshot_bytes_per_round"]
    ), "snapshot bytes/round should grow ~linearly with keys"


def test_vectorized_backend_speedup_gate():
    """The batched-vectorized fast path must stay ≥ 3x the reference
    DES on the Fig. 13-shape pipeline (the PR's headline claim). The
    ratio is measured back-to-back in this process, so it is gated
    directly rather than via the committed baseline — machine speed
    cancels out of the quotient."""
    metrics = bench_backends()
    print()
    print(_format(metrics))
    speedup = metrics["backend_vectorized_speedup_x"]
    assert speedup >= BACKEND_SPEEDUP_FLOOR, (
        f"vectorized backend is only {speedup:.2f}x the reference DES "
        f"(floor {BACKEND_SPEEDUP_FLOOR:.1f}x)"
    )


def test_multiprocess_backend_wall_clock_floor():
    """The multiprocess backend (DESIGN.md §16) must clear a sane
    wall-clock floor on the bench shape and report non-degenerate
    measured costs. No speedup gate — real processes exist for
    measurement fidelity, not throughput — but a collapse below the
    floor means teardown/backpressure went wrong and the equivalence
    campaign would crawl."""
    metrics = bench_multiprocess_backend(
        tuples=500 if _quick() else 1_000, repeats=1
    )
    print()
    print(_format(metrics))
    rate = metrics["backend_multiprocess_tuples_per_s"]
    assert rate >= MP_BACKEND_FLOOR_TUPLES_PER_S, (
        f"multiprocess backend ran at {rate:,.0f} tuples/s "
        f"(floor {MP_BACKEND_FLOOR_TUPLES_PER_S:,.0f}/s)"
    )
    # Measured costs must be real: CPU was burned, and the 6-server
    # bench shape cannot be 100 % local, so bytes crossed queues.
    assert metrics["backend_multiprocess_cpu_ns"] > 0
    assert metrics["backend_multiprocess_ipc_bytes"] > 0


def test_elasticity_seams_overhead_within_budget():
    """The rescale seams (spawn/retire observers, resizable routers,
    queue-depth probes) must be free until the controller is started:
    a run with a constructed-but-disabled ElasticityController stays
    within the documented <3 % CPU budget of a run without one."""
    overhead = bench_elasticity_overhead()
    print(
        f"\nelasticity seams overhead (controller disabled): "
        f"{overhead:+.2%}"
    )
    assert overhead < ELASTICITY_BUDGET, (
        f"disabled-controller overhead {overhead:.1%} exceeds the "
        f"{ELASTICITY_BUDGET:.0%} budget"
    )


def test_plan_emissions_computes_payload_size_once(monkeypatch):
    """Regression microbench: one emitted ``values`` must cost exactly
    one ``payload_size`` walk, no matter how many destination copies
    the routers produce (hoisted in ``BaseExecutor._plan_emissions``)."""
    import repro.engine.executor as executor_mod

    calls = {"n": 0}
    real = executor_mod.payload_size

    def counting(values):
        calls["n"] += 1
        return real(values)

    monkeypatch.setattr(executor_mod, "payload_size", counting)
    executor = _emission_executor()
    plan = executor._plan_emissions(
        [("tag1", "country1", Padding(64))], root_id=None
    )
    assert len(plan) == 1  # table-routed: one destination copy
    assert calls["n"] == 1, (
        f"payload_size walked {calls['n']} times for one emission"
    )


def test_committed_trajectory_is_consistent():
    """The committed BENCH_engine.json must carry both a baseline and a
    current entry, and current must not trail baseline by >20 % on the
    headline end-to-end metric (machine-relative ratios are what the
    file certifies)."""
    doc = bench_record.load()
    assert doc.get("baseline"), "missing baseline entry"
    assert doc.get("current"), "missing current entry"
    ratio = bench_record.speedup(
        doc["baseline"]["metrics"],
        doc["current"]["metrics"],
        "fig13_quick_tuples_per_s",
    )
    assert ratio >= 0.8, f"committed current is {ratio:.2f}x of baseline"


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure engine wall-clock throughput."
    )
    parser.add_argument(
        "--record",
        choices=("baseline", "current"),
        default=None,
        help="record the measurement into BENCH_engine.json",
    )
    parser.add_argument("--label", default="", help="entry label")
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail on >tolerance regression vs the committed baseline",
    )
    parser.add_argument("--tolerance", type=float, default=0.20)
    parser.add_argument(
        "--require-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless tuples/s >= X times the committed baseline",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="record into PATH instead of the committed "
        "BENCH_engine.json (with --record), or dump the raw metrics "
        "as JSON to PATH (without)",
    )
    parser.add_argument(
        "--no-overhead",
        action="store_true",
        help="skip the telemetry-overhead measurement",
    )
    args = parser.parse_args(argv)

    metrics = run_suite(include_overhead=not args.no_overhead)
    print(_format(metrics))

    if args.out and not args.record:
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "w") as handle:
            json.dump(metrics, handle, indent=2, sort_keys=True)
            handle.write("\n")

    status = 0
    doc = bench_record.load()
    baseline = doc.get("baseline")
    if args.check or args.require_speedup is not None:
        if baseline is None:
            print("no committed baseline to compare against", file=sys.stderr)
            return 2
        if args.check:
            regressions = bench_record.compare(
                baseline["metrics"], metrics, tolerance=args.tolerance
            )
            for message in regressions:
                print(f"REGRESSION {message}", file=sys.stderr)
            status = 1 if regressions else 0
        if args.require_speedup is not None:
            ratio = bench_record.speedup(
                baseline["metrics"], metrics, "fig13_quick_tuples_per_s"
            )
            print(
                f"speedup vs baseline (fig13_quick_tuples_per_s): "
                f"{ratio:.2f}x"
            )
            if ratio < args.require_speedup:
                print(
                    f"speedup {ratio:.2f}x below required "
                    f"{args.require_speedup:.2f}x",
                    file=sys.stderr,
                )
                status = 1
    if args.record:
        record_path = args.out or bench_record.DEFAULT_PATH
        bench_record.record(
            metrics, role=args.record, label=args.label, path=record_path
        )
        print(f"recorded as {args.record} in {record_path}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
