"""The paper's contribution: locality-aware routing for stateful
streaming applications.

Pipeline (Section 3 of the paper):

1. :mod:`~repro.core.instrumentation` — operator instances count
   *(input key, output key)* pairs in bounded memory (SpaceSaving).
2. :mod:`~repro.core.keygraph` — the manager merges the statistics
   into a bipartite key graph (vertices = keys weighted by frequency,
   edges = co-occurrence counts).
3. :mod:`~repro.core.assignment` — the graph is partitioned across
   servers under a balance constraint α, yielding per-stream
   :mod:`routing tables <repro.core.routing_table>` and migration
   lists.
4. :mod:`~repro.core.reconfiguration` /
   :mod:`~repro.core.manager` — the online protocol (Algorithm 1)
   pushes tables through the DAG in topological order and migrates the
   state of reassigned keys without stopping the stream.

:mod:`~repro.core.offline` covers the offline-analysis variant;
:mod:`~repro.core.estimator` and :mod:`~repro.core.hierarchical`
implement the paper's future-work extensions.
"""

from repro.core.compact_table import CompactRoutingTable, CompactTableConfig
from repro.core.table_delta import TableDelta
from repro.core.assignment import (
    KeyAssignment,
    ReconfigurationPlan,
    compute_assignment,
    expected_locality,
    plan_reconfiguration,
)
from repro.core.elasticity import (
    ElasticityConfig,
    ElasticityController,
    ScalingDecision,
)
from repro.core.instrumentation import PairTracker
from repro.core.keygraph import KeyGraph
from repro.core.manager import Manager, ManagerConfig
from repro.core.offline import offline_tables
from repro.core.routing_table import RoutingTable

__all__ = [
    "PairTracker",
    "KeyGraph",
    "RoutingTable",
    "CompactRoutingTable",
    "CompactTableConfig",
    "TableDelta",
    "KeyAssignment",
    "ReconfigurationPlan",
    "compute_assignment",
    "expected_locality",
    "plan_reconfiguration",
    "Manager",
    "ManagerConfig",
    "ElasticityController",
    "ElasticityConfig",
    "ScalingDecision",
    "offline_tables",
]
