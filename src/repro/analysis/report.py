"""Plain-text tables for experiment output (and EXPERIMENTS.md)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_table(
    rows: Sequence[Dict],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0])
    cells: List[List[str]] = [[str(c) for c in columns]]
    for row in rows:
        cells.append([_fmt(row.get(c)) for c in columns])
    widths = [
        max(len(line[i]) for line in cells) for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    header, *body = cells
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for line in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(line, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3f}"
    return str(value)


def ktuples(value: float) -> float:
    """Tuples/s → Ktuples/s, rounded for display."""
    return round(value / 1000.0, 1)
