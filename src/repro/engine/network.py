"""Network model: per-server NIC queues, bandwidth and latency.

Each server owns a full-duplex NIC modeled as two independent FIFO
rate resources (egress and ingress). A remote transfer:

1. serializes onto the sender's **egress** at ``size / bandwidth``;
2. crosses the wire with a fixed propagation **latency**;
3. serializes off the receiver's **ingress** at ``size / bandwidth``;
4. is delivered.

This reproduces both saturation regimes the paper exercises: a single
sender's egress saturating, and in-cast (n-1 senders towards one
receiver) saturating the ingress. Delivery order per (source,
destination) pair is FIFO, which the reconfiguration protocol uses as a
barrier property (see core.reconfiguration).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.engine.simulator import Simulator


class FifoChannel:
    """A rate-limited FIFO resource (one direction of a NIC).

    Work items are served back-to-back at ``rate`` bytes/second; the
    completion callback fires when the last byte has passed.
    """

    __slots__ = ("_sim", "_rate", "_free_at", "busy_time", "bytes_served", "name")

    def __init__(self, sim: Simulator, rate: Optional[float], name: str = ""):
        if rate is not None and rate <= 0:
            raise ValueError(f"rate must be > 0 or None, got {rate}")
        self._sim = sim
        self._rate = rate
        self._free_at = 0.0
        self.busy_time = 0.0
        self.bytes_served = 0
        self.name = name

    @property
    def rate(self) -> Optional[float]:
        return self._rate

    @property
    def free_at(self) -> float:
        """Earliest time a new item could start service."""
        return max(self._free_at, self._sim.now)

    def reserve(self, nbytes: int, earliest: Optional[float] = None) -> float:
        """Reserve FIFO service for ``nbytes`` starting no earlier than
        ``earliest`` (default: now). Returns the completion time.

        Reservations are made in submission order; with uniform
        latencies this equals arrival order, so per-pair FIFO delivery
        is preserved (a property the reconfiguration barrier needs).
        """
        now = self._sim.now
        service = 0.0 if self._rate is None else nbytes / self._rate
        start = max(now if earliest is None else earliest, self._free_at)
        done = start + service
        self._free_at = done
        self.busy_time += service
        self.bytes_served += nbytes
        return done

    def submit(self, nbytes: int, fn: Callable, *args: Any) -> float:
        """Enqueue ``nbytes``; run ``fn(*args)`` at completion time.

        Returns the completion time.
        """
        done = self.reserve(nbytes)
        self._sim.schedule_at(done, fn, *args)
        return done

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds this channel spent busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)


class Nic:
    """The full-duplex NIC of one server."""

    __slots__ = ("egress", "ingress")

    def __init__(self, sim: Simulator, rate: Optional[float], name: str):
        self.egress = FifoChannel(sim, rate, name=f"{name}.egress")
        self.ingress = FifoChannel(sim, rate, name=f"{name}.ingress")


class Network:
    """The cluster interconnect.

    Parameters
    ----------
    bandwidth_bytes_per_s:
        Per-NIC, per-direction bandwidth; ``None`` means infinite.
    latency_s:
        Propagation latency between any two servers in the same rack.
    inter_rack_latency_s:
        Propagation latency across racks (defaults to ``latency_s``).
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bytes_per_s: Optional[float],
        latency_s: float = 50.0e-6,
        inter_rack_latency_s: Optional[float] = None,
    ) -> None:
        if latency_s < 0:
            raise ValueError(f"latency must be >= 0, got {latency_s}")
        self._sim = sim
        self._bandwidth = bandwidth_bytes_per_s
        self._latency = latency_s
        self._inter_rack_latency = (
            latency_s if inter_rack_latency_s is None else inter_rack_latency_s
        )
        self._nics: dict = {}
        self.messages_sent = 0
        self.bytes_sent = 0
        # per-link [bytes, messages], one dict lookup per transfer;
        # exposed as the link_bytes / link_messages views below
        self._link_stats: dict = {}
        #: optional hook ``fn(src, dst, nbytes, fn, args) -> float``
        #: returning extra propagation latency (seconds) for this
        #: transfer; None or 0.0 leaves the transfer untouched. Extra
        #: latency is applied after egress, so it can reorder delivery
        #: relative to other senders — exactly the imperfection the
        #: fault-injection layer (repro.faults) exercises.
        self.fault_hook: Optional[Callable] = None

    @property
    def link_bytes(self) -> dict:
        """Per-link transfer volume: (src server, dst server) → bytes —
        lets telemetry attribute wire traffic (e.g. a migration burst)
        to the specific link that carried it."""
        return {link: stats[0] for link, stats in self._link_stats.items()}

    @property
    def link_messages(self) -> dict:
        """Per-link message counts: (src server, dst server) → count."""
        return {link: stats[1] for link, stats in self._link_stats.items()}

    def attach(self, server) -> Nic:
        """Create (or return) the NIC for a server."""
        nic = self._nics.get(server.index)
        if nic is None:
            nic = Nic(self._sim, self._bandwidth, name=f"server{server.index}")
            self._nics[server.index] = nic
        return nic

    def nic(self, server_index: int) -> Nic:
        return self._nics[server_index]

    def latency_between(self, src, dst) -> float:
        if src.rack == dst.rack:
            return self._latency
        return self._inter_rack_latency

    def transfer(
        self, src, dst, nbytes: int, fn: Callable, *args: Any
    ) -> None:
        """Move ``nbytes`` from ``src`` server to ``dst`` server, then
        call ``fn(*args)`` on delivery."""
        if src.index == dst.index:
            raise ValueError(
                f"transfer within server {src.index}; use direct delivery"
            )
        self.messages_sent += 1
        self.bytes_sent += nbytes
        link = (src.index, dst.index)
        stats = self._link_stats.get(link)
        if stats is None:
            stats = self._link_stats[link] = [0, 0]
        stats[0] += nbytes
        stats[1] += 1
        latency = self.latency_between(src, dst)
        if self.fault_hook is not None:
            extra = self.fault_hook(src, dst, nbytes, fn, args)
            if extra:
                latency += extra
        egress_done = self._nics[src.index].egress.reserve(nbytes)
        arrival = egress_done + latency
        ingress_done = self._nics[dst.index].ingress.reserve(nbytes, arrival)
        self._sim.schedule_at(ingress_done, fn, *args)
