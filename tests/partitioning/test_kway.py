"""End-to-end tests and properties of the k-way partitioner."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitioningError
from repro.partitioning import Graph, balance, edge_cut, part_weights, partition


def _grid_graph(rows, cols):
    """Unit-weight grid; a classic easy-to-check partitioning input."""
    def vid(r, c):
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((vid(r, c), vid(r, c + 1), 1.0))
            if r + 1 < rows:
                edges.append((vid(r, c), vid(r + 1, c), 1.0))
    return Graph.from_edges(rows * cols, edges)


def _clustered_graph(num_clusters, size, rng, internal=10.0, external=1.0):
    """num_clusters dense groups, sparse random links between them."""
    n = num_clusters * size
    edges = []
    for cluster in range(num_clusters):
        members = list(range(cluster * size, (cluster + 1) * size))
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                edges.append((u, v, internal))
    for _ in range(num_clusters * 2):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v:
            edges.append((u, v, external))
    return Graph.from_edges(n, edges)


def test_parameter_validation():
    graph = Graph(4)
    with pytest.raises(PartitioningError):
        partition(graph, 0)
    with pytest.raises(PartitioningError):
        partition(graph, 2, imbalance=0.9)


def test_trivial_cases():
    assert partition(Graph(0), 4) == []
    assert partition(Graph(3), 1) == [0, 0, 0]


def test_more_parts_than_vertices():
    graph = Graph(2)
    parts = partition(graph, 5)
    assert len(parts) == 2
    assert all(0 <= p < 5 for p in parts)
    # The two vertices should not share a part.
    assert parts[0] != parts[1]


def test_deterministic_given_seed():
    rng = random.Random(0)
    graph = _clustered_graph(4, 8, rng)
    first = partition(graph, 4, seed=123)
    second = partition(graph, 4, seed=123)
    assert first == second


def test_recovers_planted_clusters():
    rng = random.Random(1)
    graph = _clustered_graph(4, 8, rng)
    parts = partition(graph, 4, seed=7)
    # Each planted cluster should land (almost) entirely in one part.
    for cluster in range(4):
        members = parts[cluster * 8 : (cluster + 1) * 8]
        dominant = max(set(members), key=members.count)
        assert members.count(dominant) >= 7
    assert balance(graph, parts, 4) <= 1.15


def test_grid_bisection_cut_is_reasonable():
    graph = _grid_graph(8, 8)
    parts = partition(graph, 2, seed=3)
    # Optimal cut of an 8x8 grid bisection is 8; allow some slack.
    assert edge_cut(graph, parts) <= 14.0
    weights = part_weights(graph, parts, 2)
    assert max(weights) <= 1.06 * 32


def test_weighted_vertices_balanced():
    rng = random.Random(2)
    weights = [rng.randint(1, 20) for _ in range(60)]
    edges = [
        (rng.randrange(60), rng.randrange(60), float(rng.randint(1, 5)))
        for _ in range(200)
    ]
    edges = [(u, v, w) for u, v, w in edges if u != v]
    graph = Graph.from_edges(60, edges, vertex_weights=weights)
    parts = partition(graph, 3, imbalance=1.1, seed=5)
    assert balance(graph, parts, 3) <= 1.35  # soft bound; see DESIGN.md


def test_zero_weight_graph_splits_by_count():
    graph = Graph(8, vertex_weights=[0.0] * 8)
    parts = partition(graph, 2, seed=1)
    counts = [parts.count(0), parts.count(1)]
    assert sorted(counts) == [4, 4]


def test_bipartite_key_graph_from_paper_figure5():
    """The Figure 5 example: Asia/#java/#ruby vs Oceania/#python."""
    # Vertices: 0=Asia(7443) 1=Oceania(5190) 2=#java(4664) 3=#ruby(3892)
    #           4=#python(4077)
    graph = Graph.from_edges(
        5,
        [
            (0, 2, 3463.0),  # (Asia, #java)
            (0, 3, 3011.0),  # (Asia, #ruby)
            (0, 4, 969.0),   # (Asia, #python)
            (1, 2, 1201.0),  # (Oceania, #java)
            (1, 3, 881.0),   # (Oceania, #ruby)
            (1, 4, 3108.0),  # (Oceania, #python)
        ],
        vertex_weights=[7443, 5190, 4664, 3892, 4077],
    )
    # The paper's own split has imbalance 1.27 (15999 vs ideal 12633),
    # so the bound must be at least that loose for this example.
    parts = partition(graph, 2, imbalance=1.3, seed=0)
    # The paper: Asia, #java, #ruby together; Oceania with #python.
    assert parts[0] == parts[2] == parts[3]
    assert parts[1] == parts[4]
    assert parts[0] != parts[1]


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    nparts=st.integers(min_value=1, max_value=6),
    n=st.integers(min_value=0, max_value=40),
)
@settings(max_examples=60, deadline=None)
def test_partition_is_total_and_in_range(seed, nparts, n):
    rng = random.Random(seed)
    edges = []
    for _ in range(n * 2):
        u, v = rng.randrange(max(n, 1)), rng.randrange(max(n, 1))
        if n and u != v:
            edges.append((u, v, float(rng.randint(1, 9))))
    weights = [rng.randint(0, 10) for _ in range(n)]
    graph = Graph.from_edges(n, edges, vertex_weights=weights)
    parts = partition(graph, nparts, seed=seed)
    assert len(parts) == n
    assert all(0 <= p < nparts for p in parts)


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=30, deadline=None)
def test_balance_bound_on_unit_weights(seed):
    """With unit weights and enough vertices, the α=1.1 bound holds
    (up to rounding of one vertex per part)."""
    graph = _grid_graph(6, 6)
    parts = partition(graph, 3, imbalance=1.1, seed=seed)
    weights = part_weights(graph, parts, 3)
    ideal = 36 / 3
    assert max(weights) <= 1.1 * ideal + 1.0


def test_larger_graph_smoke():
    rng = random.Random(9)
    graph = _clustered_graph(6, 40, rng)
    parts = partition(graph, 6, seed=11)
    assert balance(graph, parts, 6) <= 1.2
    # Cut should be far below total inter-cluster potential.
    assert edge_cut(graph, parts) < 0.05 * graph.total_edge_weight
