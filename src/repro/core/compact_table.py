"""Memory-bounded routing tables for million-key deployments.

A plain :class:`~repro.core.routing_table.RoutingTable` keeps every raw
key alive in a Python dict — ~100+ bytes/key of interpreter overhead and
unbounded with key length. At the ROADMAP's million-user scale that is
the dominant memory cost of a routed stream, so this module trades exact
membership for a *bounded false-route budget* (DESIGN.md §13):

- a **counting-Bloom front filter** answers "does this key have an
  explicit route?" before any lookup; absent keys short-circuit to the
  hash fallback without touching the entry store, and counting (rather
  than plain) bits let delta removals take effect;
- an **open-addressing fingerprint store** maps a ``fingerprint_bits``
  hash of the key — not the key itself — to its owner, so entry size is
  independent of key length;
- an **exact side-dict** absorbs build-time fingerprint collisions, so
  two distinct resident keys never share a slot.

The result answers ``lookup`` exactly for every key the table contains.
The only approximation is one-sided: a key *not* in the table can pass
the filter AND match a resident fingerprint with probability
``filter_fpr × len/2**fingerprint_bits`` — the *false-route rate* — in
which case it routes to some table owner instead of its hash owner.
That is safe by construction (the key's state simply lives on that
owner, exactly as if the manager had pinned it) and is surfaced as the
``compact_expected_false_route_rate`` gauge against the configured
``false_route_budget``.

Compact tables are **payload-side** objects: the manager plans with
plain enumerable tables and compacts at the wire boundary
(``Manager._encode_table_update``), so diffing/planning never needs to
enumerate a compact table. Cross-representation equality — required by
the invariant suite's routing-agreement check — goes through the shared
XOR fingerprint of :mod:`repro.core.routing_table`.
"""

from __future__ import annotations

import math
from array import array
from dataclasses import dataclass
from types import MappingProxyType
from typing import Dict, Hashable, Iterator, Mapping, Optional, Tuple

from repro.core.routing_table import (
    RoutingTable,
    SplitSet,
    entry_fingerprint,
    split_fingerprint,
)
from repro.engine.grouping import stable_hash
from repro.errors import ReconfigurationError

#: seeds separating the filter's position stream from the entry
#: fingerprint stream (both derive from one stable_hash call per key)
_FILTER_SEED = 0x2F0E1B85
_KEY_FP_SEED = 0x6B7D3A29

#: slot states in the fingerprint store; stored fingerprints are
#: remapped to ``(raw & mask) + 2`` so they never collide with these
_EMPTY = 0
_TOMBSTONE = 1


@dataclass(frozen=True)
class CompactTableConfig:
    """Memory/accuracy knobs for :class:`CompactRoutingTable`.

    The defaults target a ≤1e-4 false-route budget at 1M keys:
    expected rate ≈ filter_fpr(12 bits/key, 6 hashes) × n/2**32
    ≈ 3.7e-3 × 2.3e-4 ≈ 8.6e-7 (see DESIGN.md §13 for the model).
    """

    #: bits of key fingerprint stored per entry (8..60)
    fingerprint_bits: int = 32
    #: counting-filter cells per key (classic Bloom "bits per key")
    filter_bits_per_key: int = 12
    #: filter hash functions (Kirsch-Mitzenmacher double hashing)
    filter_hashes: int = 6
    #: acceptable probability that an absent key is falsely routed
    false_route_budget: float = 1e-4

    def __post_init__(self) -> None:
        if not 8 <= self.fingerprint_bits <= 60:
            raise ReconfigurationError(
                f"fingerprint_bits must be in [8, 60], got "
                f"{self.fingerprint_bits}"
            )
        if self.filter_bits_per_key < 1:
            raise ReconfigurationError(
                f"filter_bits_per_key must be >= 1, got "
                f"{self.filter_bits_per_key}"
            )
        if self.filter_hashes < 1:
            raise ReconfigurationError(
                f"filter_hashes must be >= 1, got {self.filter_hashes}"
            )
        if not 0.0 < self.false_route_budget <= 1.0:
            raise ReconfigurationError(
                f"false_route_budget must be in (0, 1], got "
                f"{self.false_route_budget}"
            )


class KeyFilter:
    """Counting Bloom filter over routing keys.

    Cells are 8-bit saturating counters in this implementation (a
    ``bytearray`` keeps the hot path simple); the wire/memory model
    charges the canonical 4 bits per cell (DESIGN.md §13). A counter
    that saturates at 255 sticks there — ``discard`` never decrements a
    saturated cell, preserving the no-false-negative guarantee at the
    cost of a permanently-set cell (vanishingly rare at sane sizing).
    """

    __slots__ = ("_cells", "_num_cells", "_num_hashes")

    def __init__(self, capacity_keys: int, bits_per_key: int, hashes: int):
        self._num_cells = max(8, capacity_keys * bits_per_key)
        self._cells = bytearray(self._num_cells)
        self._num_hashes = hashes

    def _positions(self, key: Hashable) -> Tuple[int, ...]:
        # one stable_hash per key; h1/h2 double hashing derives all
        # probe positions (Kirsch-Mitzenmacher)
        h = stable_hash(key, _FILTER_SEED)
        h1 = h & 0xFFFFFFFF
        h2 = (h >> 32) | 1
        m = self._num_cells
        return tuple((h1 + i * h2) % m for i in range(self._num_hashes))

    def add(self, key: Hashable) -> None:
        cells = self._cells
        for pos in self._positions(key):
            if cells[pos] < 255:
                cells[pos] += 1

    def discard(self, key: Hashable) -> None:
        cells = self._cells
        for pos in self._positions(key):
            if 0 < cells[pos] < 255:
                cells[pos] -= 1

    def __contains__(self, key: Hashable) -> bool:
        cells = self._cells
        return all(cells[pos] for pos in self._positions(key))

    def false_positive_rate(self, num_keys: int) -> float:
        """Classic Bloom estimate ``(1 - e^{-kn/m})^k`` for the current
        sizing holding ``num_keys`` keys."""
        if num_keys <= 0:
            return 0.0
        k = self._num_hashes
        load = k * num_keys / self._num_cells
        return (1.0 - math.exp(-load)) ** k

    @property
    def model_bytes(self) -> int:
        """Modeled memory: 4-bit counters, two cells per byte."""
        return (self._num_cells + 1) // 2


class CompactRoutingTable:
    """Fingerprint-compressed routing table behind a membership filter.

    Duck-type compatible with :class:`RoutingTable` for every consumer
    on the data plane and the reconfiguration protocol: ``lookup``,
    ``split``, ``splits``, ``max_instance``, ``moved_keys``,
    ``split_consolidations``, ``__len__``, ``__contains__``,
    ``fingerprint`` and ``__eq__``. It deliberately does **not**
    enumerate keys (``keys``/``items``/``as_dict`` raise): raw keys are
    gone after construction — that is the point. Manager-side planning
    therefore always runs on plain tables; compact tables exist from
    the wire boundary outward (see module docstring).

    Split keys stay raw: the split set is by design tiny (heavy
    hitters), and hybrid routing needs the exact member tuples.
    """

    __slots__ = (
        "_config",
        "_mask",
        "_fps",
        "_owners",
        "_capacity",
        "_tombstones",
        "_len",
        "_exact",
        "_splits",
        "_filter",
        "_fingerprint",
        "lookups",
        "filter_rejects",
        "filter_false_positives",
    )

    def __init__(
        self,
        mapping: Optional[Mapping[Hashable, int]] = None,
        splits: Optional[Mapping[Hashable, Tuple[int, ...]]] = None,
        config: Optional[CompactTableConfig] = None,
    ) -> None:
        self._config = config or CompactTableConfig()
        self._mask = (1 << self._config.fingerprint_bits) - 1
        self._splits: SplitSet = {
            key: tuple(members) for key, members in (splits or {}).items()
        }
        items = dict(mapping or {})
        # open addressing at ≤0.75 load; power-of-two capacity so the
        # probe sequence is a cheap mask
        self._capacity = 1 << max(3, (len(items) * 4 // 3 + 1).bit_length())
        self._fps = array("Q", bytes(8 * self._capacity))
        self._owners = array("i", bytes(4 * self._capacity))
        self._tombstones = 0
        self._len = 0
        self._exact: Dict[Hashable, int] = {}
        self._filter = KeyFilter(
            max(len(items), 1),
            self._config.filter_bits_per_key,
            self._config.filter_hashes,
        )
        self.lookups = 0
        self.filter_rejects = 0
        self.filter_false_positives = 0
        self._fingerprint = 0
        for key, members in self._splits.items():
            self._fingerprint ^= split_fingerprint(key, members)
        for key, owner in items.items():
            self._build_insert(key, owner)

    @classmethod
    def from_table(
        cls, table: RoutingTable, config: Optional[CompactTableConfig] = None
    ) -> "CompactRoutingTable":
        """Compact an enumerable table (entries fingerprinted, splits
        carried raw). The result compares equal to ``table``."""
        return cls(table.mapping, table.splits, config)

    # ------------------------------------------------------------------
    # Fingerprint store internals
    # ------------------------------------------------------------------

    def _slot_fp(self, key: Hashable) -> int:
        return (stable_hash(key, _KEY_FP_SEED) & self._mask) + 2

    def _find(self, fp: int) -> int:
        """Slot index holding ``fp``, or -1. Linear probing from the
        fingerprint's home slot; _EMPTY terminates, _TOMBSTONE does
        not."""
        fps = self._fps
        mask = self._capacity - 1
        slot = fp & mask
        while True:
            current = fps[slot]
            if current == fp:
                return slot
            if current == _EMPTY:
                return -1
            slot = (slot + 1) & mask

    def _place(self, fp: int, owner: int) -> None:
        fps = self._fps
        mask = self._capacity - 1
        slot = fp & mask
        while fps[slot] > _TOMBSTONE:
            slot = (slot + 1) & mask
        if fps[slot] == _TOMBSTONE:
            self._tombstones -= 1
        fps[slot] = fp
        self._owners[slot] = owner

    def _build_insert(self, key: Hashable, owner: int) -> None:
        fp = self._slot_fp(key)
        if self._find(fp) >= 0 or key in self._exact:
            # build-time fingerprint collision between two resident
            # keys: the second key keeps its raw form so both stay
            # exact (first-writer keeps the slot)
            self._exact[key] = owner
        else:
            self._place(fp, owner)
        self._filter.add(key)
        self._fingerprint ^= entry_fingerprint(key, owner)
        self._len += 1

    def _maybe_rebuild(self) -> None:
        """Re-pack the store when deltas have bloated it: tombstones
        past a quarter of capacity, or load past 0.75."""
        live = self._len - len(self._exact)
        if (
            self._tombstones <= self._capacity // 4
            and (live + self._tombstones) * 4 <= self._capacity * 3
        ):
            return
        old_fps, old_owners = self._fps, self._owners
        self._capacity = 1 << max(3, (live * 4 // 3 + 1).bit_length())
        self._fps = array("Q", bytes(8 * self._capacity))
        self._owners = array("i", bytes(4 * self._capacity))
        self._tombstones = 0
        for slot, fp in enumerate(old_fps):
            if fp > _TOMBSTONE:
                self._place(fp, old_owners[slot])

    # ------------------------------------------------------------------
    # Delta mutation (package-private: TableDelta.apply drives these)
    # ------------------------------------------------------------------

    def _set(self, key: Hashable, owner: int) -> None:
        if key in self._exact:
            old = self._exact[key]
            if old != owner:
                self._exact[key] = owner
                self._fingerprint ^= entry_fingerprint(key, old)
                self._fingerprint ^= entry_fingerprint(key, owner)
            return
        fp = self._slot_fp(key)
        slot = self._find(fp)
        present = key in self._filter
        if slot >= 0 and present:
            # owner update of a resident key (or, within the budget, of
            # a same-fingerprint twin that also passes the filter)
            old = self._owners[slot]
            if old != owner:
                self._owners[slot] = owner
                self._fingerprint ^= entry_fingerprint(key, old)
                self._fingerprint ^= entry_fingerprint(key, owner)
            return
        if slot >= 0:
            # filter says the key is new, so the fingerprint match is a
            # known collision with a *different* resident key — keep
            # the newcomer exact rather than corrupt the resident
            self._exact[key] = owner
        else:
            self._place(fp, owner)
        self._filter.add(key)
        self._fingerprint ^= entry_fingerprint(key, owner)
        self._len += 1
        self._maybe_rebuild()

    def _remove(self, key: Hashable) -> None:
        if key in self._exact:
            old = self._exact.pop(key)
            self._filter.discard(key)
            self._fingerprint ^= entry_fingerprint(key, old)
            self._len -= 1
            return
        if key not in self._filter:
            return  # removing an absent key is a no-op
        fp = self._slot_fp(key)
        slot = self._find(fp)
        if slot < 0:
            return  # filter false positive on an absent key
        old = self._owners[slot]
        self._fps[slot] = _TOMBSTONE
        self._tombstones += 1
        self._filter.discard(key)
        self._fingerprint ^= entry_fingerprint(key, old)
        self._len -= 1
        self._maybe_rebuild()

    def _set_split(self, key: Hashable, members: Tuple[int, ...]) -> None:
        members = tuple(members)
        old = self._splits.get(key)
        if old is not None:
            self._fingerprint ^= split_fingerprint(key, old)
        self._splits[key] = members
        self._fingerprint ^= split_fingerprint(key, members)

    def _remove_split(self, key: Hashable) -> None:
        old = self._splits.pop(key, None)
        if old is not None:
            self._fingerprint ^= split_fingerprint(key, old)

    def copy(self) -> "CompactRoutingTable":
        """A structural copy sharing no mutable state (used as the
        delta-application base so the router's live table is never
        mutated in place)."""
        clone = CompactRoutingTable.__new__(CompactRoutingTable)
        clone._config = self._config
        clone._mask = self._mask
        clone._fps = array("Q", self._fps)
        clone._owners = array("i", self._owners)
        clone._capacity = self._capacity
        clone._tombstones = self._tombstones
        clone._len = self._len
        clone._exact = dict(self._exact)
        clone._splits = dict(self._splits)
        new_filter = KeyFilter.__new__(KeyFilter)
        new_filter._cells = bytearray(self._filter._cells)
        new_filter._num_cells = self._filter._num_cells
        new_filter._num_hashes = self._filter._num_hashes
        clone._filter = new_filter
        clone._fingerprint = self._fingerprint
        # Traffic counters follow the lineage: a delta-applied
        # successor keeps accumulating, so the summed metrics don't
        # zero out on every table swap.
        clone.lookups = self.lookups
        clone.filter_rejects = self.filter_rejects
        clone.filter_false_positives = self.filter_false_positives
        return clone

    # ------------------------------------------------------------------
    # RoutingTable-compatible API
    # ------------------------------------------------------------------

    def lookup(self, key: Hashable) -> Optional[int]:
        self.lookups += 1
        if key not in self._filter:
            self.filter_rejects += 1
            return None
        exact = self._exact
        if exact:
            owner = exact.get(key)
            if owner is not None:
                return owner
        slot = self._find(self._slot_fp(key))
        if slot < 0:
            self.filter_false_positives += 1
            return None
        return self._owners[slot]

    def split(self, key: Hashable) -> Optional[Tuple[int, ...]]:
        return self._splits.get(key)

    @property
    def splits(self) -> Mapping[Hashable, Tuple[int, ...]]:
        return MappingProxyType(self._splits)

    @property
    def num_split_keys(self) -> int:
        return len(self._splits)

    def split_keys(self) -> Iterator[Hashable]:
        return iter(self._splits)

    def with_splits(
        self, splits: Optional[Mapping[Hashable, Tuple[int, ...]]]
    ) -> "CompactRoutingTable":
        clone = self.copy()
        for key in list(clone._splits):
            clone._remove_split(key)
        for key, members in (splits or {}).items():
            clone._set_split(key, tuple(members))
        return clone

    def __contains__(self, key: Hashable) -> bool:
        if key not in self._filter:
            return False
        return key in self._exact or self._find(self._slot_fp(key)) >= 0

    def __len__(self) -> int:
        return self._len

    def max_instance(self) -> Optional[int]:
        top: Optional[int] = None
        fps = self._fps
        owners = self._owners
        for slot in range(self._capacity):
            if fps[slot] > _TOMBSTONE:
                owner = owners[slot]
                if top is None or owner > top:
                    top = owner
        for owner in self._exact.values():
            if top is None or owner > top:
                top = owner
        for members in self._splits.values():
            if members:
                widest = max(members)
                top = widest if top is None else max(top, widest)
        return top

    def fingerprint(self) -> int:
        return self._fingerprint

    # Enumeration is impossible by design; fail loudly if anything
    # tries (planning must stay on plain tables).
    def keys(self):
        raise TypeError(
            "CompactRoutingTable stores fingerprints, not keys; "
            "plan with plain RoutingTable and compact at the wire "
            "boundary (DESIGN.md §13)"
        )

    items = keys
    as_dict = keys

    # ------------------------------------------------------------------
    # Diffing — supported only against an enumerable counterpart
    # ------------------------------------------------------------------

    def moved_keys(self, new, fallback) -> Dict[Hashable, Tuple[int, int]]:
        """Keys whose owner changes between ``self`` and enumerable
        ``new``.

        Contract difference vs the plain table: only keys present in
        ``new`` can be reported (this table cannot enumerate keys that
        were dropped); entry retirements must travel as
        :class:`~repro.core.table_delta.TableDelta` removals instead of
        diffs. The manager honors this by planning on plain tables.
        """
        if isinstance(new, CompactRoutingTable):
            raise ReconfigurationError(
                "cannot diff two compact tables: neither side can "
                "enumerate keys"
            )
        moved: Dict[Hashable, Tuple[int, int]] = {}
        for key, new_owner in new.items():
            if key in self._splits or new.split(key) is not None:
                continue
            old_owner = self.lookup(key)
            if old_owner is None:
                old_owner = fallback(key)
            if old_owner != new_owner:
                moved[key] = (old_owner, new_owner)
        return moved

    def split_consolidations(
        self, new, fallback
    ) -> Dict[Hashable, Tuple[Tuple[int, ...], int]]:
        consolidations: Dict[Hashable, Tuple[Tuple[int, ...], int]] = {}
        for key, members in self._splits.items():
            if new.split(key) is not None:
                continue
            new_owner = new.lookup(key)
            if new_owner is None:
                new_owner = fallback(key)
            consolidations[key] = (members, new_owner)
        return consolidations

    # ------------------------------------------------------------------
    # Memory / accuracy model (DESIGN.md §13)
    # ------------------------------------------------------------------

    @property
    def config(self) -> CompactTableConfig:
        return self._config

    def table_bytes(self) -> int:
        """Modeled entry-store memory: every capacity slot charged
        ``ceil(fingerprint_bits/8) + 2`` bytes (owner as u16), plus the
        exact side-dict at plain-table rates."""
        per_slot = (self._config.fingerprint_bits + 7) // 8 + 2
        total = self._capacity * per_slot
        for key in self._exact:
            total += 18 + len(repr(key).encode("utf-8", "backslashreplace"))
        return total

    def filter_bytes(self) -> int:
        """Modeled front-filter memory (4-bit counting cells)."""
        return self._filter.model_bytes

    def memory_bytes(self) -> int:
        """Total modeled memory: entry store + filter + raw split set
        (split keys stay raw; the set is heavy-hitters-sized)."""
        total = self.table_bytes() + self.filter_bytes()
        for key, members in self._splits.items():
            key_bytes = len(repr(key).encode("utf-8", "backslashreplace"))
            total += 2 + key_bytes + 1 + 2 * len(members)
        return total

    def expected_false_route_rate(self) -> float:
        """Probability an absent key is falsely routed: it must pass
        the filter AND match a resident fingerprint."""
        fp_match = min(1.0, self._len / float(1 << self._config.fingerprint_bits))
        return self._filter.false_positive_rate(self._len) * fp_match

    def within_budget(self) -> bool:
        return self.expected_false_route_rate() <= self._config.false_route_budget

    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, (CompactRoutingTable, RoutingTable)):
            return NotImplemented
        return (
            len(self) == len(other)
            and self._fingerprint == other.fingerprint()
            and dict(self._splits) == dict(other.splits)
        )

    def __repr__(self) -> str:
        rate = self.expected_false_route_rate()
        return (
            f"CompactRoutingTable({self._len} keys, "
            f"{len(self._splits)} split, "
            f"{self.memory_bytes()} model bytes, "
            f"false-route~{rate:.2e})"
        )


def plain_table_memory_bytes(table) -> int:
    """Modeled memory of a raw-key table under the same accounting as
    DESIGN.md §13: per entry a slot pointer (8), a key header (8), the
    key's repr bytes and a u16 owner; split entries at snapshot rates.
    Lets scale sweeps compare plain vs compact on one axis."""
    if table is None:
        return 0
    total = 0
    for key, _owner in table.items():
        total += 18 + len(repr(key).encode("utf-8", "backslashreplace"))
    for key, members in table.splits.items():
        key_bytes = len(repr(key).encode("utf-8", "backslashreplace"))
        total += 2 + key_bytes + 1 + 2 * len(members)
    return total
