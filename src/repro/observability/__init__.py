"""Observability: metric registry, structured tracing, telemetry export.

The paper's Manager decides *when* to reconfigure purely from collected
statistics, yet a reproduction that only prints end-of-run numbers
cannot show a run unfolding — locality climbing after a table swap,
migration traffic attributed to its round, the estimator's predicted
locality drifting from what the next window achieves (the behaviour
behind Figs. 12–14). This package is the missing layer, shaped like the
metrics/tracing stack a production stream processor carries:

- :mod:`~repro.observability.registry` — counters, gauges and bounded
  histograms every subsystem publishes into. One registry per run; the
  engine's :class:`~repro.engine.metrics.MetricsHub` stores its tallies
  *in* the registry so there is exactly one copy of every count.
- :mod:`~repro.observability.trace` — begin/end spans with parent ids.
  The manager emits one span tree per reconfiguration round:
  ``STATS_COLLECT → PARTITION → PROPAGATE → MIGRATE`` with a terminal
  ``COMMIT``/``ABORT``/``SKIP``/``VETO`` event.
- :mod:`~repro.observability.snapshots` — periodic time-series records
  (locality, load balance, cut weight, per-window throughput).
- :mod:`~repro.observability.sink` — where records go: JSON Lines
  (loadable by :mod:`repro.analysis.telemetry`), memory, or the
  default :data:`~repro.observability.sink.NULL_SINK`.

Overhead is opt-in by construction: hot paths either increment plain
integers that were already being counted, or check a single
``sink.enabled`` flag. ``benchmarks/bench_observability.py`` verifies
the default-off overhead stays under the 3 % budget.

Typical use::

    from repro.observability import attach_telemetry

    deployment = deploy(sim, cluster, topology)
    manager = Manager(deployment, ManagerConfig(period_s=0.5))
    telemetry = attach_telemetry(
        deployment, manager=manager,
        path="results/telemetry.jsonl", snapshot_interval_s=0.05,
    )
    manager.start(); deployment.start(); sim.run(until=1.5)
    telemetry.flush()     # metric dump + close the JSONL file

then ``python -m repro.analysis.report results/telemetry.jsonl``.
"""

from __future__ import annotations

from typing import Optional

from repro.observability.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
)
from repro.observability.sink import (
    JsonlSink,
    MemorySink,
    NULL_SINK,
    NullSink,
    TelemetrySink,
)
from repro.observability.snapshots import SnapshotProbe
from repro.observability.trace import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "TelemetrySink",
    "NullSink",
    "NULL_SINK",
    "MemorySink",
    "JsonlSink",
    "Tracer",
    "Span",
    "SnapshotProbe",
    "Telemetry",
    "attach_telemetry",
]


class Telemetry:
    """One run's registry + tracer + sink, wired to one clock."""

    def __init__(
        self,
        registry: MetricRegistry,
        sink: TelemetrySink,
        clock,
    ) -> None:
        self.registry = registry
        self.sink = sink
        self.clock = clock
        self.tracer = Tracer(clock, sink)
        self.probe: Optional[SnapshotProbe] = None

    @property
    def enabled(self) -> bool:
        return self.sink.enabled

    def flush(self) -> None:
        """Dump every registry metric as ``metric`` records, then close
        the sink. Call once, after the simulation finishes."""
        if self.sink.enabled:
            now = self.clock()
            for sample in self.registry.collect():
                sample["type"] = "metric"
                sample["ts"] = now
                self.sink.emit(sample)
        self.sink.close()


def attach_telemetry(
    deployment,
    manager=None,
    path: Optional[str] = None,
    sink: Optional[TelemetrySink] = None,
    snapshot_interval_s: Optional[float] = None,
) -> Telemetry:
    """Wire full telemetry onto a deployed topology.

    Builds a :class:`Telemetry` around the deployment's existing metric
    registry (``deployment.metrics.registry`` — the hub and exporter
    share counters by design), then:

    - registers callback collectors for the engine tallies that live
      outside the hub: routing-table hit/fallback counts per source
      instance, per-link transfer volume, held-key buffer depth, and
      SpaceSaving occupancy/error of every instrumented instance;
    - hands the tracer to ``manager`` (when given) so reconfiguration
      rounds emit their span tree;
    - arms a :class:`SnapshotProbe` when ``snapshot_interval_s`` is set.

    Exactly one of ``path`` (a JSONL file) or ``sink`` should be given;
    with neither, everything stays a no-op (the null sink).
    """
    from repro.engine.executor import BoltExecutor
    from repro.engine.grouping import TableRouter

    if path is not None and sink is not None:
        raise ValueError("pass either path or sink, not both")
    if sink is None:
        sink = JsonlSink(path) if path is not None else NULL_SINK

    metrics = deployment.metrics
    telemetry = Telemetry(
        registry=metrics.registry,
        sink=sink,
        clock=lambda: deployment.sim.now,
    )
    registry = telemetry.registry

    network = deployment.cluster.network
    registry.register_callback(
        "link_bytes",
        lambda n=network: {
            f"{src}->{dst}": nbytes
            for (src, dst), nbytes in sorted(n.link_bytes.items())
        },
    )
    registry.register_callback(
        "network_bytes_total", lambda n=network: n.bytes_sent
    )
    registry.register_callback(
        "network_messages_total", lambda n=network: n.messages_sent
    )

    for executor in deployment.all_executors():
        for edge in executor.out_edges:
            router = edge.router
            if isinstance(router, TableRouter):
                registry.register_callback(
                    "routing_table_hits",
                    lambda r=router: r.table_hits,
                    stream=edge.stream_name,
                    instance=executor.instance,
                )
                registry.register_callback(
                    "routing_hash_fallbacks",
                    lambda r=router: r.hash_fallbacks,
                    stream=edge.stream_name,
                    instance=executor.instance,
                )
        if isinstance(executor, BoltExecutor):
            registry.register_callback(
                "held_keys",
                lambda e=executor: len(e.held_keys),
                op=executor.op_name,
                instance=executor.instance,
            )
            registry.register_callback(
                "buffered_tuples_total",
                lambda e=executor: e.buffered_count,
                op=executor.op_name,
                instance=executor.instance,
            )
        tracker = executor.instrumentation
        if tracker is not None and hasattr(tracker, "sketch_stats"):
            registry.register_callback(
                "sketch_stats",
                tracker.sketch_stats,
                op=executor.op_name,
                instance=executor.instance,
            )

    if manager is not None:
        manager.set_telemetry(telemetry)

    if snapshot_interval_s is not None:
        telemetry.probe = SnapshotProbe(
            deployment, snapshot_interval_s, sink
        )
        telemetry.probe.start()

    return telemetry
