"""The multiprocess backend: equivalence, faults, teardown.

Three layers of lockdown for `repro.engine.backends.multiprocess`:

1. **Equivalence stress** — ten seeds of the skew workload plus fig13
   and a 2→4 rescale replay must match the reference DES under the
   tiered exactness contract (strict for table/hash, containment for
   hybrid), with per-server CPU ns and inter-process bytes reported as
   *measured* values.
2. **Properties** (mirror of ``test_vectorized_routers``): for random
   mixed-type key streams run through the *real* backend, table/hash
   placements equal the scalar routers' per-tuple decisions; hybrid
   and PKG keep per-key totals exact with placements contained in the
   member/candidate sets.
3. **Failure handling** — an injected worker crash mid-batch and an
   injected hang both surface as a structured
   :class:`MultiprocessBackendError` (partial progress attached), tiny
   queues exercise the backpressure path, and *every* test asserts no
   child process survives.
"""

import multiprocessing

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.routing_table import RoutingTable
from repro.engine import (
    CountBolt,
    TableFieldsGrouping,
    TopologyBuilder,
)
from repro.engine.backends import (
    BackendOptions,
    MultiprocessBackendError,
    ReconfigureAction,
    available_backends,
    run_topology,
)
from repro.engine.grouping import (
    FieldsGrouping,
    HybridTableFieldsGrouping,
    PartialKeyGrouping,
    RouterContext,
    candidate_instances,
    stable_hash,
)
from repro.engine.operators import IteratorSpout
from repro.testing.equivalence import compare_backends, run_equivalence
from repro.workloads.skew import SkewConfig, SkewWorkload

pytestmark = pytest.mark.timeout(120)

STRICT = dict(locality_tol=1e-9, balance_tol=1e-9)


def assert_no_orphans():
    """Every worker the backend forked must be gone again."""
    leaked = [
        p
        for p in multiprocessing.active_children()
        if p.name.startswith("repro-mp-worker")
    ]
    assert leaked == []


def mp_options(**kw):
    kw.setdefault("mp_timeout_s", 60)
    return BackendOptions(**kw)


def test_backend_is_registered():
    assert "multiprocess" in available_backends()


# ----------------------------------------------------------------------
# Equivalence stress
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(10))
def test_skew_table_equivalence_ten_seeds(seed):
    config = SkewConfig(
        parallelism=4, seed=seed, tuples_per_instance=300
    )
    report, ref, cand = run_equivalence(
        lambda: SkewWorkload(config).topology("table"),
        candidate="multiprocess",
        candidate_options=mp_options(),
        **STRICT,
    )
    assert report.ok, report.summary()
    # OpStats aggregated across workers must equal the DES totals:
    # no double-count, no loss (the merge_op_stats contract, end to end)
    for op, count in ref.processed.items():
        assert cand.op_stats[op]["tuples_in"] == count
    assert_no_orphans()


@pytest.mark.parametrize("policy", ["hash", "hybrid"])
def test_skew_policies_equivalence(policy):
    config = SkewConfig(parallelism=4, seed=1, tuples_per_instance=400)
    relaxed = policy == "hybrid"
    report, _, cand = run_equivalence(
        lambda: SkewWorkload(config).topology(policy),
        candidate="multiprocess",
        candidate_options=mp_options(),
        locality_tol=0.05 if relaxed else 1e-9,
        balance_tol=0.15 if relaxed else 1e-9,
        exact_placements=not relaxed,
        exact_received=not relaxed,
    )
    assert report.ok, report.summary()
    assert cand.measured["cpu_ns_total"] > 0
    assert_no_orphans()


def test_fig13_equivalence():
    from repro.workloads.flickr import FlickrConfig, FlickrWorkload

    workload = FlickrWorkload(FlickrConfig(seed=0))
    report, _, cand = run_equivalence(
        lambda: workload.topology(
            parallelism=4, padding=1000, tuples_per_instance=500
        ),
        candidate="multiprocess",
        candidate_options=mp_options(),
        **STRICT,
    )
    assert report.ok, report.summary()
    assert_no_orphans()


def _rescale_topology(seed, spouts=3, tuples_per_instance=800, width=2):
    import random

    def source(ctx):
        rng = random.Random(seed * 1000003 + ctx.instance_index)
        for _ in range(tuples_per_instance):
            a = rng.randrange(12)
            yield (a, a + 100)

    builder = TopologyBuilder()
    builder.spout("S", lambda: IteratorSpout(source), parallelism=spouts)
    builder.bolt(
        "A",
        lambda: CountBolt(0, forward=True),
        parallelism=width,
        inputs={"S": TableFieldsGrouping(0)},
    )
    builder.bolt(
        "B",
        lambda: CountBolt(1, forward=False),
        parallelism=width,
        inputs={"A": TableFieldsGrouping(1)},
    )
    return builder.build()


def test_rescale_replay_2_to_4():
    """The DES manager's final decision, replayed as scripted actions
    through the multiprocess control channel: per-key totals and final
    placements must match the DES exactly (both settle on ``owner_of``
    under the final table)."""
    from repro.core import Manager, ManagerConfig

    seed, tuples_per_instance, after = 3, 800, 4

    def attach_manager(deployment):
        sim = deployment.sim
        manager = Manager(deployment, ManagerConfig(period_s=None))

        def kick():
            if not manager.rescale(after, on_complete=lambda r: None):
                sim.schedule(0.01, kick)

        sim.schedule(0.02, kick)

    ref = run_topology(
        _rescale_topology(seed, tuples_per_instance=tuples_per_instance),
        "reference",
        BackendOptions(num_servers=after, on_deployed=attach_manager),
    )
    deployment = ref.handle
    actions = [
        ReconfigureAction(
            tuples_per_instance,
            "S->A",
            deployment.executors["S"][0].table_router("S->A").table,
            after,
        ),
        ReconfigureAction(
            tuples_per_instance,
            "A->B",
            deployment.executors["A"][0].table_router("A->B").table,
            after,
        ),
    ]
    cand = run_topology(
        _rescale_topology(seed, tuples_per_instance=tuples_per_instance),
        "multiprocess",
        mp_options(num_servers=after, actions=actions),
    )
    report = compare_backends(
        ref, cand, exact_received=False, locality_tol=1.0, balance_tol=1.0
    )
    assert report.ok, report.summary()
    assert ref.per_key_totals == cand.per_key_totals
    assert ref.key_instances == cand.key_instances
    assert_no_orphans()


# ----------------------------------------------------------------------
# Measured costs
# ----------------------------------------------------------------------


def test_measured_costs_shape():
    config = SkewConfig(parallelism=4, seed=0, tuples_per_instance=200)
    result = run_topology(
        SkewWorkload(config).topology("table"),
        "multiprocess",
        mp_options(),
    )
    measured = result.measured
    assert sorted(measured["per_server"]) == [0, 1, 2, 3]
    for stats in measured["per_server"].values():
        assert stats["cpu_ns"] > 0
    assert measured["cpu_ns_total"] == sum(
        s["cpu_ns"] for s in measured["per_server"].values()
    )
    # conservation on the wire: every byte sent was received
    assert measured["ipc_bytes_total"] == sum(
        s["ipc_rx_bytes"] for s in measured["per_server"].values()
    )
    assert result.sim_s > 0
    assert_no_orphans()


def test_single_server_run_has_zero_ipc():
    """With one server every edge is intra-server: locality is total
    and not a single byte crosses a process boundary."""
    config = SkewConfig(parallelism=4, seed=0, tuples_per_instance=200)
    result = run_topology(
        SkewWorkload(config).topology("hash"),
        "multiprocess",
        mp_options(num_servers=1),
    )
    assert result.locality == 1.0
    assert result.measured["ipc_bytes_total"] == 0
    assert_no_orphans()


# ----------------------------------------------------------------------
# Properties: real-backend routing == scalar routers
# ----------------------------------------------------------------------

keys_st = st.one_of(
    st.integers(min_value=-(10**6), max_value=10**6),
    st.text(max_size=8),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.booleans(),
    st.none(),
)
# unique=True (value equality) keeps 1 / 1.0 / True apart: they are
# distinct routing keys but would alias as CountBolt state dict keys
key_lists = st.lists(keys_st, min_size=1, max_size=12, unique=True)

REPEATS = 3


def _keyed_topology(keys, grouping, parallelism):
    def source(ctx):
        for _ in range(REPEATS):
            for key in keys:
                yield (key,)

    builder = TopologyBuilder()
    builder.spout("S", lambda: IteratorSpout(source), parallelism=1)
    builder.bolt(
        "C",
        lambda: CountBolt(0, forward=False),
        parallelism=parallelism,
        inputs={"S": grouping},
    )
    return builder.build()


def _scalar_router(grouping, parallelism, num_servers=2):
    return grouping.build_router(
        RouterContext(
            stream_name="S->C",
            src_instance=0,
            src_server=0,
            dst_placements=[
                i % num_servers for i in range(parallelism)
            ],
            seed=stable_hash("S->C"),
        )
    )


@given(keys=key_lists, n=st.integers(min_value=1, max_value=5))
@settings(max_examples=12, deadline=None)
def test_mp_hash_placements_match_scalar_router(keys, n):
    result = run_topology(
        _keyed_topology(keys, FieldsGrouping(0), n),
        "multiprocess",
        mp_options(num_servers=2),
    )
    router = _scalar_router(FieldsGrouping(0), n)
    for key in keys:
        assert result.per_key_totals["C"][key] == REPEATS
        assert result.key_instances["C"][key] == tuple(
            router.select((key,))
        )
    assert_no_orphans()


@given(
    keys=key_lists,
    n=st.integers(min_value=2, max_value=5),
    mapped=st.dictionaries(
        st.integers(min_value=-100, max_value=100),
        st.integers(min_value=0, max_value=1),
        max_size=10,
    ),
)
@settings(max_examples=12, deadline=None)
def test_mp_table_placements_match_scalar_router(keys, n, mapped):
    table = RoutingTable(mapped)
    result = run_topology(
        _keyed_topology(keys, TableFieldsGrouping(0, table=table), n),
        "multiprocess",
        mp_options(num_servers=2),
    )
    router = _scalar_router(TableFieldsGrouping(0, table=table), n)
    for key in keys:
        assert result.per_key_totals["C"][key] == REPEATS
        assert result.key_instances["C"][key] == tuple(
            router.select((key,))
        )
    assert_no_orphans()


@given(
    keys=st.lists(
        st.integers(min_value=0, max_value=30),
        min_size=1,
        max_size=12,
        unique=True,
    ),
    n=st.integers(min_value=2, max_value=5),
)
@settings(max_examples=10, deadline=None)
def test_mp_hybrid_totals_exact_and_contained(keys, n):
    # key 0 is split over {0, 1}; the tail routes like a table router
    table = RoutingTable(
        {k: k % n for k in range(5)}, splits={0: (0, 1)}
    )
    result = run_topology(
        _keyed_topology(
            keys, HybridTableFieldsGrouping(0, table=table), n
        ),
        "multiprocess",
        mp_options(num_servers=2),
    )
    tail = _scalar_router(TableFieldsGrouping(0, table=table), n)
    for key in keys:
        assert result.per_key_totals["C"][key] == REPEATS
        placed = result.key_instances["C"][key]
        if key == 0:
            assert set(placed) <= {0, 1}
        else:
            assert placed == tuple(tail.select((key,)))
    assert_no_orphans()


@given(
    keys=st.lists(
        st.integers(min_value=-50, max_value=50),
        min_size=1,
        max_size=12,
        unique=True,
    ),
    n=st.integers(min_value=2, max_value=5),
    d=st.integers(min_value=2, max_value=3),
)
@settings(max_examples=10, deadline=None)
def test_mp_pkg_totals_exact_and_contained(keys, n, d):
    result = run_topology(
        _keyed_topology(keys, PartialKeyGrouping(0, d=d), n),
        "multiprocess",
        mp_options(num_servers=2),
    )
    seed = stable_hash("S->C")
    for key in keys:
        assert result.per_key_totals["C"][key] == REPEATS
        cands = candidate_instances(key, seed, n, d)
        assert set(result.key_instances["C"][key]) <= set(cands)
    assert_no_orphans()


# ----------------------------------------------------------------------
# Failure handling
# ----------------------------------------------------------------------


def _skew_topology(tuples_per_instance=500):
    config = SkewConfig(
        parallelism=4, seed=0, tuples_per_instance=tuples_per_instance
    )
    return SkewWorkload(config).topology("table")


def test_worker_crash_mid_batch_raises_structured_error():
    with pytest.raises(MultiprocessBackendError) as info:
        run_topology(
            _skew_topology(),
            "multiprocess",
            mp_options(
                mp_fault={
                    "kind": "crash",
                    "server": 1,
                    "after_tuples": 50,
                }
            ),
        )
    error = info.value
    assert error.reason == "worker-crash"
    assert error.server == 1
    assert error.exitcode not in (0, None)
    assert sorted(error.partial) == ["emitted", "finished", "results"]
    assert_no_orphans()


def test_worker_hang_hits_timeout_and_tears_down():
    with pytest.raises(MultiprocessBackendError) as info:
        run_topology(
            _skew_topology(),
            "multiprocess",
            BackendOptions(
                mp_timeout_s=3,
                mp_fault={
                    "kind": "hang",
                    "server": 0,
                    "after_tuples": 50,
                },
            ),
        )
    assert info.value.reason == "timeout"
    assert_no_orphans()


def test_queue_full_backpressure_still_equivalent():
    """Single-slot inbound queues force every sender through the
    drain-own-inbox retry path; results must not change."""
    config = SkewConfig(parallelism=4, seed=2, tuples_per_instance=300)
    report, _, _ = run_equivalence(
        lambda: SkewWorkload(config).topology("table"),
        candidate="multiprocess",
        candidate_options=mp_options(mp_queue_maxsize=1, batch_size=64),
        **STRICT,
    )
    assert report.ok, report.summary()
    assert_no_orphans()


def test_unknown_fault_kind_is_a_worker_error():
    with pytest.raises(MultiprocessBackendError) as info:
        run_topology(
            _skew_topology(200),
            "multiprocess",
            mp_options(
                mp_fault={
                    "kind": "meteor",
                    "server": 0,
                    "after_tuples": 0,
                }
            ),
        )
    assert info.value.reason == "worker-error"
    assert_no_orphans()
