"""Rack-aware hierarchical key assignment (paper Section 6, future
work).

"Instead of having a binary model in which keys are co-located or not,
distances between servers can be taken into account to leverage rack
locality when load balancing prevents server locality. This could be
done by using hierarchical clustering."

Two-level scheme:

1. partition the key graph over *racks* (each rack's capacity is the
   sum of its servers'), minimizing inter-rack pair traffic;
2. within each rack, partition that rack's induced subgraph over the
   rack's servers.

A pair that cannot share a server (balance) then usually still shares
a rack, where crossing the top-of-rack switch is cheaper than crossing
the core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.core.assignment import KeyAssignment
from repro.core.keygraph import KeyGraph
from repro.errors import PartitioningError
from repro.partitioning import partition


@dataclass
class HierarchicalQuality:
    """Traffic split of an assignment on a racked cluster."""

    same_server: float
    same_rack: float   # different server, same rack
    cross_rack: float

    def weighted_cost(
        self, rack_cost: float = 1.0, core_cost: float = 4.0
    ) -> float:
        """Network cost per unit of pair traffic: local is free,
        rack-crossing pays ``rack_cost``, core-crossing ``core_cost``."""
        return self.same_rack * rack_cost + self.cross_rack * core_cost


def compute_hierarchical_assignment(
    keygraph: KeyGraph,
    racks: Sequence[Sequence[int]],
    imbalance: float = 1.03,
    seed: int = 0,
) -> KeyAssignment:
    """Two-level key assignment over a racked cluster.

    Parameters
    ----------
    racks:
        Server indices per rack, e.g. ``[[0, 1, 2], [3, 4, 5]]``. Every
        server of the cluster appears exactly once.

    Returns
    -------
    KeyAssignment
        Maps each key vertex to a *server* index, like the flat
        :func:`~repro.core.assignment.compute_assignment`.
    """
    servers = [s for rack in racks for s in rack]
    if len(set(servers)) != len(servers):
        raise PartitioningError("a server appears in two racks")
    if not servers:
        raise PartitioningError("racks must contain at least one server")
    if any(len(rack) == 0 for rack in racks):
        raise PartitioningError("empty rack")

    graph, vertices = keygraph.to_partition_graph()

    if len(racks) == 1:
        flat = partition(
            graph, len(racks[0]), imbalance=imbalance, seed=seed
        )
        mapping = {
            vertex: racks[0][part] for vertex, part in zip(vertices, flat)
        }
        return KeyAssignment(parts=mapping, num_parts=len(servers))

    # Level 1: keys over racks. Racks may have different sizes; with
    # the recursive-bisection partitioner we approximate proportional
    # targets by weighting the imbalance bound (exact proportional
    # targets only matter for heterogeneous racks, which the paper's
    # testbed does not have).
    rack_parts = partition(
        graph, len(racks), imbalance=imbalance, seed=seed
    )

    # Level 2: within each rack, partition the induced subgraph.
    parts: Dict = {}
    for rack_index, rack_servers in enumerate(racks):
        members = [
            v for v in range(graph.num_vertices)
            if rack_parts[v] == rack_index
        ]
        if not members:
            continue
        subgraph, selected = graph.subgraph(members)
        local = partition(
            subgraph,
            len(rack_servers),
            imbalance=imbalance,
            seed=seed + rack_index + 1,
        )
        for sub_vertex, part in zip(selected, local):
            parts[vertices[sub_vertex]] = rack_servers[part]
    return KeyAssignment(parts=parts, num_parts=len(servers))


def assignment_quality(
    keygraph: KeyGraph,
    assignment: KeyAssignment,
    racks: Sequence[Sequence[int]],
) -> HierarchicalQuality:
    """Fraction of pair traffic that is server-local / rack-local /
    core-crossing under ``assignment``."""
    rack_of: Dict[int, int] = {}
    for rack_index, rack_servers in enumerate(racks):
        for server in rack_servers:
            rack_of[server] = rack_index

    same_server = same_rack = cross_rack = 0.0
    total = 0.0
    for u, v, weight in keygraph.edges():
        server_u = assignment.parts.get(u)
        server_v = assignment.parts.get(v)
        total += weight
        if server_u is None or server_v is None:
            cross_rack += weight
        elif server_u == server_v:
            same_server += weight
        elif rack_of[server_u] == rack_of[server_v]:
            same_rack += weight
        else:
            cross_rack += weight
    if total == 0.0:
        return HierarchicalQuality(1.0, 0.0, 0.0)
    return HierarchicalQuality(
        same_server / total, same_rack / total, cross_rack / total
    )
