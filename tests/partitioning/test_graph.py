"""Unit tests for the partitioner's graph structure."""

import pytest

from repro.errors import PartitioningError
from repro.partitioning import Graph


def test_empty_graph():
    graph = Graph(0)
    assert graph.num_vertices == 0
    assert graph.num_edges == 0
    assert graph.total_vertex_weight == 0.0
    assert list(graph.edges()) == []


def test_negative_vertex_count_rejected():
    with pytest.raises(PartitioningError):
        Graph(-1)


def test_vertex_weights_default_to_one():
    graph = Graph(3)
    assert graph.vertex_weights() == [1.0, 1.0, 1.0]
    assert graph.total_vertex_weight == 3.0


def test_vertex_weights_validation():
    with pytest.raises(PartitioningError):
        Graph(2, [1.0])
    with pytest.raises(PartitioningError):
        Graph(2, [1.0, -0.5])


def test_add_edge_accumulates_parallel_edges():
    graph = Graph(3)
    graph.add_edge(0, 1, 2.0)
    graph.add_edge(1, 0, 3.0)
    assert graph.edge_weight(0, 1) == 5.0
    assert graph.edge_weight(1, 0) == 5.0
    assert graph.num_edges == 1
    assert graph.total_edge_weight == 5.0


def test_self_loop_rejected():
    graph = Graph(2)
    with pytest.raises(PartitioningError):
        graph.add_edge(1, 1)


def test_nonpositive_edge_weight_rejected():
    graph = Graph(2)
    with pytest.raises(PartitioningError):
        graph.add_edge(0, 1, 0.0)
    with pytest.raises(PartitioningError):
        graph.add_edge(0, 1, -1.0)


def test_out_of_range_vertex_rejected():
    graph = Graph(2)
    with pytest.raises(PartitioningError):
        graph.add_edge(0, 2)
    with pytest.raises(PartitioningError):
        graph.vertex_weight(5)


def test_neighbors_and_degree():
    graph = Graph.from_edges(4, [(0, 1, 1.0), (0, 2, 2.0)])
    assert graph.neighbors(0) == {1: 1.0, 2: 2.0}
    assert graph.degree(0) == 2
    assert graph.degree(3) == 0
    assert graph.adjacency_weight(0) == 3.0


def test_edges_iterates_each_edge_once():
    graph = Graph.from_edges(3, [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)])
    edges = sorted(graph.edges())
    assert edges == [(0, 1, 1.0), (0, 2, 3.0), (1, 2, 2.0)]


def test_set_vertex_weight():
    graph = Graph(2)
    graph.set_vertex_weight(0, 5.0)
    assert graph.vertex_weight(0) == 5.0
    with pytest.raises(PartitioningError):
        graph.set_vertex_weight(0, -1.0)


def test_subgraph_preserves_weights_and_edges():
    graph = Graph.from_edges(
        5,
        [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (3, 4, 4.0), (0, 4, 5.0)],
        vertex_weights=[10, 20, 30, 40, 50],
    )
    sub, selected = graph.subgraph([1, 2, 4])
    assert selected == [1, 2, 4]
    assert sub.num_vertices == 3
    assert sub.vertex_weights() == [20.0, 30.0, 50.0]
    # Only the (1,2) edge survives; (0,1), (0,4), (2,3), (3,4) leave.
    assert sub.num_edges == 1
    assert sub.edge_weight(0, 1) == 2.0


def test_subgraph_duplicate_selection_rejected():
    graph = Graph(3)
    with pytest.raises(PartitioningError):
        graph.subgraph([0, 0])
