"""Explicit routing tables: key → destination instance.

A routing table overrides hash-based fields grouping for the keys it
contains; unknown keys fall back to the hash policy (Section 3.3:
"When a key is not present in the routing table, it falls back to the
standard hash-based routing policy").

Beyond the paper, a table may carry a *split set*: a small map from
heavy-hitter keys to a tuple of destination instances. A hybrid router
(``repro.engine.grouping.HybridTableRouter``) spreads a split key's
tuples across its members instead of pinning them to one instance —
the skew regime the paper's pure table routing cannot balance. The
split set travels inside the table payload on purpose: every rule that
already governs tables (PROPAGATE swaps, rescale's atomic resize,
route-cache invalidation, routing-agreement checks) then governs the
split set for free.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Dict, Hashable, Iterator, Mapping, Optional, Set, Tuple

from repro.engine.grouping import stable_hash

#: split-set wire format: key → ordered tuple of destination instances
SplitSet = Dict[Hashable, Tuple[int, ...]]

#: seeds separating the fingerprint domains (entries vs split entries)
_ENTRY_FP_SEED = 0x7A3C9F11
_SPLIT_FP_SEED = 0x51C6E40D


def entry_fingerprint(key: Hashable, owner: int) -> int:
    """64-bit fingerprint of one ``key → owner`` mapping entry.

    Keys are canonicalized through ``repr`` — the same form
    :func:`~repro.engine.grouping.stable_hash` routes on — so two
    tables agree on an entry's fingerprint iff they agree on the entry.
    """
    return stable_hash((repr(key), owner), _ENTRY_FP_SEED)


def split_fingerprint(key: Hashable, members: Tuple[int, ...]) -> int:
    """64-bit fingerprint of one split-set entry."""
    return stable_hash((repr(key), tuple(members)), _SPLIT_FP_SEED)


def table_fingerprint(table) -> int:
    """Order-independent fingerprint of a table, 0 for ``None``/empty.

    ``None`` (a router that never received a table) and the empty table
    fingerprint identically on purpose: both route every key through
    the hash fallback, so a delta diffed against "empty" applies to
    either base (see :class:`repro.core.table_delta.TableDelta`).
    """
    if table is None:
        return 0
    return table.fingerprint()


class RoutingTable:
    """Immutable-by-convention mapping from key to instance index,
    plus an optional heavy-hitter split set."""

    __slots__ = ("_mapping", "_splits", "_fingerprint")

    def __init__(
        self,
        mapping: Optional[Dict[Hashable, int]] = None,
        splits: Optional[Mapping[Hashable, Tuple[int, ...]]] = None,
    ) -> None:
        self._mapping: Dict[Hashable, int] = dict(mapping or {})
        self._splits: SplitSet = {
            key: tuple(members) for key, members in (splits or {}).items()
        }
        self._fingerprint: Optional[int] = None

    @classmethod
    def empty(cls) -> "RoutingTable":
        return cls()

    # ------------------------------------------------------------------
    # Lookup API (consumed by the engine's TableRouter)
    # ------------------------------------------------------------------

    def lookup(self, key: Hashable) -> Optional[int]:
        """Destination instance for ``key``, or None (hash fallback).

        Split keys keep their single-owner entry here (when they have
        one): non-hybrid consumers — ``RescaleSpec.owner_of``, state
        evacuation — deliberately see the consolidated owner.
        """
        return self._mapping.get(key)

    def split(self, key: Hashable) -> Optional[Tuple[int, ...]]:
        """The split members of ``key``, or None when it is not split."""
        return self._splits.get(key)

    @property
    def splits(self) -> Mapping[Hashable, Tuple[int, ...]]:
        """Read-only view of the split set: key → member instances."""
        return MappingProxyType(self._splits)

    @property
    def num_split_keys(self) -> int:
        return len(self._splits)

    def split_keys(self) -> Iterator[Hashable]:
        return iter(self._splits)

    def with_splits(
        self, splits: Optional[Mapping[Hashable, Tuple[int, ...]]]
    ) -> "RoutingTable":
        """A copy of this table carrying ``splits`` as its split set."""
        return RoutingTable(self._mapping, splits)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._mapping

    def __len__(self) -> int:
        return len(self._mapping)

    def keys(self) -> Iterator[Hashable]:
        return iter(self._mapping)

    def items(self) -> Iterator[Tuple[Hashable, int]]:
        return iter(self._mapping.items())

    @property
    def mapping(self) -> Mapping[Hashable, int]:
        """Read-only view of the key → owner mapping (no copy)."""
        return MappingProxyType(self._mapping)

    def as_dict(self) -> Dict[Hashable, int]:
        """A mutable copy of the mapping; prefer :attr:`mapping` when a
        read-only view is enough."""
        return dict(self._mapping)

    def fingerprint(self) -> int:
        """Order-independent 64-bit XOR fingerprint over entries and
        split entries, cached after first computation. Two tables with
        equal fingerprints (and equal logical length) are treated as
        equal content — the contract :class:`CompactRoutingTable` and
        :class:`~repro.core.table_delta.TableDelta` base checks rely
        on. Empty tables fingerprint to 0 (matching ``None``)."""
        if self._fingerprint is None:
            acc = 0
            for key, owner in self._mapping.items():
                acc ^= entry_fingerprint(key, owner)
            for key, members in self._splits.items():
                acc ^= split_fingerprint(key, members)
            self._fingerprint = acc
        return self._fingerprint

    def max_instance(self) -> Optional[int]:
        """Highest instance index any entry (or split member) routes
        to, or None for an empty table. A table is valid for width
        ``n`` iff ``max_instance() is None or max_instance() < n`` —
        rescale invariant checks audit exactly this."""
        top: Optional[int] = None
        if self._mapping:
            top = max(self._mapping.values())
        for members in self._splits.values():
            if members:
                widest = max(members)
                top = widest if top is None else max(top, widest)
        return top

    # ------------------------------------------------------------------
    # Diffing (used to build migration lists)
    # ------------------------------------------------------------------

    def moved_keys(
        self, new: "RoutingTable", fallback
    ) -> Dict[Hashable, Tuple[int, int]]:
        """Keys whose single owner changes between ``self`` and ``new``.

        ``fallback(key) -> int`` resolves the owner of keys absent from
        a table (the hash policy); it is invoked lazily, at most once
        per key, and never for a key both tables contain. Returns
        ``{key: (old, new)}`` over the union of both tables' keys.

        Keys split in *either* table are excluded: a key split in
        ``new`` must not migrate (its partial state stays put and new
        traffic spreads over the members), and a key split only in
        ``self`` consolidates from several holders at once — see
        :meth:`split_consolidations`.
        """
        union: Set[Hashable] = set(self._mapping) | set(new._mapping)
        moved: Dict[Hashable, Tuple[int, int]] = {}
        for key in union:
            if key in self._splits or key in new._splits:
                continue
            old_owner = self._mapping.get(key)
            new_owner = new._mapping.get(key)
            if old_owner is None or new_owner is None:
                if old_owner is None and new_owner is None:
                    continue  # both resolve to the same fallback owner
                resolved = fallback(key)
                if old_owner is None:
                    old_owner = resolved
                else:
                    new_owner = resolved
            if old_owner != new_owner:
                moved[key] = (old_owner, new_owner)
        return moved

    def split_consolidations(
        self, new: "RoutingTable", fallback
    ) -> Dict[Hashable, Tuple[Tuple[int, ...], int]]:
        """Keys split in ``self`` but not in ``new``: each must gather
        its partial state from every old member onto its new single
        owner. Returns ``{key: (old_members, new_owner)}``."""
        consolidations: Dict[Hashable, Tuple[Tuple[int, ...], int]] = {}
        for key, members in self._splits.items():
            if key in new._splits:
                continue
            new_owner = new._mapping.get(key)
            if new_owner is None:
                new_owner = fallback(key)
            consolidations[key] = (members, new_owner)
        return consolidations

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RoutingTable):
            # NotImplemented (not False) so that foreign table types —
            # CompactRoutingTable — get the reflected comparison.
            return NotImplemented
        return (
            other._mapping == self._mapping
            and other._splits == self._splits
        )

    def __repr__(self) -> str:
        if self._splits:
            return (
                f"RoutingTable({len(self._mapping)} keys, "
                f"{len(self._splits)} split)"
            )
        return f"RoutingTable({len(self._mapping)} keys)"
