"""Fiduccia–Mattheyses (FM) refinement for bisections.

FM performs passes of single-vertex moves. Within a pass every vertex
moves at most once (it is *locked* afterwards); moves are chosen greedily
by cut gain among moves that respect — or improve — the balance
constraint. The pass keeps the move prefix achieving the smallest cut and
rolls the rest back, which lets FM climb out of local minima that pure
greedy descent cannot.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence, Tuple

from repro.partitioning.graph import Graph
from repro.partitioning.quality import edge_cut

_EPSILON = 1e-9


def _gains(graph: Graph, parts: List[int]) -> List[float]:
    """gain[v] = cut decrease if v switches sides = external - internal."""
    gains = [0.0] * graph.num_vertices
    for u, v, weight in graph.edges():
        if parts[u] != parts[v]:
            gains[u] += weight
            gains[v] += weight
        else:
            gains[u] -= weight
            gains[v] -= weight
    return gains


def fm_refine(
    graph: Graph,
    parts: List[int],
    max_weights: Sequence[float],
    max_passes: int = 8,
) -> float:
    """Refine a 0/1 partition in place; return the final edge cut.

    Parameters
    ----------
    parts:
        Partition vector with entries in {0, 1}; modified in place.
    max_weights:
        Balance caps per side. A move into side ``d`` is admissible when
        the new weight of ``d`` stays under ``max_weights[d]``, or when
        the source side currently violates its own cap and the move
        shrinks the total violation.
    max_passes:
        Upper bound on FM passes; iteration stops earlier when a pass
        yields no improvement.
    """
    n = graph.num_vertices
    if n == 0:
        return 0.0

    weights = [0.0, 0.0]
    for v, part in enumerate(parts):
        weights[part] += graph.vertex_weight(v)
    cut = edge_cut(graph, parts)

    for _ in range(max_passes):
        improved = _fm_pass(graph, parts, weights, max_weights, cut)
        if improved is None:
            break
        new_cut, balance_gain = improved
        if new_cut >= cut - _EPSILON and not balance_gain:
            cut = min(cut, new_cut)
            break
        cut = new_cut
    return cut


def _fm_pass(
    graph: Graph,
    parts: List[int],
    weights: List[float],
    max_weights: Sequence[float],
    start_cut: float,
):
    """One FM pass. Returns ``(cut, balance_improved)`` or None if no
    move was possible. ``parts`` and ``weights`` are updated in place."""
    n = graph.num_vertices
    gains = _gains(graph, parts)
    locked = [False] * n
    # Intermediate states may exceed the caps by one vertex's weight;
    # the best-prefix rollback below guarantees the *returned* state is
    # never worse than the starting one on (violation, cut). Without
    # this slack, no swap could ever start from a tightly packed side.
    slack = max((graph.vertex_weight(v) for v in range(n)), default=0.0)
    heap: List[Tuple[float, int, int]] = []
    counter = 0
    for v in range(n):
        heapq.heappush(heap, (-gains[v], counter, v))
        counter += 1

    def violation(w0: float, w1: float) -> float:
        return max(0.0, w0 - max_weights[0]) + max(0.0, w1 - max_weights[1])

    start_violation = violation(weights[0], weights[1])
    moves: List[int] = []
    cut = start_cut
    best_cut = start_cut
    best_violation = start_violation
    best_prefix = 0

    while heap:
        # Pop the best *valid and admissible* move.
        stash: List[Tuple[float, int, int]] = []
        chosen = -1
        while heap:
            negative_gain, seq, v = heapq.heappop(heap)
            if locked[v] or gains[v] != -negative_gain:
                continue
            src = parts[v]
            dst = 1 - src
            vertex_weight = graph.vertex_weight(v)
            fits = (
                weights[dst] + vertex_weight
                <= max_weights[dst] + slack + _EPSILON
            )
            old_violation = violation(weights[0], weights[1])
            new_w = list(weights)
            new_w[src] -= vertex_weight
            new_w[dst] += vertex_weight
            shrinks = violation(new_w[0], new_w[1]) < old_violation - _EPSILON
            if fits or shrinks:
                chosen = v
                break
            stash.append((negative_gain, seq, v))
        for entry in stash:
            heapq.heappush(heap, entry)
        if chosen == -1:
            break

        v = chosen
        src = parts[v]
        dst = 1 - src
        vertex_weight = graph.vertex_weight(v)
        cut -= gains[v]
        weights[src] -= vertex_weight
        weights[dst] += vertex_weight
        parts[v] = dst
        locked[v] = True
        moves.append(v)
        for neighbor, weight in graph.neighbors(v).items():
            if locked[neighbor]:
                continue
            if parts[neighbor] == src:
                gains[neighbor] += 2.0 * weight
            else:
                gains[neighbor] -= 2.0 * weight
            heapq.heappush(heap, (-gains[neighbor], counter, neighbor))
            counter += 1

        current_violation = violation(weights[0], weights[1])
        if (current_violation, cut) < (best_violation, best_cut):
            best_violation = current_violation
            best_cut = cut
            best_prefix = len(moves)

    if not moves:
        return None

    # Roll back moves after the best prefix.
    for v in moves[best_prefix:]:
        dst = parts[v]
        src = 1 - dst
        vertex_weight = graph.vertex_weight(v)
        weights[dst] -= vertex_weight
        weights[src] += vertex_weight
        parts[v] = src

    balance_improved = best_violation < start_violation - _EPSILON
    return best_cut, balance_improved
