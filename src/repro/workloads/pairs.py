"""A parameterized correlated pair-stream workload for the fuzz harness.

Where :mod:`~repro.workloads.synthetic` reproduces the paper's Section
4.2 experiment (key space == parallelism), this generator exists to
*stress* the control plane: a larger Zipfian key population, a tunable
correlation between the two fields, and integer keys throughout so
episodes hash identically across processes (replayability).

Tuples are ``(i, j)`` with ``i`` Zipf-distributed over ``0..keys-1``
and ``j`` either a fixed partner of ``i`` (probability ``correlation``
— giving the key graph real structure for the partitioner to find) or
an independent Zipf draw. The topology mirrors the evaluation app:
``S -> A (table on f0) -> B (table on f1)``, both POIs counting their
field, with swappable tables for manager-driven runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.engine import (
    HybridTableFieldsGrouping,
    TableFieldsGrouping,
    Topology,
    TopologyBuilder,
)
from repro.engine.operators import CountBolt, IteratorSpout
from repro.errors import WorkloadError
from repro.workloads.zipf import ZipfSampler, derived_rng


@dataclass(frozen=True)
class PairsConfig:
    """Parameters of the fuzz pair stream."""

    parallelism: int = 2
    #: key population per field
    keys: int = 32
    #: Zipf skew of both fields
    exponent: float = 1.0
    #: probability that ``j`` is ``i``'s fixed partner key
    correlation: float = 0.7
    seed: int = 0
    tuples_per_instance: int = 1000

    def __post_init__(self) -> None:
        if self.parallelism < 1:
            raise WorkloadError(
                f"parallelism must be >= 1, got {self.parallelism}"
            )
        if self.keys < 1:
            raise WorkloadError(f"keys must be >= 1, got {self.keys}")
        if not 0.0 <= self.correlation <= 1.0:
            raise WorkloadError(
                f"correlation must be in [0, 1], got {self.correlation}"
            )
        if self.tuples_per_instance < 0:
            raise WorkloadError("tuples_per_instance must be >= 0")

    def partner(self, key: int) -> int:
        """The fixed partner of ``key`` (a full-cycle affine map, so
        popular keys pair with less popular ones and the key graph has
        off-diagonal structure)."""
        return (key * 31 + 7) % self.keys


class PairsWorkload:
    """Builds the fuzz topology and its per-instance tuple streams."""

    def __init__(self, config: PairsConfig) -> None:
        self.config = config

    def tuples_for_instance(self, instance: int) -> Iterator[Tuple]:
        config = self.config
        rng = derived_rng(config.seed, "pairs", instance)
        zipf = ZipfSampler(config.keys, config.exponent, rng=rng)
        for _ in range(config.tuples_per_instance):
            i = zipf.sample()
            if rng.random() < config.correlation:
                j = config.partner(i)
            else:
                j = zipf.sample()
            yield (i, j)

    def online_topology(self, hybrid: bool = False) -> Topology:
        """``S -> A (table on f0) -> B (table on f1)`` with swappable
        routing tables, for manager-driven fuzz episodes. With
        ``hybrid`` the streams use ``HybridTableFieldsGrouping`` so a
        manager configured with a ``HybridConfig`` can split heavy
        hitters (identical routing until a split set ships)."""
        n = self.config.parallelism
        grouping = HybridTableFieldsGrouping if hybrid else TableFieldsGrouping
        builder = TopologyBuilder()
        builder.spout(
            "S",
            lambda: IteratorSpout(
                lambda ctx: self.tuples_for_instance(ctx.instance_index)
            ),
            parallelism=n,
        )
        builder.bolt(
            "A",
            lambda: CountBolt(0, forward=True),
            parallelism=n,
            inputs={"S": grouping(0)},
        )
        builder.bolt(
            "B",
            lambda: CountBolt(1, forward=False),
            parallelism=n,
            inputs={"A": grouping(1)},
        )
        return builder.build()

    # ------------------------------------------------------------------
    # Ground truth (the conservation invariant's oracle)
    # ------------------------------------------------------------------

    def expected_counts(self) -> Tuple[dict, dict]:
        """Regenerate the full stream and tally the exact per-key
        counts each POI should hold at quiescence: ``(a_counts,
        b_counts)`` for fields 0 and 1 respectively."""
        a: dict = {}
        b: dict = {}
        for instance in range(self.config.parallelism):
            for i, j in self.tuples_for_instance(instance):
                a[i] = a.get(i, 0) + 1
                b[j] = b.get(j, 0) + 1
        return a, b
