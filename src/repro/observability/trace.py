"""Structured tracing: begin/end spans with parent ids.

A *span* is a named interval of simulated time; spans nest through
``parent`` ids, forming per-round trees like::

    reconfiguration_round (round=3)
    ├── STATS_COLLECT
    ├── PARTITION
    ├── PROPAGATE
    └── MIGRATE

The manager emits exactly that tree (see ``core.manager``); anything
else may open spans too. Point occurrences (COMMIT, ABORT, veto) are
*events* attached to a span. Records go to the telemetry sink as JSON
Lines and are reloaded by :mod:`repro.analysis.telemetry`.

Timestamps are the simulator clock — a ``clock()`` callable supplied at
construction — so traces align exactly with snapshots and metrics.

With the default :data:`~repro.observability.sink.NULL_SINK` the tracer
still hands out real span ids (cheap: one integer) but emits nothing.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.observability.sink import NULL_SINK, TelemetrySink


class Span:
    """A live span handle: ``end()`` it exactly once."""

    __slots__ = ("tracer", "span_id", "parent_id", "name", "start", "ended")

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start: float,
    ) -> None:
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.ended = False

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point occurrence inside this span."""
        self.tracer._emit(
            {"type": "event", "span": self.span_id, "name": name, **attrs}
        )

    def end(self, **attrs: Any) -> None:
        """Close the span (idempotent; duplicates are ignored so an
        abort path may end a span the happy path would also end)."""
        if self.ended:
            return
        self.ended = True
        self.tracer._emit(
            {
                "type": "span_end",
                "span": self.span_id,
                "name": self.name,
                **attrs,
            }
        )

    def __repr__(self) -> str:
        state = "ended" if self.ended else "open"
        return f"Span({self.name!r}, id={self.span_id}, {state})"


class Tracer:
    """Emits span/event records, stamped with the simulated clock."""

    def __init__(
        self,
        clock: Callable[[], float],
        sink: TelemetrySink = NULL_SINK,
    ) -> None:
        self._clock = clock
        self._sink = sink
        self._next_id = 1

    @property
    def enabled(self) -> bool:
        return self._sink.enabled

    def begin(
        self, name: str, parent: Optional[Span] = None, **attrs: Any
    ) -> Span:
        span_id = self._next_id
        self._next_id += 1
        span = Span(
            self,
            span_id,
            parent.span_id if parent is not None else None,
            name,
            self._clock(),
        )
        self._emit(
            {
                "type": "span_begin",
                "span": span_id,
                "parent": span.parent_id,
                "name": name,
                **attrs,
            }
        )
        return span

    def _emit(self, record: Dict[str, Any]) -> None:
        if self._sink.enabled:
            record["ts"] = self._clock()
            self._sink.emit(record)
