"""Multilevel bisection: coarsen, partition, uncoarsen + refine."""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.partitioning.coarsen import coarsen_until
from repro.partitioning.graph import Graph
from repro.partitioning.initial import greedy_bisection
from repro.partitioning.refine import fm_refine

#: Stop coarsening below this many vertices; the coarsest graph is
#: partitioned directly by greedy growing.
COARSE_THRESHOLD = 60


def multilevel_bisection(
    graph: Graph,
    target0: float,
    max_weights: Sequence[float],
    rng: random.Random,
    coarse_threshold: int = COARSE_THRESHOLD,
    initial_attempts: int = 8,
    refine_passes: int = 8,
) -> List[int]:
    """Bisect ``graph`` targeting weight ``target0`` for part 0.

    Returns the partition vector (entries in {0, 1}).
    """
    if graph.num_vertices == 0:
        return []
    if graph.num_vertices == 1:
        return [0]

    coarsest, levels = coarsen_until(graph, rng, min_vertices=coarse_threshold)
    parts = greedy_bisection(
        coarsest, target0, max_weights, rng, attempts=initial_attempts
    )
    fm_refine(coarsest, parts, max_weights, max_passes=refine_passes)
    for level in reversed(levels):
        parts = level.project(parts)
        fm_refine(level.fine, parts, max_weights, max_passes=refine_passes)
    return parts
