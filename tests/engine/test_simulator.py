"""Tests for the discrete-event simulator core."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Simulator
from repro.errors import SimulationError


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0
    assert sim.pending_events == 0


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, order.append, "c")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(2.0, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 3.0


def test_ties_break_by_insertion_order():
    sim = Simulator()
    order = []
    for label in "abcde":
        sim.schedule(1.0, order.append, label)
    sim.run()
    assert order == list("abcde")


def test_cannot_schedule_in_the_past():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(4.0, lambda: None)


def test_cancel():
    sim = Simulator()
    ran = []
    event = sim.schedule(1.0, ran.append, "x")
    event.cancel()
    sim.schedule(2.0, ran.append, "y")
    sim.run()
    assert ran == ["y"]


def test_run_until_advances_clock_exactly():
    sim = Simulator()
    ran = []
    sim.schedule(1.0, ran.append, 1)
    sim.schedule(5.0, ran.append, 5)
    executed = sim.run(until=3.0)
    assert executed == 1
    assert ran == [1]
    assert sim.now == 3.0
    sim.run()
    assert ran == [1, 5]


def test_run_max_events():
    sim = Simulator()
    for i in range(10):
        sim.schedule(float(i), lambda: None)
    assert sim.run(max_events=4) == 4
    assert sim.pending_events == 6


def test_step():
    sim = Simulator()
    ran = []
    sim.schedule(1.0, ran.append, 1)
    assert sim.step() is True
    assert ran == [1]
    assert sim.step() is False


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    ran = []

    def chain(depth):
        ran.append(depth)
        if depth < 3:
            sim.schedule(1.0, chain, depth + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert ran == [0, 1, 2, 3]
    assert sim.now == 3.0


@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=50))
@settings(max_examples=100, deadline=None)
def test_clock_is_monotone(delays):
    sim = Simulator()
    times = []
    for delay in delays:
        sim.schedule(delay, lambda: times.append(sim.now))
    sim.run()
    assert times == sorted(times)
    assert len(times) == len(delays)


def test_daemon_events_do_not_keep_a_drain_alive():
    """A self-rescheduling daemon probe must not make run() (no until)
    run forever — it stops once only daemon events remain."""
    sim = Simulator()
    ticks = []

    def probe():
        ticks.append(sim.now)
        sim.schedule(1.0, probe, daemon=True)

    sim.schedule(1.0, probe, daemon=True)
    sim.schedule(3.5, lambda: None)  # the only real work
    sim.run()
    assert sim.now == 3.5
    assert ticks == [1.0, 2.0, 3.0]


def test_daemon_events_run_within_a_bounded_run():
    sim = Simulator()
    ticks = []
    sim.schedule(1.0, lambda: ticks.append("d"), daemon=True)
    sim.run(until=2.0)
    assert ticks == ["d"]


def test_cancelled_event_does_not_block_daemon_drain():
    sim = Simulator()
    event = sim.schedule(5.0, lambda: None)
    sim.schedule(1.0, lambda: None, daemon=True)
    event.cancel()
    sim.run()
    assert sim.now <= 5.0


def test_pending_events_counts_eagerly_on_cancel():
    """pending_events is O(1) (live counters, not a heap scan) and a
    cancel is reflected immediately, before the lazy heap pop."""
    sim = Simulator()
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
    assert sim.pending_events == 5
    events[2].cancel()
    events[4].cancel()
    assert sim.pending_events == 3
    events[2].cancel()  # idempotent: counted once
    assert sim.pending_events == 3
    sim.run()
    assert sim.pending_events == 0


def test_cancel_after_fire_is_a_noop():
    """Callers may hold on to a timer and cancel it after it fired
    (the acker and manager do); a late cancel must not corrupt the
    pending-event counters."""
    sim = Simulator()
    fired = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run(until=1.5)
    assert sim.pending_events == 1
    fired.cancel()
    assert sim.pending_events == 1
    sim.run()
    assert sim.pending_events == 0


def test_pending_events_matches_heap_during_mixed_run():
    """Counter consistency under interleaved schedule/cancel/step: the
    O(1) count always equals a brute-force scan of the heap."""
    import random

    rng = random.Random(11)
    sim = Simulator()
    live = []
    for round_no in range(40):
        for _ in range(rng.randrange(4)):
            live.append(sim.schedule(rng.random() * 5.0, lambda: None))
        if live and rng.random() < 0.5:
            live.pop(rng.randrange(len(live))).cancel()
        sim.step()
        brute = sum(1 for _, _, e in sim._heap if not e.cancelled)
        assert sim.pending_events == brute
