"""Deterministic simulation testing (DST) for the reconfiguration
protocol.

Algorithm 1's correctness claims — tables pushed in topological order,
reassigned-key state migrated exactly once, tuples for in-flight keys
buffered and never lost — hold across far more interleavings than
hand-written scenario tests can cover. This package turns the
simulator into a correctness tool with three layers:

- :mod:`~repro.testing.invariants` — machine-checked invariants armed
  on a live deployment: state conservation, exactly-once migration per
  (round, key), routing-table agreement across upstream POIs, no
  held-key buffer leaks after round end, partition balance ≤ α.
- :mod:`~repro.testing.episode` + :mod:`~repro.testing.fuzz` — a
  seeded fuzz driver (``python -m repro.testing.fuzz``): every episode
  (topology shape, workload, fault plan) derives from one seed through
  the :class:`~repro.testing.rng.RngTree`; violations write a repro
  bundle.
- :mod:`~repro.testing.equivalence` — cross-backend equivalence: the
  vectorized fast path (DESIGN.md §15) must match the DES reference on
  per-key totals, routing decisions and locality/balance within
  tolerance; same-seed reference fingerprints must stay byte-identical
  to a direct ``deploy``/``run``.
- :mod:`~repro.testing.bundle` — replayable failures: a bundle embeds
  the seed, config and exact fault plan; replaying it reproduces the
  identical event sequence, certified by the simulator's event
  fingerprint (:meth:`repro.engine.simulator.Simulator.enable_fingerprint`).

The invariant catalog and bundle format are documented in DESIGN.md
§9; the CI fuzz gate runs 50 seeds per PR.
"""

from repro.testing.bundle import (
    BUNDLE_SCHEMA,
    ReplayOutcome,
    bundle_data,
    load_bundle,
    replay_bundle,
    write_bundle,
)
from repro.testing.equivalence import (
    EquivalenceReport,
    compare_backends,
    reference_fingerprint_unchanged,
    run_equivalence,
)
from repro.testing.episode import (
    INJECTIONS,
    EpisodeConfig,
    EpisodeResult,
    generate_config,
    run_episode,
)
from repro.testing.invariants import (
    InvariantSuite,
    Violation,
    balance_bound,
)
from repro.testing.rng import RngTree

__all__ = [
    "RngTree",
    "InvariantSuite",
    "Violation",
    "balance_bound",
    "EquivalenceReport",
    "compare_backends",
    "run_equivalence",
    "reference_fingerprint_unchanged",
    "EpisodeConfig",
    "EpisodeResult",
    "generate_config",
    "run_episode",
    "INJECTIONS",
    "BUNDLE_SCHEMA",
    "bundle_data",
    "write_bundle",
    "load_bundle",
    "replay_bundle",
    "ReplayOutcome",
]
