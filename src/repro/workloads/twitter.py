"""A generative Twitter-like workload (Section 4.3 substitute).

The paper's crawl (Oct 2015 – May 2016, 173 M location→hashtag pairs)
is proprietary. This generator reproduces the properties the
online-vs-offline experiments depend on:

- **skew** — Zipfian locations and hashtags (moderate exponents: the
  real dataset's locations go down to cities and points of interest,
  so no single key dominates and hash load balance sits near 1.1);
- **stable correlations** — most hashtags have a fixed "home" location
  (captured equally well by offline and online analysis);
- **transient correlations** — a fraction of hashtags re-draw their
  home every few weeks (an *era*), so trends persist long enough for
  weekly online reconfiguration to exploit them while a week-0 offline
  analysis decays; flash events (a tag spiking in one location for a
  couple of days, like #nevertrump in Fig. 10) sit on top;
- **novelty** — new hashtag *cohorts* are born every week and live for
  several weeks with decaying traffic. Online analysis catches a
  cohort from its second week; offline never does. This is what caps
  achieved locality below the partitioner's prediction (Section 4.3).

All output is deterministic given the config seed; weeks are generated
independently and never stored.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.errors import WorkloadError
from repro.workloads.zipf import WeightedSampler, ZipfSampler, derived_rng

#: One record: (absolute day, location, hashtag).
Record = Tuple[int, str, str]


@dataclass(frozen=True)
class FlashEvent:
    """A hashtag spiking in one location for a few days."""

    tag: str
    location: str
    start_day: int  # absolute day index
    duration_days: int

    @property
    def days(self) -> range:
        return range(self.start_day, self.start_day + self.duration_days)


@dataclass(frozen=True)
class TwitterConfig:
    num_locations: int = 500
    base_hashtags: int = 5000
    tweets_per_week: int = 50000
    location_exponent: float = 0.5
    hashtag_exponent: float = 0.7
    #: Log-normal σ of slow popularity drift (0 disables); this is what
    #: makes tables computed from past data lose their balance over
    #: time (Fig. 11b: "some hashtags and locations become more
    #: frequent in the following weeks").
    popularity_drift_sigma: float = 1.0
    #: Weeks over which a key's popularity multiplier decorrelates.
    drift_period_weeks: int = 4
    #: P(regular tweet is located at its hashtag's home location).
    affinity: float = 0.75
    #: Fraction of hashtags whose home location changes every era.
    volatile_fraction: float = 0.4
    #: Era length: a volatile tag keeps one home this many weeks.
    volatility_period_weeks: int = 3
    #: Steady-state share of traffic using recently-born hashtags.
    new_tag_share: float = 0.2
    #: Population of each weekly cohort of new hashtags.
    new_hashtags_per_week: int = 400
    #: Weeks a cohort stays active after birth.
    new_tag_lifetime_weeks: int = 6
    #: Per-week decay of a cohort's traffic share.
    cohort_decay: float = 0.7
    #: Flash events per week (the first one reuses ``flash_tag``).
    flash_events_per_week: int = 2
    #: Share of each week's tweets belonging to flash events.
    flash_share: float = 0.05
    #: The recurring flash hashtag (the Fig. 10 protagonist).
    flash_tag: str = "#flash"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_locations < 1 or self.base_hashtags < 1:
            raise WorkloadError("populations must be >= 1")
        for name in ("affinity", "volatile_fraction", "new_tag_share",
                     "flash_share", "cohort_decay"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise WorkloadError(f"{name} must be in [0, 1], got {value}")
        if self.volatility_period_weeks < 1:
            raise WorkloadError("volatility_period_weeks must be >= 1")
        if self.new_tag_lifetime_weeks < 1:
            raise WorkloadError("new_tag_lifetime_weeks must be >= 1")
        if self.flash_share + self.new_tag_share > 0.9:
            raise WorkloadError(
                "flash_share + new_tag_share leave too little regular "
                "traffic"
            )


class TwitterWorkload:
    """Deterministic week-by-week (location, hashtag) generator."""

    def __init__(self, config: TwitterConfig = TwitterConfig()) -> None:
        self.config = config
        self._locations = ZipfSampler(
            config.num_locations, config.location_exponent
        )
        self._hashtags = ZipfSampler(
            config.base_hashtags, config.hashtag_exponent
        )
        self._cohort_tags = ZipfSampler(
            config.new_hashtags_per_week, config.hashtag_exponent
        )
        self._sampler_cache: Dict[Tuple[str, int], WeightedSampler] = {}

    # ------------------------------------------------------------------
    # Popularity drift
    # ------------------------------------------------------------------

    def _drift_factor(self, kind: str, rank: int, week: int) -> float:
        """Smooth per-key popularity multiplier over time.

        A key's log-popularity offset interpolates between independent
        Gaussian draws one drift period apart, with a per-key phase so
        keys decorrelate at different times.
        """
        config = self.config
        sigma = config.popularity_drift_sigma
        if sigma <= 0.0:
            return 1.0
        period = config.drift_period_weeks
        phase = derived_rng(config.seed, "phase", kind, rank).random()
        t = week / period + phase
        era = math.floor(t)
        f = t - era
        z0 = derived_rng(config.seed, "drift", kind, rank, era).gauss(0, 1)
        z1 = derived_rng(config.seed, "drift", kind, rank, era + 1).gauss(
            0, 1
        )
        return math.exp(sigma * ((1.0 - f) * z0 + f * z1))

    def _weekly_sampler(self, kind: str, week: int) -> WeightedSampler:
        """Zipf × drift sampler for ``kind`` ("loc" or "tag") at
        ``week``; cached because building the CDF is O(population)."""
        cached = self._sampler_cache.get((kind, week))
        if cached is not None:
            return cached
        if kind == "loc":
            base = self._locations
        else:
            base = self._hashtags
        weights = [
            base.pmf(rank) * self._drift_factor(kind, rank, week)
            for rank in range(base.n)
        ]
        sampler = WeightedSampler(weights)
        if len(self._sampler_cache) > 16:
            self._sampler_cache.clear()
        self._sampler_cache[(kind, week)] = sampler
        return sampler

    # ------------------------------------------------------------------
    # Naming and correlation structure
    # ------------------------------------------------------------------

    def location_name(self, rank: int) -> str:
        return f"loc{rank}"

    def tag_name(self, rank: int) -> str:
        return f"#t{rank}"

    def _is_volatile(self, tag: str) -> bool:
        rng = derived_rng(self.config.seed, "volatile", tag)
        return rng.random() < self.config.volatile_fraction

    def home_location(self, tag: str, week: int) -> str:
        """The location a tag is correlated with during ``week``.

        Volatile tags keep a home for one *era*
        (``volatility_period_weeks`` weeks, with a per-tag phase so
        changes spread over time); others keep it forever.
        """
        config = self.config
        if self._is_volatile(tag):
            phase_rng = derived_rng(config.seed, "phase", tag)
            phase = phase_rng.randrange(config.volatility_period_weeks)
            era = (week + phase) // config.volatility_period_weeks
            rng = derived_rng(config.seed, "home", tag, era)
        else:
            rng = derived_rng(config.seed, "home", tag)
        return self.location_name(self._locations.sample(rng))

    def flash_events(self, week: int) -> List[FlashEvent]:
        """This week's flash events; the first reuses ``flash_tag`` so
        the same hashtag peaks in different locations over time."""
        config = self.config
        rng = derived_rng(config.seed, "flash", week)
        events: List[FlashEvent] = []
        for index in range(config.flash_events_per_week):
            tag = (
                config.flash_tag
                if index == 0
                else f"#w{week}flash{index}"
            )
            location = self.location_name(self._locations.sample(rng))
            start = week * 7 + rng.randrange(6)
            events.append(
                FlashEvent(tag, location, start, duration_days=2)
            )
        return events

    # ------------------------------------------------------------------
    # New-hashtag cohorts
    # ------------------------------------------------------------------

    def _cohort_weights(self, week: int) -> List[Tuple[int, float]]:
        """Active cohorts at ``week`` as (birth_week, weight); weights
        are normalized so a steady-state week's cohort traffic equals
        ``new_tag_share`` of the total."""
        config = self.config
        full = [
            config.cohort_decay**age
            for age in range(config.new_tag_lifetime_weeks)
        ]
        normalizer = sum(full)
        weights = []
        for age in range(min(week + 1, config.new_tag_lifetime_weeks)):
            weights.append((week - age, full[age] / normalizer))
        return weights

    def cohort_tag(self, birth_week: int, rank: int) -> str:
        return f"#w{birth_week}n{rank}"

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------

    def week_records(self, week: int) -> Iterator[Record]:
        """All (day, location, hashtag) records of one week."""
        if week < 0:
            raise WorkloadError(f"week must be >= 0, got {week}")
        config = self.config
        rng = derived_rng(config.seed, "week", week)
        events = self.flash_events(week)
        total = config.tweets_per_week
        n_flash = int(total * config.flash_share) if events else 0

        cohorts = self._cohort_weights(week)
        cohort_share = config.new_tag_share * sum(w for _, w in cohorts)
        n_new = int(total * cohort_share)
        n_regular = total - n_flash - n_new
        base_day = week * 7

        tag_sampler = self._weekly_sampler("tag", week)
        for _ in range(n_regular):
            tag = self.tag_name(tag_sampler.sample(rng))
            yield self._place(tag, week, base_day, rng)

        if cohorts:
            births = [b for b, _ in cohorts]
            cumulative = []
            acc = 0.0
            for _, weight in cohorts:
                acc += weight
                cumulative.append(acc)
            for _ in range(n_new):
                r = rng.random() * acc
                index = next(
                    i for i, c in enumerate(cumulative) if r <= c
                )
                tag = self.cohort_tag(
                    births[index], self._cohort_tags.sample(rng)
                )
                yield self._place(tag, week, base_day, rng)

        for _ in range(n_flash):
            event = events[rng.randrange(len(events))]
            day = event.start_day + rng.randrange(event.duration_days)
            yield (day, event.location, event.tag)

    def _place(self, tag: str, week: int, base_day: int, rng) -> Record:
        if rng.random() < self.config.affinity:
            location = self.home_location(tag, week)
        else:
            sampler = self._weekly_sampler("loc", week)
            location = self.location_name(sampler.sample(rng))
        return (base_day + rng.randrange(7), location, tag)

    def week_pairs(self, week: int) -> Iterator[Tuple[str, str]]:
        """(location, hashtag) pairs of one week — the application
        routes first by location, then by hashtag (Section 4.3)."""
        for _, location, tag in self.week_records(week):
            yield (location, tag)

    def daily_frequency(
        self, tag: str, weeks: int
    ) -> Dict[str, Dict[int, int]]:
        """Per-location daily counts of one hashtag over ``weeks``
        weeks (the Fig. 10 query)."""
        series: Dict[str, Dict[int, int]] = {}
        for week in range(weeks):
            for day, location, record_tag in self.week_records(week):
                if record_tag == tag:
                    per_day = series.setdefault(location, {})
                    per_day[day] = per_day.get(day, 0) + 1
        return series
