"""Exception hierarchy for the repro library.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TopologyError(ReproError):
    """The topology definition is invalid (cycle, unknown component, ...)."""


class DeploymentError(ReproError):
    """The topology cannot be deployed on the given cluster."""


class SimulationError(ReproError):
    """Internal inconsistency detected while running the simulator."""


class PartitioningError(ReproError):
    """The graph partitioner received invalid input or cannot satisfy
    its balance constraint."""


class RoutingError(ReproError):
    """A routing table or grouping was used inconsistently."""


class ReconfigurationError(ReproError):
    """The online reconfiguration protocol reached an invalid state."""


class WorkloadError(ReproError):
    """A workload generator was configured with invalid parameters."""


class FaultInjectionError(ReproError):
    """A fault plan is invalid or cannot attach to this deployment."""
