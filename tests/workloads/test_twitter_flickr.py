"""Tests for the Twitter-like and Flickr-like generators."""

from collections import Counter

import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    FlickrConfig,
    FlickrWorkload,
    TwitterConfig,
    TwitterWorkload,
)

SMALL = TwitterConfig(
    tweets_per_week=4000,
    num_locations=80,
    base_hashtags=600,
    new_hashtags_per_week=60,
    seed=11,
)


def test_twitter_config_validation():
    with pytest.raises(WorkloadError):
        TwitterConfig(num_locations=0)
    with pytest.raises(WorkloadError):
        TwitterConfig(affinity=1.2)
    with pytest.raises(WorkloadError):
        TwitterConfig(new_tag_share=0.6, flash_share=0.5)
    with pytest.raises(WorkloadError):
        TwitterConfig(volatility_period_weeks=0)


def test_twitter_week_is_deterministic():
    workload = TwitterWorkload(SMALL)
    first = list(workload.week_records(3))
    second = list(workload.week_records(3))
    assert first == second


def test_twitter_week_size_and_day_range():
    workload = TwitterWorkload(SMALL)
    records = list(workload.week_records(2))
    assert len(records) == SMALL.tweets_per_week
    for day, location, tag in records:
        assert 14 <= day < 21
        assert location.startswith("loc")
        assert tag.startswith("#")


def test_twitter_negative_week_rejected():
    with pytest.raises(WorkloadError):
        next(TwitterWorkload(SMALL).week_records(-1))


def test_twitter_affinity_concentrates_tags():
    """A popular tag's tweets cluster at its home location."""
    workload = TwitterWorkload(SMALL)
    week = 1
    by_tag = {}
    for _, location, tag in workload.week_records(week):
        by_tag.setdefault(tag, Counter())[location] += 1
    tag, locations = max(by_tag.items(), key=lambda kv: sum(kv[1].values()))
    total = sum(locations.values())
    top_share = locations.most_common(1)[0][1] / total
    assert top_share > 0.5  # affinity default is 0.75


def test_twitter_stable_tag_home_is_stable():
    workload = TwitterWorkload(SMALL)
    stable = next(
        tag
        for rank in range(50)
        for tag in [workload.tag_name(rank)]
        if not workload._is_volatile(tag)
    )
    homes = {workload.home_location(stable, week) for week in range(8)}
    assert len(homes) == 1


def test_twitter_volatile_tag_home_changes_by_era():
    workload = TwitterWorkload(SMALL)
    volatile = next(
        tag
        for rank in range(50)
        for tag in [workload.tag_name(rank)]
        if workload._is_volatile(tag)
    )
    homes = {workload.home_location(volatile, week) for week in range(20)}
    assert len(homes) > 1
    # Within one era the home stays put.
    week0_home = workload.home_location(volatile, 0)
    assert workload.home_location(volatile, 0) == week0_home


def test_twitter_new_cohorts_appear_and_age_out():
    config = TwitterConfig(
        tweets_per_week=4000,
        new_tag_lifetime_weeks=2,
        seed=5,
    )
    workload = TwitterWorkload(config)
    week5_tags = {tag for _, _, tag in workload.week_records(5)}
    assert any(tag.startswith("#w5n") for tag in week5_tags)
    assert any(tag.startswith("#w4n") for tag in week5_tags)
    # Cohort of week 2 (age 3 > lifetime 2) is gone.
    assert not any(tag.startswith("#w2n") for tag in week5_tags)


def test_twitter_flash_events_structure():
    workload = TwitterWorkload(SMALL)
    events = workload.flash_events(4)
    assert len(events) == SMALL.flash_events_per_week
    assert events[0].tag == SMALL.flash_tag
    for event in events:
        assert 28 <= event.start_day < 35
        assert list(event.days) == [
            event.start_day, event.start_day + 1
        ]


def test_twitter_flash_tag_moves_between_locations():
    """The Fig. 10 pattern: the recurring flash tag peaks in different
    locations on different days."""
    workload = TwitterWorkload(SMALL)
    series = workload.daily_frequency(SMALL.flash_tag, weeks=6)
    assert len(series) >= 2  # several distinct locations
    peak_days = {
        location: max(days, key=days.get) for location, days in series.items()
    }
    assert len(set(peak_days.values())) >= 2  # peaks on different days


def test_flickr_config_validation():
    with pytest.raises(WorkloadError):
        FlickrConfig(num_tags=0)
    with pytest.raises(WorkloadError):
        FlickrConfig(affinity=-0.1)


def test_flickr_pairs_deterministic_and_stable():
    workload = FlickrWorkload(FlickrConfig(seed=3))
    first = list(workload.pairs(100, stream_seed=1))
    second = list(workload.pairs(100, stream_seed=1))
    assert first == second
    assert first != list(workload.pairs(100, stream_seed=2))


def test_flickr_home_country_is_stable():
    workload = FlickrWorkload(FlickrConfig(seed=3))
    assert workload.home_country("tag7") == workload.home_country("tag7")


def test_flickr_affinity_controls_correlation():
    strong = FlickrWorkload(FlickrConfig(affinity=1.0, seed=2))
    for tag, country in strong.pairs(200):
        assert country == strong.home_country(tag)


def test_flickr_topology_runs():
    from repro.engine import RunConfig, run

    workload = FlickrWorkload(
        FlickrConfig(num_tags=200, num_countries=30, seed=1)
    )
    result = run(
        workload.topology(parallelism=2, padding=100),
        RunConfig(duration_s=0.06, warmup_s=0.02, num_servers=2),
    )
    assert result.throughput > 0


def test_flickr_finite_topology_drains():
    from repro.engine import Cluster, Simulator, deploy

    workload = FlickrWorkload(FlickrConfig(num_tags=50, num_countries=10))
    topology = workload.topology(parallelism=2, tuples_per_instance=300)
    sim = Simulator()
    deployment = deploy(sim, Cluster(sim, 2), topology)
    deployment.start()
    sim.run()
    assert deployment.metrics.processed_total("B") == 600
