#!/usr/bin/env python
"""Quickstart: locality-aware routing in 60 lines.

Builds the paper's two-stage stateful application (count regions, then
count hashtags), runs it once with Storm's default hash-based fields
grouping and once with routing tables mined offline from a data
sample, and prints the throughput and locality of both.

Run:  python examples/quickstart.py
"""

import random

from repro.core import offline_tables
from repro.engine import (
    CountBolt,
    FieldsGrouping,
    RunConfig,
    TableFieldsGrouping,
    TopologyBuilder,
    run,
)
from repro.engine.operators import IteratorSpout

SERVERS = 4
REGIONS = ["asia", "europe", "africa", "oceania"]
HASHTAGS = {
    "asia": ["#java", "#ruby"],
    "europe": ["#python", "#rust"],
    "africa": ["#go", "#scala"],
    "oceania": ["#clojure", "#elixir"],
}


def tweet_stream(ctx):
    """Geo-tagged tweets; hashtags correlate strongly with regions."""
    rng = random.Random(ctx.instance_index)
    while True:
        region = rng.choice(REGIONS)
        if rng.random() < 0.9:  # correlated
            tag = rng.choice(HASHTAGS[region])
        else:
            tag = rng.choice([t for tags in HASHTAGS.values() for t in tags])
        yield (region, tag)


def build_topology(grouping_region, grouping_tag):
    builder = TopologyBuilder()
    builder.spout("tweets", lambda: IteratorSpout(tweet_stream), SERVERS)
    builder.bolt(
        "count_regions",
        lambda: CountBolt(0, forward=True),
        parallelism=SERVERS,
        inputs={"tweets": grouping_region},
    )
    builder.bolt(
        "count_tags",
        lambda: CountBolt(1, forward=False),
        parallelism=SERVERS,
        inputs={"count_regions": grouping_tag},
    )
    return builder.build()


def main():
    config = RunConfig(duration_s=0.5, warmup_s=0.1, num_servers=SERVERS)

    # 1. Hash-based fields grouping (the Storm default).
    hashed = run(
        build_topology(FieldsGrouping(0), FieldsGrouping(1)), config
    )

    # 2. Mine correlations from a sample, build routing tables offline.
    rng = random.Random(42)
    sample = []
    for _ in range(5000):
        region = rng.choice(REGIONS)
        tag = rng.choice(HASHTAGS[region])
        sample.append((region, tag))
    tables, predicted = offline_tables(
        sample,
        num_servers=SERVERS,
        in_stream="tweets->count_regions",
        out_stream="count_regions->count_tags",
    )
    optimized = run(
        build_topology(
            TableFieldsGrouping(0, table=tables["tweets->count_regions"]),
            TableFieldsGrouping(1, table=tables["count_regions->count_tags"]),
        ),
        config,
    )

    print(f"partitioner predicted locality: {predicted:.0%}")
    print(
        f"hash-based:     {hashed.throughput / 1e3:7.1f} Ktuples/s, "
        f"locality {hashed.locality:.0%}"
    )
    print(
        f"locality-aware: {optimized.throughput / 1e3:7.1f} Ktuples/s, "
        f"locality {optimized.locality:.0%}"
    )
    speedup = optimized.throughput / hashed.throughput
    print(f"speedup: x{speedup:.2f}")


if __name__ == "__main__":
    main()
