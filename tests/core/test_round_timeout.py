"""Manager round deadlines: a wedged round must abort cleanly —
pending reconfigurations discarded, held keys released, routing rolled
back to the pre-round tables — and the next round must still work.

Also the regression tests for the control-plane bugs fixed alongside:
``start()`` stacking a second periodic timer on double start.
"""

import random

from repro.core import Manager, ManagerConfig
from repro.engine import (
    Cluster,
    CountBolt,
    Simulator,
    TableFieldsGrouping,
    TopologyBuilder,
    deploy,
)
from repro.engine.operators import IteratorSpout
from repro.faults import ControlFault, FaultInjector, FaultPlan

N = 3
PER_SPOUT = 8000


def _source(ctx):
    rng = random.Random(ctx.instance_index)
    for _ in range(PER_SPOUT):
        a = ctx.instance_index if rng.random() < 0.8 else rng.randrange(N)
        yield (a, a + 100)


def _build():
    builder = TopologyBuilder()
    builder.spout("S", lambda: IteratorSpout(_source), parallelism=N)
    builder.bolt(
        "A",
        lambda: CountBolt(0, forward=True),
        parallelism=N,
        inputs={"S": TableFieldsGrouping(0)},
    )
    builder.bolt(
        "B",
        lambda: CountBolt(1, forward=False),
        parallelism=N,
        inputs={"A": TableFieldsGrouping(1)},
    )
    return builder.build()


def _deployed(**config_kwargs):
    sim = Simulator()
    deployment = deploy(sim, Cluster(sim, N), _build())
    manager = Manager(deployment, ManagerConfig(**config_kwargs))
    return sim, deployment, manager


def _wedge_plan():
    """Drop every PROPAGATE the manager seeds into the spouts: the
    round can never propagate and must be recovered by the deadline."""
    return FaultPlan(
        control=[
            ControlFault(
                "drop", kind="PROPAGATE", sender="manager", max_matches=N
            )
        ]
    )


class TestRoundDeadline:
    def test_wedged_round_aborts_with_rollback(self):
        sim, deployment, manager = _deployed(
            period_s=None, round_timeout_s=0.02
        )
        FaultInjector(_wedge_plan()).attach(deployment)
        deployment.start()
        sim.run(until=0.05)  # let statistics accumulate

        done = []
        assert manager.reconfigure(on_complete=done.append) is True
        sim.run(until=0.09)  # past the 0.02s deadline

        assert len(done) == 1
        record = done[0]
        assert record.aborted is True
        assert record.aborted_at is not None
        assert "deadline" in record.abort_reason
        assert record.completed_at is None
        assert manager.round_active is False
        assert manager.aborted_rounds == [record]
        assert deployment.metrics.rounds_aborted == 1

        # Rollback: the first round started from empty tables, so the
        # abort must return every source router to pure hash fallback.
        assert manager.current_tables == {}
        for executor in deployment.instances("S"):
            assert executor.table_router("S->A").table is None
        for executor in deployment.instances("A"):
            assert executor.table_router("A->B").table is None

        # Agents dropped their pending round and released held keys.
        for agent in manager._agents.values():
            assert agent._pending is None
        for op in ("A", "B"):
            for executor in deployment.instances(op):
                assert executor.held_keys == set()

        sim.run()  # drain; totals stay exact under hash fallback
        assert deployment.metrics.processed_total("B") == N * PER_SPOUT

    def test_round_after_abort_succeeds(self):
        sim, deployment, manager = _deployed(
            period_s=None, round_timeout_s=0.02
        )
        FaultInjector(_wedge_plan()).attach(deployment)
        deployment.start()
        sim.run(until=0.05)
        manager.reconfigure()
        sim.run(until=0.09)
        assert len(manager.aborted_rounds) == 1

        # The drop rule is exhausted: the next round completes and
        # installs fresh tables.
        done = []
        assert manager.reconfigure(on_complete=done.append) is True
        sim.run(until=0.2)
        assert len(done) == 1
        assert done[0].aborted is False
        assert done[0].completed_at is not None
        assert manager.current_tables

    def test_deadline_cancelled_on_normal_completion(self):
        sim, deployment, manager = _deployed(
            period_s=None, round_timeout_s=0.04
        )
        deployment.start()
        sim.run(until=0.05)
        done = []
        manager.reconfigure(on_complete=done.append)
        sim.run()  # far beyond the deadline
        assert len(done) == 1
        assert done[0].aborted is False
        assert manager.aborted_rounds == []
        assert deployment.metrics.rounds_aborted == 0

    def test_timeout_never_fires_when_unconfigured(self):
        sim, deployment, manager = _deployed(period_s=None)
        FaultInjector(_wedge_plan()).attach(deployment)
        deployment.start()
        sim.run(until=0.05)
        manager.reconfigure()
        sim.run()
        # No deadline: the wedged round simply stays active.
        assert manager.round_active is True
        assert manager.aborted_rounds == []

    def test_periodic_rounds_recover_after_abort(self):
        sim, deployment, manager = _deployed(
            period_s=0.05, round_timeout_s=0.03
        )
        FaultInjector(_wedge_plan()).attach(deployment)
        manager.start()
        deployment.start()
        sim.run(until=0.5)
        manager.stop()
        sim.run()
        assert len(manager.aborted_rounds) == 1
        effective = [
            r
            for r in manager.completed_rounds
            if not r.skipped and not r.aborted
        ]
        assert effective, "no effective round after the abort"
        assert deployment.metrics.processed_total("B") == N * PER_SPOUT


class TestStartTimerRegression:
    def test_double_start_arms_a_single_timer(self):
        # Regression: start() used to stack a second periodic timer,
        # doubling the reconfiguration rate and wedging overlapped
        # rounds.
        sim, deployment, manager = _deployed(period_s=0.05)
        manager.start()
        manager.start()
        assert sim.pending_events == 1

    def test_stop_then_start_rearms_once(self):
        sim, deployment, manager = _deployed(period_s=0.05)
        manager.start()
        manager.stop()
        assert sim.pending_events == 0
        manager.start()
        assert sim.pending_events == 1
