"""Data tuples flowing through the simulated topology.

Tuples carry a tuple of field values. Payload bytes are *modeled*, not
materialized: a 20 kB padding field is represented by a
:class:`Padding` marker holding only its size, so simulating large
tuples costs no memory.
"""

from __future__ import annotations

from itertools import count
from typing import Any, Iterable, Optional


class Padding:
    """A placeholder for an opaque payload of ``nbytes`` bytes."""

    __slots__ = ("nbytes",)

    def __init__(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError(f"padding size must be >= 0, got {nbytes}")
        self.nbytes = nbytes

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Padding) and other.nbytes == self.nbytes

    def __hash__(self) -> int:
        return hash(("Padding", self.nbytes))

    def __repr__(self) -> str:
        return f"Padding({self.nbytes})"


def field_size(value: Any) -> int:
    """Modeled wire size in bytes of one field value."""
    if isinstance(value, Padding):
        return value.nbytes
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if value is None:
        return 0
    if isinstance(value, (tuple, list)):
        return sum(field_size(item) for item in value)
    # Fallback: a conservative small object.
    return 16


def payload_size(values: Iterable[Any]) -> int:
    """Modeled wire size of a tuple's field values (without header).

    The exact-type checks inline the two field kinds that dominate the
    benchmark workloads (strings and padding markers); everything else
    falls back to the general :func:`field_size` dispatch.
    """
    total = 0
    for value in values:
        cls = value.__class__
        if cls is Padding:
            total += value.nbytes
        elif cls is str:
            total += len(value.encode("utf-8"))
        else:
            total += field_size(value)
    return total


_tuple_ids = count()


class Tuple:
    """One data tuple.

    Attributes
    ----------
    values:
        The field values (immutable tuple).
    size:
        Modeled wire size in bytes, header included.
    root_id:
        Id of the spout tuple this one descends from (for acking).
    """

    __slots__ = ("id", "values", "size", "root_id")

    def __init__(
        self,
        values: tuple,
        size: int,
        root_id: Optional[int] = None,
        tuple_id: Optional[int] = None,
    ) -> None:
        self.id = next(_tuple_ids) if tuple_id is None else tuple_id
        self.values = values
        self.size = size
        self.root_id = self.id if root_id is None else root_id

    def __repr__(self) -> str:
        return f"Tuple(id={self.id}, values={self.values!r}, size={self.size})"


def make_tuple(
    values: Iterable[Any],
    header_bytes: int,
    root_id: Optional[int] = None,
    payload_bytes: Optional[int] = None,
) -> Tuple:
    """Create a tuple, computing its modeled size.

    ``payload_bytes`` short-circuits the recursive :func:`payload_size`
    walk when the caller already knows it — the emission planner
    computes it once per emitted ``values`` and shares it across every
    destination copy.
    """
    values = tuple(values)
    if payload_bytes is None:
        payload_bytes = payload_size(values)
    return Tuple(values, header_bytes + payload_bytes, root_id)
