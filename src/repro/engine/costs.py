"""Calibrated cost model for the simulated Storm cluster.

The paper's testbed reaches roughly 110 Ktuples/s per server per
pipeline stage with tiny tuples (Fig. 7d: locality-aware scales from
~110 K at parallelism 1 to ~650 K at 6), loses ~22 % when small tuples
cross the network (Fig. 7a at parallelism 1 vs 2), and becomes strongly
network-bound as padding grows. Three cost components reproduce these
regimes:

1. per-tuple CPU **service time** at each executor;
2. **serialization** CPU on remote sends (fixed + per-byte, like
   Storm's kryo path) and symmetric **deserialization** on receive;
3. finite-bandwidth **NIC** queues plus propagation latency.

Absolute numbers are calibration constants; the reproduction targets
the *shape* of the curves (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostModel:
    """All timing constants of the simulated execution environment."""

    #: CPU time to produce one tuple at a spout.
    spout_service_s: float = 2.0e-6
    #: CPU time to process one tuple at a bolt (the operator logic).
    bolt_service_s: float = 9.0e-6
    #: Fixed CPU cost to serialize one outgoing remote tuple.
    ser_fixed_s: float = 1.0e-6
    #: Per-byte CPU cost of serialization (~1.25 GB/s memory path).
    ser_per_byte_s: float = 0.8e-9
    #: Fixed CPU cost to deserialize one incoming remote tuple.
    deser_fixed_s: float = 1.0e-6
    #: Per-byte CPU cost of deserialization.
    deser_per_byte_s: float = 0.8e-9
    #: Framing overhead added to every tuple's payload size.
    tuple_header_bytes: int = 84
    #: Time for an ack to travel back to the spout (acks bypass the
    #: NIC model: they are ~20 bytes and Storm batches them).
    ack_delay_s: float = 200.0e-6
    #: Spout back-off when its source has no tuple ready.
    spout_idle_retry_s: float = 100.0e-6
    #: Size of a control-plane message (routing tables etc. are small).
    control_message_bytes: int = 512
    #: CPU time to handle one control message at an executor.
    control_service_s: float = 5.0e-6
    #: Per-key payload when migrating operator state (a counter entry).
    state_bytes_per_key: int = 64
    #: Capacity of each router's key→route LRU cache (0 disables
    #: caching). Sized per router instance; see DESIGN.md §10.
    router_cache_size: int = 4096
    #: Max source polls a spout drains per scheduled service event (1
    #: restores the seed one-event-per-poll behaviour).
    spout_batch: int = 8
    #: Max queued data tuples a bolt drains per scheduled service event
    #: (the batch never crosses a control message: barriers intact).
    bolt_batch: int = 8

    def ser_cost(self, nbytes: int) -> float:
        """CPU seconds to serialize a remote tuple of ``nbytes``."""
        return self.ser_fixed_s + nbytes * self.ser_per_byte_s

    def deser_cost(self, nbytes: int) -> float:
        """CPU seconds to deserialize a remote tuple of ``nbytes``."""
        return self.deser_fixed_s + nbytes * self.deser_per_byte_s

    def with_overrides(self, **kwargs) -> "CostModel":
        """A copy of this model with some constants replaced."""
        return replace(self, **kwargs)


#: The default calibration used by the benchmarks.
DEFAULT_COSTS = CostModel()
