"""Plain-text tables for experiment output — and the telemetry report.

Besides the :func:`format_table` primitive the figure drivers use, this
module renders an exported telemetry file (see
:mod:`repro.observability` / :mod:`repro.analysis.telemetry`) into a
human-readable run report::

    python -m repro.analysis.report results/telemetry.jsonl

The report has three parts: a run summary (traffic, locality, routing
table hit rate, control-plane volume), the snapshot time series, and
one timeline per reconfiguration round showing each protocol phase
(STATS_COLLECT → PARTITION → PROPAGATE → MIGRATE) with its duration
and the terminal COMMIT/ABORT/SKIP/VETO event.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_table(
    rows: Sequence[Dict],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0])
    cells: List[List[str]] = [[str(c) for c in columns]]
    for row in rows:
        cells.append([_fmt(row.get(c)) for c in columns])
    widths = [
        max(len(line[i]) for line in cells) for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    header, *body = cells
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for line in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(line, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3f}"
    return str(value)


def ktuples(value: float) -> float:
    """Tuples/s → Ktuples/s, rounded for display."""
    return round(value / 1000.0, 1)


# ----------------------------------------------------------------------
# Telemetry report
# ----------------------------------------------------------------------


def _sum_family(family: Dict) -> float:
    """Total over a metric family whose values are numbers or dicts of
    numbers (per-instance callbacks export dicts)."""
    total = 0.0
    for value in family.values():
        if isinstance(value, dict):
            total += sum(v for v in value.values() if isinstance(v, (int, float)))
        elif isinstance(value, (int, float)):
            total += value
    return total


def render_summary(log) -> str:
    """The run-summary table of :func:`render_report`."""
    rows: List[Dict] = []

    def add(metric, value, unit=""):
        rows.append({"metric": metric, "value": value, "unit": unit})

    streams = log.metric_family("stream_traffic")
    local = sum(v.get("local_tuples", 0) for v in streams.values())
    remote = sum(v.get("remote_tuples", 0) for v in streams.values())
    if local + remote:
        add("tuples routed", local + remote, "tuples")
        add("overall locality", local / (local + remote), "fraction")
    for key, counters in sorted(streams.items()):
        add(f"locality [{key}]", counters.get("locality"), "fraction")

    hits = _sum_family(log.metric_family("routing_table_hits"))
    fallbacks = _sum_family(log.metric_family("routing_hash_fallbacks"))
    if hits + fallbacks:
        add("routing-table hit rate", hits / (hits + fallbacks), "fraction")
        add("hash fallbacks", int(fallbacks), "lookups")

    network = log.metric("network_bytes_total")
    if network is not None:
        add("network volume", network, "bytes")
    control = log.metric_family("control_bytes")
    for key, value in sorted(control.items()):
        if isinstance(value, dict):
            for kind, nbytes in sorted(value.items()):
                add(f"control bytes [{kind}]", nbytes, "bytes")
    migrated = log.metric("migrated_keys_total")
    if migrated is not None:
        add("migrated keys", migrated, "keys")

    completed = log.metric("reconf_rounds_completed")
    aborted = log.metric("reconf_rounds_aborted")
    if completed is not None:
        add("rounds completed", completed, "rounds")
    if aborted is not None:
        add("rounds aborted", aborted, "rounds")

    latency = log.metric("latency_seconds")
    if isinstance(latency, dict) and latency.get("count"):
        add("latency mean", latency["mean"], "s")
        add("latency p99", latency["p99"], "s")

    if not rows:
        return "Run summary\n(no metric records — was flush() called?)"
    return format_table(
        rows, columns=["metric", "value", "unit"], title="Run summary"
    )


def render_snapshots(log, max_rows: int = 40) -> str:
    """The snapshot time-series table of :func:`render_report`."""
    if not log.snapshots:
        return "Snapshots\n(no snapshot records — probe not armed)"
    rows = []
    for snap in log.snapshots:
        row = {
            "t": snap.get("ts"),
            "locality": snap.get("locality"),
            "win_locality": snap.get("window_locality"),
            "net_bytes": snap.get("network_bytes"),
        }
        for op, rate in sorted((snap.get("throughput") or {}).items()):
            row[f"tput:{op}"] = ktuples(rate)
        for op, balance in sorted((snap.get("load_balance") or {}).items()):
            row[f"bal:{op}"] = balance
        if "cut_weight" in snap:
            row["cut_weight"] = snap["cut_weight"]
        rows.append(row)
    # Early rows may predate the first plan (no cut_weight yet); take
    # the column set from every row, not just the first.
    columns: List[str] = []
    for row in rows:
        for column in row:
            if column not in columns:
                columns.append(column)
    shown = rows[:max_rows]
    title = "Snapshots (throughput in Ktuples/s)"
    if len(rows) > len(shown):
        title += f" — first {len(shown)} of {len(rows)}"
    return format_table(shown, columns=columns, title=title)


def render_rounds(log) -> str:
    """One timeline block per reconfiguration round."""
    rounds = log.rounds()
    if not rounds:
        return "Reconfiguration rounds\n(no round spans in this trace)"
    blocks = []
    for span in rounds:
        round_id = span.attrs.get("round", "?")
        status = span.attrs.get("status", "open")
        duration = (
            f"{span.duration_s * 1e3:.2f} ms"
            if span.duration_s is not None
            else "open"
        )
        header = (
            f"Round {round_id} — {status} "
            f"(t={span.start:.4f}s, {duration})"
        )
        rows = []
        for child in span.children:
            phase_duration = (
                f"{child.duration_s * 1e3:.3f}"
                if child.duration_s is not None
                else "open"
            )
            detail = ", ".join(
                f"{k}={_fmt(v)}"
                for k, v in sorted(child.attrs.items())
                if k != "status"
            )
            rows.append(
                {
                    "phase": child.name,
                    "start_s": child.start,
                    "ms": phase_duration,
                    "detail": detail,
                }
            )
        block = [header]
        if rows:
            block.append(
                format_table(rows, columns=["phase", "start_s", "ms", "detail"])
            )
        for ts, name, attrs in span.events:
            detail = ", ".join(
                f"{k}={_fmt(v)}" for k, v in sorted(attrs.items())
            )
            block.append(f"  @{ts:.4f}s {name}" + (f" ({detail})" if detail else ""))
        blocks.append("\n".join(block))
    return "Reconfiguration rounds\n\n" + "\n\n".join(blocks)


def render_report(log) -> str:
    """Full report: summary + snapshots + per-round timelines."""
    return "\n\n".join(
        [render_summary(log), render_snapshots(log), render_rounds(log)]
    )


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    from repro.analysis.telemetry import TelemetryLog

    parser = argparse.ArgumentParser(
        description="Render a run report from an exported telemetry "
        "JSONL file (see repro.observability.attach_telemetry)."
    )
    parser.add_argument("telemetry", help="path to the .jsonl trace")
    parser.add_argument(
        "--max-snapshot-rows",
        type=int,
        default=40,
        help="truncate the snapshot table after this many rows",
    )
    args = parser.parse_args(argv)

    log = TelemetryLog.load(args.telemetry)
    print(render_summary(log))
    print()
    print(render_snapshots(log, max_rows=args.max_snapshot_rows))
    print()
    print(render_rounds(log))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
