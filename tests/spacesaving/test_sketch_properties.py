"""Property-based checks of SpaceSaving against the exact oracle.

The Metwally et al. guarantees, verified on hypothesis-generated
streams with :class:`~repro.spacesaving.exact.ExactCounter` (same
interface, unbounded memory) as ground truth:

- never under-estimate: ``true ≤ count`` for every tracked item;
- the error bound is honest: ``count − error ≤ true``;
- with capacity ``m`` after ``N`` offers, every per-item error (and
  the sketch-wide ``max_error``) is at most ``N / m`` — the ε·N bound;
- frequent-item containment: any item whose true count exceeds
  ``N / m`` is tracked (the top-k completeness the manager's
  statistics collection relies on).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spacesaving import ExactCounter, SpaceSaving

streams = st.lists(
    st.integers(min_value=0, max_value=60), min_size=1, max_size=500
)
capacities = st.integers(min_value=4, max_value=64)


def _fill(stream, capacity):
    sketch = SpaceSaving(capacity)
    oracle = ExactCounter()
    for item in stream:
        sketch.offer(item)
        oracle.offer(item)
    return sketch, oracle


@settings(max_examples=60, deadline=None)
@given(streams, capacities)
def test_estimates_bracket_truth(stream, capacity):
    sketch, oracle = _fill(stream, capacity)
    for est in sketch.items():
        truth = oracle.estimate(est.item)
        true_count = truth.count if truth is not None else 0
        assert true_count <= est.count
        assert est.count - est.error <= true_count


@settings(max_examples=60, deadline=None)
@given(streams, capacities)
def test_error_respects_epsilon_n(stream, capacity):
    sketch, oracle = _fill(stream, capacity)
    bound = oracle.n / capacity
    assert sketch.max_error() <= bound
    for est in sketch.items():
        assert est.error <= bound


@settings(max_examples=60, deadline=None)
@given(streams, capacities)
def test_frequent_items_are_tracked(stream, capacity):
    sketch, oracle = _fill(stream, capacity)
    threshold = oracle.n / capacity
    for est in oracle.items():
        if est.count > threshold:
            assert est.item in sketch, (
                f"item {est.item} with true count {est.count} > "
                f"N/m = {threshold} missing from the sketch"
            )


@settings(max_examples=40, deadline=None)
@given(streams, capacities, st.integers(min_value=1, max_value=8))
def test_guaranteed_top_is_sound(stream, capacity, k):
    """Items the sketch *guarantees* in the top-k really are at least
    as frequent as every untracked item could possibly be."""
    sketch, oracle = _fill(stream, capacity)
    for est in sketch.guaranteed_top(k):
        truth = oracle.estimate(est.item)
        assert truth is not None
        # The guaranteed lower bound never exceeds the truth.
        assert est.count - est.error <= truth.count
