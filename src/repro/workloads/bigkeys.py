"""A million-key workload for routing-table scale experiments.

The paper's workloads have figure-scale key populations (thousands);
the ROADMAP north-star is millions of users. This generator produces a
keyspace of ``num_keys`` string keys ("user-0000042"-style — realistic
repr cost on the wire), an explicit routing table covering a
configurable fraction of them, and *epochs*: successive tables where a
fixed number of keys (``churn_keys``) change owner per epoch, the way a
manager round moves a bounded set of keys regardless of table size.
Fixed-count churn is what makes delta-encoded PROPAGATE sub-linear in
the key count — the scale sweep in ``benchmarks/bench_engine.py``
measures exactly that (EXPERIMENTS.md "Scaling to millions of keys").

Uncovered keys (``1 - table_coverage`` of the population) exercise the
compact table's front filter: they must short-circuit to hash fallback
without a false route, within the configured budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from repro.core.routing_table import RoutingTable
from repro.engine import TableFieldsGrouping, Topology, TopologyBuilder
from repro.engine.operators import CountBolt, IteratorSpout
from repro.errors import WorkloadError
from repro.workloads.zipf import derived_rng


@dataclass(frozen=True)
class BigKeysConfig:
    """Parameters of the big-keys workload."""

    parallelism: int = 4
    #: distinct keys in the population (the scale axis: 10k → 1M+)
    num_keys: int = 1_000_000
    #: fraction of the population with an explicit routing-table entry
    table_coverage: float = 0.5
    #: keys whose owner changes per epoch — fixed count, *not* a
    #: fraction, so per-round control-plane churn is scale-independent
    churn_keys: int = 1024
    #: prefix of generated keys (affects modeled wire/memory bytes)
    key_prefix: str = "user"
    seed: int = 0
    #: cap on emitted tuples per spout instance in the smoke topology
    tuples_per_instance: Optional[int] = 2000

    def __post_init__(self) -> None:
        if self.parallelism < 1:
            raise WorkloadError(
                f"parallelism must be >= 1, got {self.parallelism}"
            )
        if self.num_keys < 1:
            raise WorkloadError(
                f"num_keys must be >= 1, got {self.num_keys}"
            )
        if not 0.0 <= self.table_coverage <= 1.0:
            raise WorkloadError(
                f"table_coverage must be in [0, 1], got "
                f"{self.table_coverage}"
            )
        if self.churn_keys < 0:
            raise WorkloadError(
                f"churn_keys must be >= 0, got {self.churn_keys}"
            )


class BigKeysWorkload:
    """Builds million-key routing tables and a smoke topology."""

    def __init__(self, config: BigKeysConfig) -> None:
        self.config = config
        #: digits in the zero-padded key suffix (stable key length)
        self._width = max(7, len(str(config.num_keys - 1)))

    # ------------------------------------------------------------------
    # Keyspace
    # ------------------------------------------------------------------

    def key(self, index: int) -> str:
        return f"{self.config.key_prefix}-{index:0{self._width}d}"

    @property
    def table_size(self) -> int:
        """Entries in each epoch's table (covered fraction)."""
        return int(self.config.num_keys * self.config.table_coverage)

    def base_owner(self, index: int) -> int:
        """The epoch-0 owner of covered key ``index`` (round-robin, so
        tables are balanced by construction)."""
        return index % self.config.parallelism

    # ------------------------------------------------------------------
    # Tables and epochs
    # ------------------------------------------------------------------

    def make_table(self, epoch: int = 0) -> RoutingTable:
        """The routing table of ``epoch``: the epoch-0 assignment with
        every churn window up to ``epoch`` applied. Windows walk the
        covered keyspace so consecutive epochs differ in exactly
        ``min(churn_keys, table_size)`` owners — the bounded per-round
        movement a real manager produces."""
        size = self.table_size
        mapping: Dict[str, int] = {
            index: self.base_owner(index) for index in range(size)
        }
        for past in range(1, epoch + 1):
            self._apply_churn(mapping, past)
        return RoutingTable(
            {self.key(index): owner for index, owner in mapping.items()}
        )

    def _apply_churn(self, mapping: Dict[int, int], epoch: int) -> None:
        size = self.table_size
        if size == 0 or self.config.churn_keys == 0:
            return
        churn = min(self.config.churn_keys, size)
        start = ((epoch - 1) * churn) % size
        # shift in 1..P-1, so churned keys always change owner (with
        # P == 1 there is nowhere to move; churn degenerates to zero)
        P = self.config.parallelism
        shift = 1 + (epoch - 1) % max(1, P - 1)
        for offset in range(churn):
            index = (start + offset) % size
            mapping[index] = (mapping[index] + shift) % P

    # ------------------------------------------------------------------
    # Data generation (smoke topology)
    # ------------------------------------------------------------------

    def tuples_for_instance(self, instance: int) -> Iterator[Tuple]:
        """Uniform draws over the whole population, covered or not —
        uncovered keys exercise the hash fallback / front filter."""
        config = self.config
        rng = derived_rng(config.seed, "bigkeys", instance)
        emitted = 0
        while (
            config.tuples_per_instance is None
            or emitted < config.tuples_per_instance
        ):
            yield (self.key(rng.randrange(config.num_keys)),)
            emitted += 1

    def topology(self) -> Topology:
        """``S -> A`` counting on field 0 with the epoch-0 table."""
        builder = TopologyBuilder()
        builder.spout(
            "S",
            lambda: IteratorSpout(
                lambda ctx: self.tuples_for_instance(ctx.instance_index)
            ),
            parallelism=self.config.parallelism,
        )
        builder.bolt(
            "A",
            lambda: CountBolt(0, forward=False),
            parallelism=self.config.parallelism,
            inputs={"S": TableFieldsGrouping(0, table=self.make_table(0))},
        )
        return builder.build()

    def expected_counts(self) -> Dict:
        """Exact per-key counts at quiescence (conservation oracle)."""
        counts: Dict = {}
        for instance in range(self.config.parallelism):
            for (key,) in self.tuples_for_instance(instance):
                counts[key] = counts.get(key, 0) + 1
        return counts
