"""Property-based invariants of the k-way partitioner.

On hypothesis-generated weighted graphs, ``partition`` must (a) assign
every vertex exactly one part in range — a total function onto
``0..nparts-1`` — and (b) respect the α balance constraint up to the
documented vertex-granularity slack (the same
:func:`repro.testing.balance_bound` the DST harness checks live
rounds against)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partitioning import Graph, part_weights, partition
from repro.testing import balance_bound


@st.composite
def weighted_graphs(draw):
    n = draw(st.integers(min_value=1, max_value=32))
    weights = draw(
        st.lists(
            st.floats(min_value=0.5, max_value=8.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    graph = Graph(n, weights)
    edge_seed = draw(st.integers(min_value=0, max_value=2**20))
    rng = random.Random(edge_seed)
    for _ in range(draw(st.integers(min_value=0, max_value=3 * n))):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v:
            graph.add_edge(u, v, rng.uniform(0.5, 4.0))
    return graph


nparts_st = st.integers(min_value=1, max_value=6)
seeds = st.integers(min_value=0, max_value=2**16)
imbalances = st.sampled_from([1.03, 1.1, 1.3])


@settings(max_examples=80, deadline=None)
@given(weighted_graphs(), nparts_st, seeds)
def test_every_vertex_assigned_exactly_once(graph, nparts, seed):
    parts = partition(graph, nparts, seed=seed)
    assert len(parts) == graph.num_vertices
    assert all(0 <= part < nparts for part in parts)


@settings(max_examples=80, deadline=None)
@given(weighted_graphs(), nparts_st, seeds, imbalances)
def test_alpha_balance_with_granularity_slack(graph, nparts, seed, alpha):
    parts = partition(graph, nparts, imbalance=alpha, seed=seed)
    weights = part_weights(graph, parts, nparts)
    total = graph.total_vertex_weight
    max_vertex = max(
        (graph.vertex_weight(v) for v in range(graph.num_vertices)),
        default=0.0,
    )
    assert max(weights) <= balance_bound(total, nparts, max_vertex, alpha)


@settings(max_examples=40, deadline=None)
@given(weighted_graphs(), nparts_st, seeds)
def test_partition_is_deterministic_for_a_seed(graph, nparts, seed):
    assert partition(graph, nparts, seed=seed) == partition(
        graph, nparts, seed=seed
    )
