"""The committed fig10-12 campaign files expand to the legacy grids.

``benchmarks/bench_fig10.py`` / ``bench_fig11.py`` / ``bench_fig12.py``
sweep the quick grids hard-coded in ``repro.analysis.experiments``
(fig10: weeks=8; fig11: the three routing modes; fig12: edge budgets
(10, 1000, None) x parallelisms (2, 6)).  The campaign ports must plan
exactly those cells — a silently narrower YAML matrix would pass its
own baseline while dropping grid points the benches still cover.  Each
campaign's committed baseline must also carry every planned cell, so
``--record-baseline`` drift (stale ids after a matrix edit) is caught
here instead of as a confusing "new cell" diff at campaign time.
"""

import json
import os

from repro.campaign.config import load_campaign
from repro.campaign.planner import plan

CAMPAIGNS_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "campaigns",
)


def _plan(filename):
    config = load_campaign(os.path.join(CAMPAIGNS_DIR, filename))
    return config, plan(config)


def _baseline_cells(config):
    with open(config.baseline_path(), "r", encoding="utf-8") as handle:
        data = json.load(handle)
    assert data["campaign"] == config.name
    return data["cells"]


def test_fig10_expands_to_legacy_flash_cells():
    config, cells = _plan("fig10-flash.yaml")
    assert config.runner == "fig10"
    # bench_fig10 runs weeks=4 quick / weeks=8 full; both are cells.
    assert [cell.assignment for cell in cells] == [
        {"weeks": 4},
        {"weeks": 8},
    ]
    for cell in cells:
        assert cell.params["quick"] is True
    assert set(_baseline_cells(config)) == {cell.id for cell in cells}


def test_fig11_expands_to_legacy_mode_grid():
    config, cells = _plan("fig11-weekly.yaml")
    assert config.runner == "fig11"
    assert {cell.assignment["mode"] for cell in cells} == {
        "online",
        "offline",
        "hash-based",
    }
    assert len(cells) == 3
    for cell in cells:
        assert cell.params["quick"] is True
    assert set(_baseline_cells(config)) == {cell.id for cell in cells}


def test_fig12_expands_to_legacy_quick_grid():
    config, cells = _plan("fig12-edges.yaml")
    assert config.runner == "fig12"
    # experiments.fig12 quick grid: (10, 1000, None) x (2, 6); the
    # unlimited budget is spelled 0 in YAML (axis values are scalars).
    legacy = {
        (budget, parallelism)
        for budget in (10, 1000, 0)
        for parallelism in (2, 6)
    }
    planned = {
        (cell.assignment["budget"], cell.assignment["parallelism"])
        for cell in cells
    }
    assert planned == legacy
    assert len(cells) == len(legacy)
    for cell in cells:
        assert cell.params["quick"] is True
    assert set(_baseline_cells(config)) == {cell.id for cell in cells}


def test_backend_equivalence_covers_both_candidates():
    config, cells = _plan("backend-equivalence.yaml")
    assert config.runner == "backend"
    scenarios = {"fig13", "skew-table", "skew-hash", "skew-hybrid", "rescale"}
    planned = {
        (cell.assignment["scenario"], cell.assignment["candidate"])
        for cell in cells
    }
    assert planned == {
        (scenario, candidate)
        for scenario in scenarios
        for candidate in ("vectorized", "multiprocess")
    }
    assert set(_baseline_cells(config)) == {cell.id for cell in cells}
