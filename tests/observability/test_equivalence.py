"""Regression: attaching telemetry must not change what the run
computes — identical per-key state totals, processed counts and
routing behaviour with and without instrumentation."""

import random
from collections import Counter

from repro.core import Manager, ManagerConfig
from repro.engine import (
    Cluster,
    CountBolt,
    Simulator,
    TableFieldsGrouping,
    TopologyBuilder,
    deploy,
)
from repro.engine.operators import IteratorSpout
from repro.observability import MemorySink, attach_telemetry

N = 3
PER_SPOUT = 8000


def _source(ctx):
    rng = random.Random(ctx.instance_index)
    for _ in range(PER_SPOUT):
        a = ctx.instance_index if rng.random() < 0.8 else rng.randrange(N)
        yield (a, a + 100)


def _build():
    builder = TopologyBuilder()
    builder.spout("S", lambda: IteratorSpout(_source), parallelism=N)
    builder.bolt(
        "A",
        lambda: CountBolt(0, forward=True),
        parallelism=N,
        inputs={"S": TableFieldsGrouping(0)},
    )
    builder.bolt(
        "B",
        lambda: CountBolt(1, forward=False),
        parallelism=N,
        inputs={"A": TableFieldsGrouping(1)},
    )
    return builder.build()


def _run(instrumented):
    sim = Simulator()
    cluster = Cluster(sim, N)
    deployment = deploy(sim, cluster, _build())
    manager = Manager(deployment, ManagerConfig(period_s=0.05))
    telemetry = None
    if instrumented:
        telemetry = attach_telemetry(
            deployment,
            manager=manager,
            sink=MemorySink(),
            snapshot_interval_s=0.02,
        )
    manager.start()
    deployment.start()
    sim.run(until=0.3)
    manager.stop()
    sim.run()
    if telemetry is not None:
        telemetry.flush()
    state = {}
    for op in ("A", "B"):
        totals = Counter()
        for executor in deployment.instances(op):
            for key, count in executor.operator.state.items():
                totals[key] += count
        state[op] = totals
    return deployment, manager, state, telemetry


class TestEquivalence:
    def test_instrumented_run_is_bit_identical(self):
        plain_dep, plain_mgr, plain_state, _ = _run(instrumented=False)
        inst_dep, inst_mgr, inst_state, telemetry = _run(instrumented=True)

        # The observable computation is unchanged...
        assert inst_state == plain_state
        for op in ("A", "B"):
            assert inst_dep.metrics.processed_total(op) == (
                plain_dep.metrics.processed_total(op)
            )
        assert len(inst_mgr.completed_rounds) == len(
            plain_mgr.completed_rounds
        )
        assert inst_dep.metrics.locality() == plain_dep.metrics.locality()
        assert inst_dep.cluster.network.bytes_sent == (
            plain_dep.cluster.network.bytes_sent
        )

        # ...while the instrumented run actually recorded telemetry.
        records = telemetry.sink.records
        assert any(r["type"] == "span_begin" for r in records)
        assert any(r["type"] == "snapshot" for r in records)
        assert any(r["type"] == "metric" for r in records)
