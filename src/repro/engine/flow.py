"""Analytical flow-level throughput model.

The discrete-event simulation plays every tuple; this module predicts
the same steady-state throughput in closed form, from per-stage remote
fractions. It serves two purposes:

- a fast estimator for parameter sweeps (no simulation);
- a cross-check that the DES behaves like its own math — the test
  suite asserts both agree within a few percent in every regime
  (CPU-bound, serialization-bound, NIC-bound).

Model: each server hosts one executor of every stage of the chain.
A stage's per-tuple CPU time is its service time plus
(de)serialization for the remote fraction of its input/output. The
server's NIC serializes all remote bytes in each direction at the link
rate. Steady-state per-server throughput is set by the tightest of
these resources, and total throughput is ``num_servers`` times that
(symmetric load).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.engine.costs import CostModel, DEFAULT_COSTS
from repro.engine.cluster import GIGABIT

SPOUT = "spout"
BOLT = "bolt"


@dataclass(frozen=True)
class FlowStage:
    """One pipeline stage as the flow model sees it.

    Attributes
    ----------
    kind:
        ``"spout"`` or ``"bolt"``.
    out_bytes:
        Wire size of tuples this stage emits (header included);
        0 for sinks.
    remote_in:
        Fraction of this stage's input arriving over the network.
    remote_out:
        Fraction of this stage's output leaving over the network.
    fan_out:
        Tuples emitted per tuple processed (1 for pass-through).
    """

    name: str
    kind: str
    out_bytes: int = 0
    remote_in: float = 0.0
    remote_out: float = 0.0
    fan_out: float = 1.0


@dataclass(frozen=True)
class FlowPrediction:
    """Predicted steady-state rates."""

    #: tuples/s arriving at the sink, cluster-wide
    throughput: float
    #: the binding resource, e.g. "cpu:A" or "nic-egress"
    bottleneck: str
    #: per-resource capacity (tuples/s, cluster-wide) for inspection
    capacities: Tuple[Tuple[str, float], ...]


def predict_throughput(
    stages: Sequence[FlowStage],
    num_servers: int,
    costs: CostModel = DEFAULT_COSTS,
    bandwidth_gbps: Optional[float] = 10.0,
) -> FlowPrediction:
    """Steady-state sink throughput of a symmetric chain."""
    if not stages:
        raise ValueError("stages must be non-empty")
    if num_servers < 1:
        raise ValueError(f"num_servers must be >= 1, got {num_servers}")

    capacities: List[Tuple[str, float]] = []
    in_bytes = 0
    for stage in stages:
        if stage.kind == SPOUT:
            service = costs.spout_service_s
        else:
            service = costs.bolt_service_s
            service += stage.remote_in * costs.deser_cost(in_bytes)
        service += (
            stage.fan_out
            * stage.remote_out
            * costs.ser_cost(stage.out_bytes)
        )
        capacities.append((f"cpu:{stage.name}", num_servers / service))
        in_bytes = stage.out_bytes

    if bandwidth_gbps is not None:
        rate = bandwidth_gbps * GIGABIT
        remote_bytes_per_tuple = sum(
            stage.fan_out * stage.remote_out * stage.out_bytes
            for stage in stages
        )
        if remote_bytes_per_tuple > 0:
            # Per-direction NIC capacity; symmetric load means egress
            # and ingress see the same byte rate per server.
            nic = num_servers * rate / remote_bytes_per_tuple
            capacities.append(("nic", nic))

    bottleneck, throughput = min(capacities, key=lambda kv: kv[1])
    return FlowPrediction(
        throughput=throughput,
        bottleneck=bottleneck,
        capacities=tuple(capacities),
    )


def synthetic_stages(
    parallelism: int,
    locality: float,
    padding: int,
    policy: str,
    costs: CostModel = DEFAULT_COSTS,
    hot_share: float = 0.0,
) -> List[FlowStage]:
    """Flow stages for the Section 4.2 application under one of the
    routing policies (mirrors workloads.synthetic).

    ``hot_share`` only matters for the ``hybrid`` policy: the traffic
    fraction carried by split heavy hitters, which route like hash
    (spread over the members) while the tail keeps table locality.
    """
    n = parallelism
    tuple_bytes = costs.tuple_header_bytes + 8 + 8 + padding
    if policy == "locality-aware":
        sa_remote = 0.0
        ab_remote = 1.0 - locality if n > 1 else 0.0
    elif policy == "hash-based":
        sa_remote = 1.0 - 1.0 / n
        ab_remote = 1.0 - 1.0 / n
    elif policy == "worst-case":
        sa_remote = 1.0 - 1.0 / n
        if n == 1:
            ab_remote = 0.0
        else:
            ab_remote = locality + (1.0 - locality) * (1.0 - 1.0 / n)
    elif policy == "hybrid":
        if not 0.0 <= hot_share <= 1.0:
            raise ValueError(f"hot_share must be in [0, 1]: {hot_share}")
        # Hot traffic spreads over the split members (~hash odds of
        # staying local); tail traffic keeps the table's locality.
        spread = 1.0 - 1.0 / n if n > 1 else 0.0
        sa_remote = hot_share * spread
        ab_remote = (1.0 - hot_share) * (1.0 - locality) + hot_share * spread
        if n == 1:
            ab_remote = 0.0
    else:
        raise ValueError(f"unknown policy {policy!r}")
    if n == 1:
        sa_remote = 0.0
        ab_remote = 0.0
    return [
        FlowStage("S", SPOUT, out_bytes=tuple_bytes, remote_out=sa_remote),
        FlowStage(
            "A",
            BOLT,
            out_bytes=tuple_bytes,
            remote_in=sa_remote,
            remote_out=ab_remote,
        ),
        FlowStage("B", BOLT, out_bytes=0, remote_in=ab_remote),
    ]
