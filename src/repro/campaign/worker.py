"""The campaign worker: runs exactly one cell in its own process.

Invoked by the executor as::

    python -m repro.campaign.worker <spec.json> <result.json>

``spec.json`` holds the :class:`~repro.campaign.planner.CellSpec`
(plus the bundle directory for failing episode cells); the worker runs
the cell's runner and writes the cell result as JSON to
``result.json`` (atomically: tmp file + rename, so the executor never
reads a half-written result from a worker killed at timeout).

Seeding contract (the reproducibility half of the campaign design):
the executor exports ``PYTHONHASHSEED=<cell seed>`` before spawning
the worker, and every in-simulation random decision flows from the
same seed through :class:`~repro.testing.rng.RngTree`. The worker
records the hash seed it actually observed so the report can prove the
environment matched; a missing/mismatched hash seed is recorded, not
fatal (the RngTree discipline makes fingerprints hash-seed-independent
— that independence is exactly what the CI single-cell re-run checks).

Exit codes: 0 = cell ok; 3 = cell ran but violated invariants (the
result file has the details); anything else = crash (the executor
captures the log tail).
"""

from __future__ import annotations

import json
import os
import sys
import time
import traceback

#: exit code for "ran to completion but the cell failed its checks"
EXIT_VIOLATION = 3


def run_worker(spec_path: str, result_path: str) -> int:
    from repro.campaign.planner import CellSpec
    from repro.campaign.runners import run_cell

    with open(spec_path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    spec = CellSpec.from_dict(payload["cell"])
    bundle_dir = payload.get("bundle_dir")

    started = time.time()
    outcome = run_cell(spec.runner, spec.params, spec.seed)

    bundle_path = None
    if outcome.bundle is not None and bundle_dir:
        os.makedirs(bundle_dir, exist_ok=True)
        bundle_path = os.path.join(
            bundle_dir, f"bundle-{_safe(spec.id)}.json"
        )
        with open(bundle_path, "w", encoding="utf-8") as handle:
            json.dump(outcome.bundle, handle, indent=2, sort_keys=True)
            handle.write("\n")

    result = {
        "id": spec.id,
        "runner": spec.runner,
        "seed": spec.seed,
        "params": spec.params,
        "assignment": spec.assignment,
        "status": "ok" if outcome.ok else "violation",
        "metrics": outcome.metrics,
        "fingerprint": outcome.fingerprint,
        "violations": outcome.violations,
        "bundle_path": bundle_path,
        "duration_s": round(time.time() - started, 3),
        "hash_seed": os.environ.get("PYTHONHASHSEED"),
    }
    _write_atomic(result_path, result)
    return 0 if outcome.ok else EXIT_VIOLATION


def _safe(cell_id: str) -> str:
    return "".join(
        ch if ch.isalnum() or ch in "._+-" else "_" for ch in cell_id
    )


def _write_atomic(path: str, data: dict) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 2:
        print(
            "usage: python -m repro.campaign.worker <spec.json> "
            "<result.json>",
            file=sys.stderr,
        )
        return 2
    try:
        return run_worker(argv[0], argv[1])
    except Exception:
        traceback.print_exc()
        return 1


if __name__ == "__main__":
    sys.exit(main())
