"""Observability overhead micro-benchmark.

The observability layer promises to be opt-in: with the default null
sink the instrumented code paths cost (nearly) nothing, because hot
paths only increment plain integers that were already being counted or
check a single ``sink.enabled`` flag. This benchmark verifies the
promise: the same reconfiguring run is timed bare, with telemetry
attached on the null sink, and (informationally) with a live memory
sink; the null-sink wall-clock overhead must stay under the 3 % budget
stated in DESIGN.md §8.

Timing uses best-of-N wall clock, which is robust to scheduler noise;
the table lands in ``results/observability_overhead.txt``.
"""

import random
import time

from helpers import save_table
from repro.analysis.report import format_table
from repro.core import Manager, ManagerConfig
from repro.engine import (
    Cluster,
    CountBolt,
    Simulator,
    TableFieldsGrouping,
    TopologyBuilder,
    deploy,
)
from repro.engine.operators import IteratorSpout
from repro.observability import MemorySink, NULL_SINK, attach_telemetry

N = 3
PER_SPOUT = 20000
REPEATS = 5
BUDGET = 0.03  # the documented null-sink overhead ceiling


def _source(ctx):
    rng = random.Random(ctx.instance_index)
    for _ in range(PER_SPOUT):
        a = ctx.instance_index if rng.random() < 0.8 else rng.randrange(N)
        yield (a, a + 100)


def _build():
    builder = TopologyBuilder()
    builder.spout("S", lambda: IteratorSpout(_source), parallelism=N)
    builder.bolt(
        "A",
        lambda: CountBolt(0, forward=True),
        parallelism=N,
        inputs={"S": TableFieldsGrouping(0)},
    )
    builder.bolt(
        "B",
        lambda: CountBolt(1, forward=False),
        parallelism=N,
        inputs={"A": TableFieldsGrouping(1)},
    )
    return builder.build()


def _run_once(mode):
    sim = Simulator()
    cluster = Cluster(sim, N)
    deployment = deploy(sim, cluster, _build())
    manager = Manager(deployment, ManagerConfig(period_s=0.1))
    telemetry = None
    if mode == "null-sink":
        telemetry = attach_telemetry(
            deployment, manager=manager, sink=NULL_SINK
        )
    elif mode == "memory-sink":
        telemetry = attach_telemetry(
            deployment,
            manager=manager,
            sink=MemorySink(),
            snapshot_interval_s=0.02,
        )
    manager.start()
    deployment.start()
    start = time.perf_counter()
    sim.run(until=0.5)
    manager.stop()
    sim.run()
    elapsed = time.perf_counter() - start
    if telemetry is not None:
        telemetry.flush()
    tuples = deployment.metrics.processed_total("B")
    return elapsed, tuples


def test_null_sink_overhead_within_budget():
    _run_once("bare")  # warmup: levels allocator/interpreter state

    # Interleave the modes so machine-state drift during the benchmark
    # hits all three equally; best-of-N then cancels transient noise.
    results = {}
    for _ in range(REPEATS):
        for mode in ("bare", "null-sink", "memory-sink"):
            sample = _run_once(mode)
            if mode not in results or sample < results[mode]:
                results[mode] = sample
    bare, bare_tuples = results["bare"]
    null, null_tuples = results["null-sink"]
    live, live_tuples = results["memory-sink"]

    assert null_tuples == bare_tuples, (
        "instrumentation changed the computation"
    )

    overhead_null = null / bare - 1.0
    overhead_live = live / bare - 1.0
    rows = [
        {
            "mode": "bare (seed behaviour)",
            "best_s": bare,
            "tuples": bare_tuples,
            "overhead": "-",
        },
        {
            "mode": "telemetry, null sink (default)",
            "best_s": null,
            "tuples": null_tuples,
            "overhead": f"{overhead_null:+.1%}",
        },
        {
            "mode": "telemetry, live memory sink",
            "best_s": live,
            "tuples": live_tuples,
            "overhead": f"{overhead_live:+.1%}",
        },
    ]
    table = format_table(
        rows,
        columns=["mode", "best_s", "tuples", "overhead"],
        title=(
            f"Observability overhead (best of {REPEATS}, "
            f"budget {BUDGET:.0%} for the null sink)"
        ),
    )
    print()
    print(table)
    save_table("observability_overhead", table)

    assert overhead_null < BUDGET, (
        f"null-sink overhead {overhead_null:.1%} exceeds "
        f"the {BUDGET:.0%} budget"
    )
