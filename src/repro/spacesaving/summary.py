"""Stream-Summary data structure backing the SpaceSaving sketch.

The Stream-Summary (Metwally et al., ICDT'05) keeps monitored items in
buckets sorted by count. Buckets form a doubly-linked list in ascending
count order, and each bucket holds a doubly-linked list of item nodes
sharing that count. This makes the three operations SpaceSaving needs
O(1) amortized for unit increments:

- increment the count of a monitored item,
- find the item with the minimum count,
- replace the minimum item with a new one.

Weighted increments are supported by walking forward from the current
bucket; the walk is bounded by the number of distinct counts crossed.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Optional, Tuple


class _Node:
    """A monitored item: its identity and its maximum overestimation."""

    __slots__ = ("item", "error", "bucket", "prev", "next")

    def __init__(self, item: Hashable, error: int) -> None:
        self.item = item
        self.error = error
        self.bucket: Optional[_Bucket] = None
        self.prev: Optional[_Node] = None
        self.next: Optional[_Node] = None


class _Bucket:
    """All monitored items sharing one count value."""

    __slots__ = ("count", "head", "prev", "next")

    def __init__(self, count: int) -> None:
        self.count = count
        self.head: Optional[_Node] = None
        self.prev: Optional[_Bucket] = None
        self.next: Optional[_Bucket] = None

    def attach(self, node: _Node) -> None:
        node.bucket = self
        node.prev = None
        node.next = self.head
        if self.head is not None:
            self.head.prev = node
        self.head = node

    def detach(self, node: _Node) -> None:
        if node.prev is not None:
            node.prev.next = node.next
        else:
            self.head = node.next
        if node.next is not None:
            node.next.prev = node.prev
        node.prev = None
        node.next = None
        node.bucket = None

    @property
    def empty(self) -> bool:
        return self.head is None


class StreamSummary:
    """Bucketed counter structure with O(1) min lookup and increment.

    This class only manages counts; the *policy* of which item to evict
    (SpaceSaving) lives in :class:`repro.spacesaving.sketch.SpaceSaving`.

    Parameters
    ----------
    capacity:
        Maximum number of monitored items. Must be >= 1.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._nodes: dict = {}
        # Sentinel-free list: _min_bucket is the bucket with the smallest
        # count, _max_bucket the largest.
        self._min_bucket: Optional[_Bucket] = None
        self._max_bucket: Optional[_Bucket] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._nodes

    @property
    def full(self) -> bool:
        return len(self._nodes) >= self._capacity

    def count_of(self, item: Hashable) -> Tuple[int, int]:
        """Return ``(count, error)`` for a monitored item.

        Raises
        ------
        KeyError
            If the item is not currently monitored.
        """
        node = self._nodes[item]
        assert node.bucket is not None
        return node.bucket.count, node.error

    def min_count(self) -> int:
        """Count of the least-frequent monitored item (0 when empty)."""
        if self._min_bucket is None:
            return 0
        return self._min_bucket.count

    def min_item(self) -> Hashable:
        """The item that would be evicted next.

        Raises
        ------
        KeyError
            If the structure is empty.
        """
        if self._min_bucket is None or self._min_bucket.head is None:
            raise KeyError("StreamSummary is empty")
        return self._min_bucket.head.item

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(self, item: Hashable, count: int, error: int) -> None:
        """Start monitoring a new item with the given count and error."""
        if item in self._nodes:
            raise ValueError(f"item {item!r} already monitored")
        if len(self._nodes) >= self._capacity:
            raise ValueError("StreamSummary is full; evict before insert")
        node = _Node(item, error)
        bucket = self._find_or_create_bucket(count, start=self._min_bucket)
        bucket.attach(node)
        self._nodes[item] = node

    def increment(self, item: Hashable, weight: int = 1) -> int:
        """Add ``weight`` to a monitored item's count; return the new count."""
        if weight < 1:
            raise ValueError(f"weight must be >= 1, got {weight}")
        return self._bump(self._nodes[item], weight)

    def increment_if_present(self, item: Hashable, weight: int = 1):
        """Like :meth:`increment`, but return ``None`` (instead of
        raising) when ``item`` is not monitored.

        The single ``dict.get`` replaces the membership-test-then-
        increment double lookup of the sketch's hot path.
        """
        if weight < 1:
            raise ValueError(f"weight must be >= 1, got {weight}")
        node = self._nodes.get(item)
        if node is None:
            return None
        return self._bump(node, weight)

    def _bump(self, node: _Node, weight: int) -> int:
        """Move ``node`` to the bucket for its incremented count.

        The unit-increment case (the SpaceSaving hot path) never needs
        the generic bucket walk: the target is either the immediately
        next bucket (equal count) or a fresh bucket right after the
        current one — and when the node is alone in its bucket, the
        bucket is retagged or merged in place with zero link traffic.
        """
        old_bucket = node.bucket
        new_count = old_bucket.count + weight
        nxt = old_bucket.next
        if nxt is None or nxt.count >= new_count:
            prev_node = node.prev
            next_node = node.next
            if prev_node is None and next_node is None:
                # Singleton bucket: merge into the next bucket when the
                # counts collide, otherwise just retag it in place (the
                # ascending order is preserved: prev.count < old count
                # < new_count <= next.count).
                if nxt is not None and nxt.count == new_count:
                    prev_bucket = old_bucket.prev
                    if prev_bucket is not None:
                        prev_bucket.next = nxt
                    else:
                        self._min_bucket = nxt
                    nxt.prev = prev_bucket
                    old_bucket.prev = None
                    old_bucket.next = None
                    node.bucket = nxt
                    head = nxt.head
                    node.next = head
                    if head is not None:
                        head.prev = node
                    nxt.head = node
                else:
                    old_bucket.count = new_count
                return new_count
            # Detach (inlined: the node list is only prepended to).
            if prev_node is not None:
                prev_node.next = next_node
            else:
                old_bucket.head = next_node
            if next_node is not None:
                next_node.prev = prev_node
            node.prev = None
            if nxt is not None and nxt.count == new_count:
                target = nxt
            else:
                target = self._insert_bucket_after(old_bucket, new_count)
            node.bucket = target
            head = target.head
            node.next = head
            if head is not None:
                head.prev = node
            target.head = node
            return new_count
        # Weighted jump across several buckets: generic walk.
        old_bucket.detach(node)
        target = self._find_or_create_bucket(new_count, start=old_bucket)
        target.attach(node)
        if old_bucket.empty:
            self._remove_bucket(old_bucket)
        return new_count

    def replace_min(
        self, item: Hashable, count: int, error: int
    ) -> Tuple[Hashable, int]:
        """Evict the least-frequent item and monitor ``item`` in its
        node's place; return ``(evicted_item, evicted_count)``.

        Equivalent to ``evict_min()`` followed by ``insert(item, count,
        error)`` (``count`` must be at least the evicted count plus one)
        but reuses the evicted node and its bucket position, so the
        SpaceSaving replacement step costs one :meth:`_bump` instead of
        a node allocation plus a bucket search from the minimum.
        """
        bucket = self._min_bucket
        if bucket is None or bucket.head is None:
            raise KeyError("StreamSummary is empty")
        if item in self._nodes:
            raise ValueError(f"item {item!r} already monitored")
        node = bucket.head
        min_count = bucket.count
        if count <= min_count:
            raise ValueError(
                f"replacement count {count} must exceed the evicted "
                f"count {min_count}"
            )
        del self._nodes[node.item]
        evicted = node.item
        node.item = item
        node.error = error
        self._nodes[item] = node
        self._bump(node, count - min_count)
        return evicted, min_count

    def evict_min(self) -> Tuple[Hashable, int]:
        """Remove and return ``(item, count)`` of the least-frequent item."""
        if self._min_bucket is None or self._min_bucket.head is None:
            raise KeyError("StreamSummary is empty")
        bucket = self._min_bucket
        node = bucket.head
        assert node is not None
        count = bucket.count
        bucket.detach(node)
        if bucket.empty:
            self._remove_bucket(bucket)
        del self._nodes[node.item]
        return node.item, count

    def clear(self) -> None:
        """Forget every monitored item."""
        self._nodes.clear()
        self._min_bucket = None
        self._max_bucket = None

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------

    def items_descending(self) -> Iterator[Tuple[Hashable, int, int]]:
        """Yield ``(item, count, error)`` from most to least frequent."""
        bucket = self._max_bucket
        while bucket is not None:
            node = bucket.head
            while node is not None:
                yield node.item, bucket.count, node.error
                node = node.next
            bucket = bucket.prev

    def items_ascending(self) -> Iterator[Tuple[Hashable, int, int]]:
        """Yield ``(item, count, error)`` from least to most frequent."""
        bucket = self._min_bucket
        while bucket is not None:
            node = bucket.head
            while node is not None:
                yield node.item, bucket.count, node.error
                node = node.next
            bucket = bucket.next

    # ------------------------------------------------------------------
    # Internal bucket-list maintenance
    # ------------------------------------------------------------------

    def _find_or_create_bucket(
        self, count: int, start: Optional[_Bucket]
    ) -> _Bucket:
        """Locate the bucket for ``count``, creating it if needed.

        The search walks forward (towards larger counts) from ``start``,
        which for unit increments visits at most one existing bucket.
        """
        if self._min_bucket is None:
            bucket = _Bucket(count)
            self._min_bucket = bucket
            self._max_bucket = bucket
            return bucket

        cursor = start if start is not None else self._min_bucket
        # Back up if the starting point overshoots (only possible when the
        # caller passes an arbitrary start).
        while cursor.prev is not None and cursor.count > count:
            cursor = cursor.prev
        while cursor.next is not None and cursor.next.count <= count:
            cursor = cursor.next

        if cursor.count == count:
            return cursor
        if cursor.count < count:
            return self._insert_bucket_after(cursor, count)
        return self._insert_bucket_before(cursor, count)

    def _insert_bucket_after(self, anchor: _Bucket, count: int) -> _Bucket:
        bucket = _Bucket(count)
        bucket.prev = anchor
        bucket.next = anchor.next
        if anchor.next is not None:
            anchor.next.prev = bucket
        else:
            self._max_bucket = bucket
        anchor.next = bucket
        return bucket

    def _insert_bucket_before(self, anchor: _Bucket, count: int) -> _Bucket:
        bucket = _Bucket(count)
        bucket.next = anchor
        bucket.prev = anchor.prev
        if anchor.prev is not None:
            anchor.prev.next = bucket
        else:
            self._min_bucket = bucket
        anchor.prev = bucket
        return bucket

    def _remove_bucket(self, bucket: _Bucket) -> None:
        if bucket.prev is not None:
            bucket.prev.next = bucket.next
        else:
            self._min_bucket = bucket.next
        if bucket.next is not None:
            bucket.next.prev = bucket.prev
        else:
            self._max_bucket = bucket.prev
        bucket.prev = None
        bucket.next = None
