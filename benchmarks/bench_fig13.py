"""Figure 13: throughput over time with/without reconfiguration on the
stable Flickr-like workload, at 10 Gb/s and 1 Gb/s and several tuple
sizes. (Time axis compressed; see experiments.py.)

Paper claims asserted:
- a significant throughput improvement follows the first
  reconfiguration and is maintained;
- deploying tables and migrating state does not dent throughput
  (the jump is visible immediately after the reconfiguration);
- the gain grows with tuple size, and more on the slower network.
"""

import pytest

from helpers import save_table
from repro.analysis.experiments import fig13
from repro.analysis.report import format_table


@pytest.fixture(scope="module")
def rows(quick):
    return fig13(quick=quick)


def _pair(rows, bandwidth, padding):
    with_reconf = next(
        r for r in rows
        if r["bandwidth_gbps"] == bandwidth and r["padding"] == padding
        and r["reconfigure"]
    )
    without = next(
        r for r in rows
        if r["bandwidth_gbps"] == bandwidth and r["padding"] == padding
        and not r["reconfigure"]
    )
    return with_reconf, without


def test_fig13_regenerate(rows, benchmark):
    benchmark.pedantic(
        lambda: fig13(quick=True), rounds=1, iterations=1
    )
    summary = [
        {
            "bandwidth_gbps": r["bandwidth_gbps"],
            "padding": r["padding"],
            "reconfigure": r["reconfigure"],
            "before_Kts": r["mean_before_first_reconf"] / 1e3,
            "after_Kts": r["mean_after_first_reconf"] / 1e3,
            "rounds": r["rounds"],
        }
        for r in rows
    ]
    table = format_table(summary, title="Figure 13: reconfiguration effect")
    print()
    print(table)
    save_table("fig13", table)


def test_fig13_jump_after_first_reconfiguration(rows):
    for row in rows:
        if not row["reconfigure"]:
            continue
        assert row["rounds"] >= 1
        assert (
            row["mean_after_first_reconf"]
            > 1.25 * row["mean_before_first_reconf"]
        ), (row["bandwidth_gbps"], row["padding"])


def test_fig13_beats_no_reconfiguration(rows):
    bandwidths = {r["bandwidth_gbps"] for r in rows}
    paddings = {r["padding"] for r in rows}
    for bandwidth in bandwidths:
        for padding in paddings:
            with_reconf, without = _pair(rows, bandwidth, padding)
            assert (
                with_reconf["mean_after_first_reconf"]
                > 1.2 * without["mean_after_first_reconf"]
            )


def test_fig13_no_dip_during_migration(rows):
    """Throughput after a reconfiguration never collapses below the
    pre-reconfiguration level. (Our sampler is far finer-grained than
    the paper's minutes-scale plot, so it can see the few-ms migration
    transient; the claim is that there is no *sustained* dip.)"""
    for row in rows:
        if not row["reconfigure"]:
            continue
        before = row["mean_before_first_reconf"]
        samples = [s for s in row["samples"] if s["time"] > 0.5]
        floor = min(s["throughput"] for s in samples)
        assert floor > 0.5 * before, (row["bandwidth_gbps"], row["padding"])
        # No two consecutive samples below the pre-reconf level.
        low = [s["throughput"] < 0.9 * before for s in samples]
        assert not any(a and b for a, b in zip(low, low[1:]))


def test_fig13_gain_grows_with_tuple_size(rows, quick):
    if quick:
        pytest.skip("needs the full padding grid")
    paddings = sorted({r["padding"] for r in rows})

    def gain(bandwidth, padding):
        with_reconf, without = _pair(rows, bandwidth, padding)
        return (
            with_reconf["mean_after_first_reconf"]
            / without["mean_after_first_reconf"]
        )

    # On the fast network the small-tuple runs are partly CPU-bound, so
    # the reconfiguration gain grows with tuple size (the paper's
    # claim). On the throttled 1 Gb/s network our model is fully
    # NIC-saturated at every padding, so the gain is already at its
    # ceiling (the remote-byte ratio) and stays flat-large there.
    assert gain(10.0, paddings[-1]) > gain(10.0, paddings[0]) * 1.02
    for padding in paddings:
        assert gain(1.0, padding) > 1.8
