"""Campaign files: schema, loading, validation.

A campaign file is YAML (or JSON — anything ``json.loads`` accepts is
also valid YAML) with this shape::

    campaign: matrix-quick          # slug; names the report directory
    description: one-line intent    # optional, shown in the report
    runner: episode                 # see RUNNER_NAMES below
    matrix:                         # axes crossed into cells
      hybrid: [false, true]
      rescale: [false, true]
      delta_propagation: [true, false]
      compact_tables: [false, true]
      faults: [false, true]
    defaults:                       # fixed per-cell parameters
      parallelism: 3
    seeds: [7]                      # each cell runs once per seed
    timeout_s: 120                  # per-cell wall-clock budget
    workers: 0                      # parallel workers; 0 = cpu count
    baseline: baselines/matrix-quick.json   # relative to this file
    tolerance: 0.20                 # regression gate threshold
    axes:                           # directions for unsuffixed metrics
      locality: higher
      load_balance: lower

Validation is strict: unknown top-level keys, empty axes, non-scalar
axis values, or an unregistered runner all raise
:class:`CampaignError` naming the offending key, so a typo'd campaign
fails at load time instead of silently sweeping the wrong grid.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: runner names accepted by ``runner:`` (see repro.campaign.runners)
RUNNER_NAMES = (
    "episode",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "skew",
    "backend",
)

#: every key a campaign file may set at the top level
KNOWN_KEYS = {
    "campaign",
    "description",
    "runner",
    "matrix",
    "defaults",
    "seeds",
    "timeout_s",
    "workers",
    "baseline",
    "tolerance",
    "axes",
}

_SLUG = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_AXIS_NAME = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


class CampaignError(Exception):
    """A campaign file failed to load or validate."""


@dataclass
class CampaignConfig:
    """A validated campaign definition."""

    name: str
    runner: str
    matrix: Dict[str, List[Any]]
    defaults: Dict[str, Any] = field(default_factory=dict)
    seeds: List[int] = field(default_factory=lambda: [0])
    description: str = ""
    timeout_s: float = 120.0
    workers: int = 0
    #: committed baseline path, resolved relative to the campaign file
    baseline: Optional[str] = None
    tolerance: float = 0.20
    #: extra metric directions: name -> "higher" | "lower"
    axes: Dict[str, str] = field(default_factory=dict)
    #: absolute path of the campaign file this config came from
    source: str = ""

    @property
    def cells_per_seed(self) -> int:
        count = 1
        for values in self.matrix.values():
            count *= len(values)
        return count

    def baseline_path(self) -> Optional[str]:
        """Absolute path of the committed baseline, or None."""
        if not self.baseline:
            return None
        if os.path.isabs(self.baseline):
            return self.baseline
        return os.path.normpath(
            os.path.join(os.path.dirname(self.source), self.baseline)
        )


def _parse(text: str, path: str) -> Dict:
    """Parse campaign text: JSON first (a strict subset and always
    available), then YAML when PyYAML is installed."""
    try:
        return json.loads(text)
    except ValueError:
        pass
    try:
        import yaml
    except ImportError as exc:  # pragma: no cover - env without pyyaml
        raise CampaignError(
            f"{path}: not valid JSON and PyYAML is not installed; "
            f"install pyyaml or rewrite the campaign as JSON"
        ) from exc
    try:
        data = yaml.safe_load(text)
    except yaml.YAMLError as exc:
        raise CampaignError(f"{path}: invalid YAML: {exc}") from exc
    return data


def _scalar(value: Any) -> bool:
    return isinstance(value, (bool, int, float, str))


def validate(data: Any, path: str = "<campaign>") -> CampaignConfig:
    """Validate raw campaign data into a :class:`CampaignConfig`."""
    if not isinstance(data, dict):
        raise CampaignError(
            f"{path}: campaign must be a mapping, got {type(data).__name__}"
        )
    unknown = sorted(set(data) - KNOWN_KEYS)
    if unknown:
        raise CampaignError(
            f"{path}: unknown key(s) {', '.join(map(repr, unknown))}; "
            f"expected a subset of {sorted(KNOWN_KEYS)}"
        )
    for key in ("campaign", "runner", "matrix"):
        if key not in data:
            raise CampaignError(f"{path}: missing required key {key!r}")

    name = data["campaign"]
    if not isinstance(name, str) or not _SLUG.match(name):
        raise CampaignError(
            f"{path}: 'campaign' must be a slug "
            f"(letters, digits, . _ -), got {name!r}"
        )
    runner = data["runner"]
    if runner not in RUNNER_NAMES:
        raise CampaignError(
            f"{path}: unknown runner {runner!r}; one of {RUNNER_NAMES}"
        )

    matrix = data["matrix"]
    if not isinstance(matrix, dict) or not matrix:
        raise CampaignError(f"{path}: 'matrix' must be a non-empty mapping")
    for axis, values in matrix.items():
        if not isinstance(axis, str) or not _AXIS_NAME.match(axis):
            raise CampaignError(
                f"{path}: matrix axis {axis!r} is not an identifier"
            )
        if not isinstance(values, list) or not values:
            raise CampaignError(
                f"{path}: matrix axis {axis!r} must list at least one value"
            )
        for value in values:
            if not _scalar(value):
                raise CampaignError(
                    f"{path}: matrix axis {axis!r} has non-scalar "
                    f"value {value!r}"
                )
        if len(set(map(repr, values))) != len(values):
            raise CampaignError(
                f"{path}: matrix axis {axis!r} repeats a value"
            )

    defaults = data.get("defaults", {}) or {}
    if not isinstance(defaults, dict):
        raise CampaignError(f"{path}: 'defaults' must be a mapping")
    overlap = sorted(set(defaults) & set(matrix))
    if overlap:
        raise CampaignError(
            f"{path}: key(s) {', '.join(map(repr, overlap))} appear in "
            f"both 'defaults' and 'matrix'"
        )

    seeds = data.get("seeds", [0])
    if (
        not isinstance(seeds, list)
        or not seeds
        or not all(isinstance(s, int) and not isinstance(s, bool) for s in seeds)
    ):
        raise CampaignError(
            f"{path}: 'seeds' must be a non-empty list of ints"
        )
    if len(set(seeds)) != len(seeds):
        raise CampaignError(f"{path}: 'seeds' repeats a seed")

    timeout_s = data.get("timeout_s", 120.0)
    if not isinstance(timeout_s, (int, float)) or timeout_s <= 0:
        raise CampaignError(f"{path}: 'timeout_s' must be > 0")
    workers = data.get("workers", 0)
    if not isinstance(workers, int) or isinstance(workers, bool) or workers < 0:
        raise CampaignError(f"{path}: 'workers' must be an int >= 0")
    tolerance = data.get("tolerance", 0.20)
    if not isinstance(tolerance, (int, float)) or tolerance < 0:
        raise CampaignError(f"{path}: 'tolerance' must be >= 0")

    baseline = data.get("baseline")
    if baseline is not None and not isinstance(baseline, str):
        raise CampaignError(f"{path}: 'baseline' must be a path string")

    axes = data.get("axes", {}) or {}
    if not isinstance(axes, dict):
        raise CampaignError(f"{path}: 'axes' must be a mapping")
    for metric, direction in axes.items():
        if direction not in ("higher", "lower"):
            raise CampaignError(
                f"{path}: axes[{metric!r}] must be 'higher' or 'lower', "
                f"got {direction!r}"
            )

    description = data.get("description", "") or ""
    if not isinstance(description, str):
        raise CampaignError(f"{path}: 'description' must be a string")

    return CampaignConfig(
        name=name,
        runner=runner,
        matrix={axis: list(values) for axis, values in matrix.items()},
        defaults=dict(defaults),
        seeds=list(seeds),
        description=description,
        timeout_s=float(timeout_s),
        workers=workers,
        baseline=baseline,
        tolerance=float(tolerance),
        axes=dict(axes),
        source=path,
    )


def load_campaign(path: str) -> CampaignConfig:
    """Load and validate one campaign file."""
    if not os.path.isfile(path):
        raise CampaignError(f"{path}: no such campaign file")
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    data = _parse(text, path)
    return validate(data, path=os.path.abspath(path))
