"""End-to-end elastic rescaling: online add/remove of POI instances.

The acceptance scenario of the elasticity work: a scripted episode
doubles the hot operator's parallelism mid-stream and must finish with
zero invariant violations and exactly the same end-state word counts
as a fixed-parallelism run; with the controller constructed but never
started, the simulator fingerprint must be identical to a run without
any elasticity code at all.
"""

import random
from collections import Counter

import pytest

from repro.core import (
    ElasticityConfig,
    ElasticityController,
    Manager,
    ManagerConfig,
)
from repro.engine import (
    Cluster,
    CountBolt,
    Simulator,
    TableFieldsGrouping,
    TopologyBuilder,
    deploy,
)
from repro.engine.operators import IteratorSpout
from repro.errors import ReconfigurationError
from repro.testing.invariants import InvariantSuite

SPOUTS = 2
PER_SPOUT = 15000
KEYS = 40


def _source(ctx):
    """Deterministic per-spout-instance key sequence (skewed so the
    partitioner has real work and queues actually build up)."""
    rng = random.Random(1000 + ctx.instance_index)
    for _ in range(PER_SPOUT):
        a = min(rng.randrange(KEYS), rng.randrange(KEYS))
        yield (a, a + 100)


def _ground_truth():
    truth_a, truth_b = Counter(), Counter()
    for i in range(SPOUTS):
        rng = random.Random(1000 + i)
        for _ in range(PER_SPOUT):
            a = min(rng.randrange(KEYS), rng.randrange(KEYS))
            truth_a[a] += 1
            truth_b[a + 100] += 1
    return truth_a, truth_b


def _build(bolts):
    builder = TopologyBuilder()
    builder.spout("S", lambda: IteratorSpout(_source), parallelism=SPOUTS)
    builder.bolt(
        "A",
        lambda: CountBolt(0, forward=True),
        parallelism=bolts,
        inputs={"S": TableFieldsGrouping(0)},
    )
    builder.bolt(
        "B",
        lambda: CountBolt(1, forward=False),
        parallelism=bolts,
        inputs={"A": TableFieldsGrouping(1)},
    )
    return builder.build()


def _deployed(bolts, **config_kwargs):
    sim = Simulator()
    cluster = Cluster(sim, bolts)
    deployment = deploy(sim, cluster, _build(bolts))
    manager = Manager(deployment, ManagerConfig(**config_kwargs))
    return sim, deployment, manager


def _state_totals(deployment, op):
    totals = Counter()
    for executor in deployment.instances(op):
        for key, count in executor.operator.state.items():
            totals[key] += count
    return totals


def _rescale_with_retry(sim, manager, target, done):
    """Keep asking until the manager is free to start the rescale."""

    def attempt():
        if manager.rescale(target, on_complete=done.append):
            return
        if manager.tier_parallelism == target:
            return
        sim.schedule(0.005, attempt)

    attempt()


class TestScaleOut:
    def _run_scale_out(self, period_s=0.05):
        sim, deployment, manager = _deployed(2, period_s=period_s)
        suite = InvariantSuite(deployment, manager).attach()
        done = []
        if period_s is not None:
            manager.start()
        deployment.start()
        sim.schedule(0.08, _rescale_with_retry, sim, manager, 4, done)
        sim.run(until=0.4)
        manager.stop()
        sim.run()  # drain
        return sim, deployment, manager, suite, done

    def test_doubling_parallelism_mid_stream_is_exact(self):
        sim, deployment, manager, suite, done = self._run_scale_out()

        assert len(done) == 1
        record = done[0]
        assert record.is_rescale
        assert record.rescale_from == 2 and record.rescale_to == 4
        assert not record.aborted
        assert record.rescale_spawned == 4  # 2 ops x 2 new instances
        assert record.rescale_retired == 0

        # The new instance set is fully adopted.
        assert deployment.cluster.num_servers == 4
        for op in ("A", "B"):
            assert len(deployment.executors[op]) == 4
            for executor in deployment.instances(op):
                assert executor.parallelism == 4
        assert manager.tier_parallelism == 4

        # Zero invariant violations, including the rescale-aware ones.
        truth_a, truth_b = _ground_truth()
        suite.final_check({"A": truth_a, "B": truth_b})
        assert suite.violations == []

        # No tuple lost, no count misplaced.
        assert deployment.metrics.processed_total("B") == SPOUTS * PER_SPOUT
        assert _state_totals(deployment, "A") == truth_a
        assert _state_totals(deployment, "B") == truth_b

    def test_end_state_matches_fixed_parallelism_run(self):
        sim, deployment, manager, suite, done = self._run_scale_out()

        fixed_sim, fixed_deployment, fixed_manager = _deployed(
            2, period_s=0.05
        )
        fixed_manager.start()
        fixed_deployment.start()
        fixed_sim.run(until=0.4)
        fixed_manager.stop()
        fixed_sim.run()

        for op in ("A", "B"):
            assert _state_totals(deployment, op) == _state_totals(
                fixed_deployment, op
            )

    def test_new_instances_absorb_traffic(self):
        sim, deployment, manager, suite, done = self._run_scale_out()
        received = deployment.metrics.received
        newcomers = sum(
            received[("A", i)] + received[("B", i)] for i in (2, 3)
        )
        assert newcomers > 0, "spawned instances never saw a tuple"


class TestScaleIn:
    def test_scale_in_retires_and_conserves(self):
        sim, deployment, manager = _deployed(3, period_s=0.05)
        suite = InvariantSuite(deployment, manager).attach()
        done = []
        manager.start()
        deployment.start()
        sim.schedule(0.08, _rescale_with_retry, sim, manager, 2, done)
        sim.run(until=0.4)
        manager.stop()
        sim.run()

        assert len(done) == 1
        record = done[0]
        assert record.is_rescale and not record.aborted
        assert record.rescale_from == 3 and record.rescale_to == 2
        assert record.rescale_retired == 2  # one per bolt op
        for op in ("A", "B"):
            assert len(deployment.executors[op]) == 2
            for executor in deployment.instances(op):
                assert executor.parallelism == 2

        truth_a, truth_b = _ground_truth()
        suite.final_check({"A": truth_a, "B": truth_b})
        assert suite.violations == []
        assert deployment.metrics.processed_total("B") == SPOUTS * PER_SPOUT


class TestControllerDeterminism:
    def _fingerprint(self, with_controller):
        sim, deployment, manager = _deployed(2, period_s=0.05)
        sim.enable_fingerprint()
        if with_controller:
            ElasticityController(manager)  # constructed, never started
        manager.start()
        deployment.start()
        sim.run(until=0.3)
        manager.stop()
        sim.run()
        return sim.fingerprint

    def test_disabled_controller_leaves_fingerprint_unchanged(self):
        assert self._fingerprint(False) == self._fingerprint(True)


class TestControllerDecisions:
    def test_controller_scales_out_under_load(self):
        sim, deployment, manager = _deployed(2, period_s=0.05)
        controller = ElasticityController(
            manager,
            ElasticityConfig(
                check_period_s=0.02,
                scale_out_queue_depth=4.0,
                scale_in_queue_depth=-1.0,  # never scale back in
                max_parallelism=4,
                cooldown_s=0.05,
            ),
        )
        manager.start()
        controller.start()
        deployment.start()
        sim.run(until=0.4)
        controller.stop()
        manager.stop()
        sim.run()

        triggered = [d for d in controller.decisions if d.started]
        assert triggered, "controller never triggered a rescale"
        assert triggered[0].to_parallelism == 3
        assert manager.tier_parallelism > 2
        rescales = [r for r in manager.rounds if r.is_rescale]
        assert any(not r.aborted and r.completed_at for r in rescales)
        assert (
            deployment.metrics.processed_total("B") == SPOUTS * PER_SPOUT
        )

    def test_controller_scales_in_when_idle(self):
        sim, deployment, manager = _deployed(3, period_s=None)
        controller = ElasticityController(
            manager,
            ElasticityConfig(
                check_period_s=0.02,
                scale_out_queue_depth=1e9,
                scale_in_queue_depth=5.0,
                scale_in_consecutive=2,
                min_parallelism=2,
                cooldown_s=0.01,
            ),
        )
        controller.start()
        deployment.start()
        sim.run(until=0.5)
        controller.stop()
        sim.run()

        assert manager.tier_parallelism == 2
        assert (
            deployment.metrics.processed_total("B") == SPOUTS * PER_SPOUT
        )


class TestRescaleValidation:
    def test_rescale_rejects_bad_parallelism(self):
        sim, deployment, manager = _deployed(2, period_s=None)
        with pytest.raises(ReconfigurationError):
            manager.rescale(0)

    def test_rescale_noop_and_busy_are_refused(self):
        sim, deployment, manager = _deployed(2, period_s=None)
        deployment.start()
        sim.run(until=0.05)
        assert manager.rescale(2) is False  # already at 2
        assert manager.rescale(3) is True
        assert manager.rescale(4) is False  # round in flight
        assert manager.reconfigure() is False
        sim.run(until=0.3)
        assert manager.tier_parallelism == 3
