"""The fault injector: attaches a FaultPlan to a live deployment.

The injector is the single object behind all three engine hooks (see
:mod:`repro.faults.plan`). It records every injected fault in
:attr:`FaultInjector.log` and mirrors per-action counts into the
deployment's :class:`~repro.engine.metrics.MetricsHub` (``faults``),
so chaos tests can assert both that faults actually fired and that the
system absorbed them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.engine.executor import BaseExecutor, BoltExecutor, ControlMessage
from repro.errors import FaultInjectionError
from repro.faults.plan import (
    CRASH,
    DELAY,
    DROP,
    DUPLICATE,
    REORDER,
    RPC_STEPS,
    FaultPlan,
)


class FaultInjector:
    """Applies a :class:`FaultPlan` to one deployment.

    Usage::

        injector = FaultInjector(plan).attach(deployment, manager)
        ... run the simulation ...
        injector.log         # what fired, when, where
    """

    def __init__(self, plan: FaultPlan) -> None:
        plan.validate()
        self.plan = plan
        #: (time, action, target, detail) of every injected fault
        self.log: List[Tuple[float, str, str, str]] = []
        self._sim = None
        self._metrics = None
        self._manager = None
        #: executor -> messages held back by reorder rules
        self._held: Dict[BaseExecutor, List[ControlMessage]] = {}
        self._rpc_methods = set(RPC_STEPS.values())
        # cache bound hooks so detach() can compare identities
        self._transfer_hook = self._on_transfer
        self._event_hook = self._on_event

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------

    def attach(self, deployment, manager=None) -> "FaultInjector":
        self._sim = deployment.sim
        self._metrics = deployment.metrics
        self._manager = manager
        for executor in deployment.all_executors():
            executor.fault_hook = self
        if self.plan.links:
            deployment.cluster.network.fault_hook = self._transfer_hook
        if self.plan.rpcs:
            if manager is None:
                raise FaultInjectionError(
                    "rpc faults target the manager; pass it to attach()"
                )
            self._sim.interceptor = self._event_hook
        for crash in self.plan.crashes:
            executor = deployment.executor(crash.op, crash.instance)
            self._require_crashable(executor)
            self._sim.schedule_at(
                crash.at_s, self._crash, executor, crash.down_s
            )
        return self

    def detach(self, deployment) -> None:
        for executor in deployment.all_executors():
            if executor.fault_hook is self:
                executor.fault_hook = None
        if deployment.cluster.network.fault_hook is self._transfer_hook:
            deployment.cluster.network.fault_hook = None
        if deployment.sim.interceptor is self._event_hook:
            deployment.sim.interceptor = None

    @staticmethod
    def _require_crashable(executor) -> None:
        if not isinstance(executor, BoltExecutor):
            raise FaultInjectionError(
                f"{executor.name} cannot crash (only bolt executors "
                f"model crash/restart)"
            )

    # ------------------------------------------------------------------
    # Hook: executor control deliveries (in-band PROPAGATE / MIGRATE)
    # ------------------------------------------------------------------

    def on_control(self, executor: BaseExecutor, msg: ControlMessage) -> bool:
        """Called by ``BaseExecutor.deliver_control``; True = consumed."""
        rule = None
        for candidate in self.plan.control:
            if candidate.matches(executor, msg):
                rule = candidate
                break
        if rule is not None:
            rule.matched += 1
            self._record(rule.action, executor.name, msg)
            if rule.action == DROP:
                return True
            if rule.action == DELAY:
                self._sim.schedule(
                    rule.delay_s, executor.accept_control, msg
                )
                return True
            if rule.action == DUPLICATE:
                executor.accept_control(msg)
                self._flush_held(executor)
                executor.accept_control(self._copy(msg))
                return True
            if rule.action == REORDER:
                self._held.setdefault(executor, []).append(msg)
                return True
            if rule.action == CRASH:
                self._require_crashable(executor)
                executor.crash(rule.down_s)
                # the message goes down with the POI (accept_control
                # drops it and counts the drop in metrics)
                executor.accept_control(msg)
                return True
        if executor in self._held:
            # A reorder rule held an earlier message: let this one
            # overtake it, then release the held ones.
            executor.accept_control(msg)
            self._flush_held(executor)
            return True
        return False

    def _flush_held(self, executor: BaseExecutor) -> None:
        for held in self._held.pop(executor, []):
            executor.accept_control(held)

    @staticmethod
    def _copy(msg: ControlMessage) -> ControlMessage:
        return ControlMessage(msg.kind, msg.payload, msg.sender, msg.size)

    # ------------------------------------------------------------------
    # Hook: simulator events (out-of-band manager RPC legs)
    # ------------------------------------------------------------------

    def _on_event(self, event) -> bool:
        fn = event.fn
        if getattr(fn, "__self__", None) is not self._manager:
            return True
        name = fn.__name__
        if name not in self._rpc_methods:
            return True
        for rule in self.plan.rpcs:
            if not rule.matches(name):
                continue
            rule.matched += 1
            self._record(f"rpc_{rule.action}", name, None)
            if rule.action == DROP:
                return False
            if rule.action == DELAY:
                self._sim.schedule(rule.delay_s, fn, *event.args)
                return False
        return True

    # ------------------------------------------------------------------
    # Hook: network transfers (wire-level link delays)
    # ------------------------------------------------------------------

    def _on_transfer(self, src, dst, nbytes, fn, args) -> float:
        is_control = bool(args) and isinstance(args[0], ControlMessage)
        extra = 0.0
        for link in self.plan.links:
            if link.control_only and not is_control:
                continue
            if link.src_server is not None and link.src_server != src.index:
                continue
            if link.dst_server is not None and link.dst_server != dst.index:
                continue
            if (
                link.max_matches is not None
                and link.matched >= link.max_matches
            ):
                continue
            link.matched += 1
            extra += link.extra_s
            self._record(
                "link_delay", f"server{src.index}->server{dst.index}",
                args[0] if is_control else None,
            )
        return extra

    # ------------------------------------------------------------------
    # Crashes and bookkeeping
    # ------------------------------------------------------------------

    def _crash(self, executor, down_s: float) -> None:
        self._record("crash", executor.name, None)
        executor.crash(down_s)

    def _record(
        self, action: str, target: str, msg: Optional[ControlMessage]
    ) -> None:
        detail = "" if msg is None else repr(msg)
        self.log.append((self._sim.now, action, target, detail))
        if self._metrics is not None:
            self._metrics.on_fault(action)

    @property
    def injected(self) -> int:
        """Total number of faults that actually fired."""
        return len(self.log)
