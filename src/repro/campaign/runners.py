"""What one campaign cell runs.

Four runners are registered:

``episode``
    A fuzz-grade deployment episode (``repro.testing``): PairsWorkload
    topology, periodic reconfiguration, the full invariant suite armed,
    simulator event fingerprint enabled. Boolean axes toggle features —
    ``hybrid`` (hot-key splitting), ``rescale`` (scripted mid-stream
    rescales), ``faults`` (a conservation-safe chaos plan),
    ``delta_propagation`` and ``compact_tables`` (wire-format flags) —
    while structured sub-configs (the fault plan, the rescale schedule,
    the hybrid knobs) are drawn deterministically from the cell seed,
    so the same cell id always runs the identical episode and must
    reproduce the identical fingerprint.

``fig13``
    One (bandwidth, padding) point of the Figure 13 locality sweep,
    with and without reconfiguration, ported from
    ``benchmarks/bench_fig13.py``.

``skew``
    One (exponent, flash_share, policy) point of the PR 6 skew
    experiment, ported from the ``skew`` figure.

``backend``
    Cross-backend equivalence (DESIGN.md §15): run one scenario
    (``fig13`` / ``skew`` / ``rescale``) on the reference DES and the
    vectorized fast path from identical finite inputs, compare with
    :func:`repro.testing.equivalence.compare_backends`, and report the
    speedup. Any broken invariant lands in the cell's ``violations``
    exactly like an episode-cell invariant breach, so the campaign
    report gates it. ``backend: reference`` / ``backend: vectorized``
    run one side only (for timing axes).

Every runner returns a :class:`CellOutcome` whose ``metrics`` follow
the ``tools/bench_record.py`` axis convention (``*_per_s`` higher is
better; unsuffixed metrics get their direction from the campaign's
``axes:`` mapping).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

#: EpisodeConfig scalar fields a campaign may set directly (defaults
#: or matrix axes); feature toggles and seeds are handled separately.
EPISODE_PARAMS = (
    "parallelism",
    "keys",
    "exponent",
    "correlation",
    "tuples_per_instance",
    "period_s",
    "round_timeout_s",
    "rpc_latency_s",
    "imbalance",
    "until_s",
)

#: boolean feature toggles of the episode runner
EPISODE_FLAGS = (
    "hybrid",
    "rescale",
    "faults",
    "delta_propagation",
    "compact_tables",
)

#: non-boolean episode extras: ``inject`` arms a deliberate bug
#: (harness self-test, mirrors ``python -m repro.testing.fuzz --inject``)
EPISODE_EXTRAS = ("inject",)


@dataclass
class CellOutcome:
    """What one cell produced (worker-side; JSON-serializable)."""

    metrics: Dict[str, float] = field(default_factory=dict)
    #: simulator event-sequence fingerprint (episode cells), hex string
    fingerprint: Optional[str] = None
    violations: List[dict] = field(default_factory=list)
    #: repro bundle payload for a failing episode cell (written next to
    #: the report by the worker so the failure replays anywhere)
    bundle: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return not self.violations


def _unknown(params: Dict[str, Any], allowed: set, runner: str) -> None:
    extra = sorted(set(params) - allowed)
    if extra:
        raise ValueError(
            f"{runner} runner got unknown parameter(s) "
            f"{', '.join(map(repr, extra))}; allowed: {sorted(allowed)}"
        )


def episode_config(params: Dict[str, Any], seed: int):
    """Derive the deterministic EpisodeConfig for one cell.

    Unlike the fuzz driver's ``generate_config`` (which randomizes the
    episode *shape*), a campaign cell is explicit: scalars come from
    the campaign file, and only the structured sub-plans — fault plan,
    rescale schedule, hybrid knobs — are drawn, each from its own
    seed-rooted RNG stream so cell id → episode is a pure function.
    """
    from repro.faults import fault_plan_to_dict, generate_fault_plan
    from repro.testing.episode import EpisodeConfig
    from repro.testing.rng import RngTree

    _unknown(
        params,
        set(EPISODE_PARAMS) | set(EPISODE_FLAGS) | set(EPISODE_EXTRAS),
        "episode",
    )
    config = EpisodeConfig(seed=seed)
    for name in EPISODE_PARAMS:
        if name in params:
            setattr(config, name, params[name])
    config.delta_propagation = bool(params.get("delta_propagation", True))
    config.compact_tables = bool(params.get("compact_tables", False))
    config.inject = params.get("inject")

    tree = RngTree(seed)
    if params.get("faults", False):
        plan = generate_fault_plan(
            tree.rng("campaign", "faults"),
            ops=("A", "B"),
            parallelism=config.parallelism,
            servers=config.parallelism,
            max_rules=4,
            allow_crashes=False,
            horizon_s=config.until_s,
        )
        config.fault_plan = fault_plan_to_dict(plan)
    if params.get("rescale", False):
        rng = tree.rng("campaign", "rescale")
        actions = []
        for _ in range(rng.choice((1, 1, 2))):
            at_s = rng.uniform(0.05, config.until_s * 0.8)
            target = rng.choice((1, 2, 3, 4, 5))
            actions.append([round(at_s, 6), target])
        config.rescales = sorted(actions)
    if params.get("hybrid", False):
        rng = tree.rng("campaign", "hybrid")
        config.hybrid = [
            round(rng.uniform(0.3, 0.8), 6),  # hot_fraction
            rng.choice((2, 2, 3)),  # split_width
            rng.choice((2, 4, 8)),  # max_split_keys
        ]
    return config


def run_episode_cell(params: Dict[str, Any], seed: int) -> CellOutcome:
    from repro.testing.bundle import bundle_data
    from repro.testing.episode import run_episode

    config = episode_config(params, seed)
    result = run_episode(config)
    sim_s = result.sim_now_s or 1.0
    metrics = {
        "sim_tuples_per_s": result.tuples_processed / sim_s,
        "rounds_total": float(result.rounds),
        "rounds_completed": float(result.rounds_completed),
        "rounds_aborted": float(result.rounds_aborted),
        "faults_injected": float(result.faults_injected),
        "violations": float(len(result.violations)),
    }
    return CellOutcome(
        metrics=metrics,
        fingerprint=f"{result.fingerprint:#010x}",
        violations=[v.to_dict() for v in result.violations],
        bundle=bundle_data(result) if result.violations else None,
    )


def run_fig13_cell(params: Dict[str, Any], seed: int) -> CellOutcome:
    from repro.analysis.experiments import fig13

    _unknown(
        params,
        {"bandwidth_gbps", "padding", "parallelism", "quick"},
        "fig13",
    )
    rows = fig13(
        bandwidths=[float(params["bandwidth_gbps"])],
        paddings=[int(params["padding"])],
        parallelism=int(params.get("parallelism", 6)),
        quick=bool(params.get("quick", True)),
    )
    with_reconf = next(r for r in rows if r["reconfigure"])
    without = next(r for r in rows if not r["reconfigure"])
    after_with = with_reconf["mean_after_first_reconf"]
    after_without = without["mean_after_first_reconf"]
    return CellOutcome(
        metrics={
            "after_with_reconf_per_s": after_with,
            "after_without_reconf_per_s": after_without,
            "before_with_reconf_per_s": with_reconf[
                "mean_before_first_reconf"
            ],
            "reconf_gain": after_with / after_without if after_without else 0.0,
            "rounds_completed": float(with_reconf["rounds"]),
        }
    )


def run_skew_cell(params: Dict[str, Any], seed: int) -> CellOutcome:
    from repro.analysis.experiments import skew

    _unknown(
        params,
        {"exponent", "flash_share", "policy", "parallelism"},
        "skew",
    )
    rows = skew(
        exponents=[float(params["exponent"])],
        flash_shares=[float(params["flash_share"])],
        policies=[str(params["policy"])],
        parallelism=int(params.get("parallelism", 4)),
    )
    (row,) = rows
    return CellOutcome(
        metrics={
            "tuples_per_s": row["throughput"],
            "locality": row["locality"],
            "load_balance": row["load_balance"],
        }
    )


#: scenarios the ``backend`` runner can replay on both backends
BACKEND_SCENARIOS = ("fig13", "skew", "rescale")


def _backend_topology_factory(
    scenario: str, params: Dict[str, Any], seed: int
):
    """A zero-arg factory building one *finite* topology per call
    (each backend run needs fresh operator state), plus the comparison
    strictness the scenario's routing admits."""
    parallelism = int(params.get("parallelism", 4))
    tuples_per_instance = int(params.get("tuples_per_instance", 1000))
    strict = {"exact_placements": True, "exact_received": True}

    if scenario == "fig13":
        from repro.workloads.flickr import FlickrConfig, FlickrWorkload

        workload = FlickrWorkload(FlickrConfig(seed=seed))
        padding = int(params.get("padding", 4000))
        factory = lambda: workload.topology(
            parallelism=parallelism,
            padding=padding,
            tuples_per_instance=tuples_per_instance,
        )
        return factory, strict

    if scenario == "skew":
        from repro.workloads.skew import SkewConfig, SkewWorkload

        policy = str(params.get("policy", "table"))
        config = SkewConfig(
            parallelism=parallelism,
            seed=seed,
            tuples_per_instance=tuples_per_instance,
        )
        factory = lambda: SkewWorkload(config).topology(policy)
        if policy == "hybrid":
            # d-choices picks are load-dependent: totals stay exact,
            # placements only guarantee member-set containment
            strict = {"exact_placements": False, "exact_received": False}
        return factory, strict

    raise ValueError(
        f"backend runner got unknown scenario {scenario!r}; "
        f"one of {list(BACKEND_SCENARIOS)}"
    )


def _run_backend_rescale(params: Dict[str, Any], seed: int) -> CellOutcome:
    """The rescale scenario: a real DES ``Manager.rescale`` episode,
    then the same *final decision* replayed on the vectorized backend
    as scripted actions — per-key totals and final placements must
    match exactly (both equal ``owner_of`` under the final table)."""
    import random

    from repro.core import Manager, ManagerConfig
    from repro.engine import (
        CountBolt,
        TableFieldsGrouping,
        TopologyBuilder,
    )
    from repro.engine.backends import (
        BackendOptions,
        ReconfigureAction,
        run_topology,
    )
    from repro.engine.operators import IteratorSpout
    from repro.testing.equivalence import compare_backends

    spouts = int(params.get("parallelism", 3))
    tuples_per_instance = int(params.get("tuples_per_instance", 2000))
    before, after = 2, 4

    def make_topology():
        def source(ctx):
            rng = random.Random(seed * 1000003 + ctx.instance_index)
            for _ in range(tuples_per_instance):
                a = rng.randrange(12)
                yield (a, a + 100)

        builder = TopologyBuilder()
        builder.spout(
            "S", lambda: IteratorSpout(source), parallelism=spouts
        )
        builder.bolt(
            "A",
            lambda: CountBolt(0, forward=True),
            parallelism=before,
            inputs={"S": TableFieldsGrouping(0)},
        )
        builder.bolt(
            "B",
            lambda: CountBolt(1, forward=False),
            parallelism=before,
            inputs={"A": TableFieldsGrouping(1)},
        )
        return builder.build()

    def attach_manager(deployment):
        sim = deployment.sim
        manager = Manager(deployment, ManagerConfig(period_s=None))

        def kick():
            if not manager.rescale(after, on_complete=lambda r: None):
                sim.schedule(0.01, kick)

        sim.schedule(0.02, kick)

    ref = run_topology(
        make_topology(),
        "reference",
        BackendOptions(num_servers=after, on_deployed=attach_manager),
    )
    deployment = ref.handle
    actions = [
        ReconfigureAction(
            tuples_per_instance,
            "S->A",
            deployment.executors["S"][0].table_router("S->A").table,
            after,
        ),
        ReconfigureAction(
            tuples_per_instance,
            "A->B",
            deployment.executors["A"][0].table_router("A->B").table,
            after,
        ),
    ]
    vec = run_topology(
        make_topology(),
        "vectorized",
        BackendOptions(num_servers=after, actions=actions),
    )
    # swap timing differs between the backends, so locality/received
    # are epoch-weighted differently; totals and placements are exact
    report = compare_backends(
        ref, vec, exact_received=False, locality_tol=1.0, balance_tol=1.0
    )
    return _backend_outcome(report, ref, vec)


def _backend_outcome(report, ref, vec) -> CellOutcome:
    speedup = (
        vec.tuples_per_s / ref.tuples_per_s if ref.tuples_per_s else 0.0
    )
    return CellOutcome(
        # wall-clock throughputs deliberately avoid the directed
        # ``_per_s`` suffix: absolute speed is machine noise in CI; the
        # same-machine back-to-back speedup ratio is what gets gated
        metrics={
            "reference_throughput": ref.tuples_per_s,
            "vectorized_throughput": vec.tuples_per_s,
            "vectorized_speedup_x": speedup,
            "locality_delta": abs(ref.locality - vec.locality),
            "equivalent": 0.0 if report.violations else 1.0,
        },
        violations=[v.to_dict() for v in report.violations],
    )


def run_backend_cell(params: Dict[str, Any], seed: int) -> CellOutcome:
    from repro.engine.backends import BackendOptions, run_topology
    from repro.testing.equivalence import run_equivalence

    _unknown(
        params,
        {
            "scenario",
            "backend",
            "parallelism",
            "padding",
            "policy",
            "tuples_per_instance",
            "batch_size",
        },
        "backend",
    )
    scenario = str(params.get("scenario", "fig13"))
    # "skew-hybrid" style values let a campaign sweep scenario+policy
    # on one (scalar-valued) matrix axis without redundant crossings
    if scenario.startswith("skew-"):
        params = dict(params, policy=scenario.partition("-")[2])
        scenario = "skew"
    backend = str(params.get("backend", "both"))
    batch_size = int(params.get("batch_size", 2048))

    if scenario == "rescale":
        if backend != "both":
            raise ValueError(
                "backend runner: the rescale scenario always runs both "
                "backends (the DES decides, the fast path replays)"
            )
        return _run_backend_rescale(params, seed)

    factory, strict = _backend_topology_factory(scenario, params, seed)

    if backend != "both":
        result = run_topology(
            factory(), backend, BackendOptions(batch_size=batch_size)
        )
        return CellOutcome(
            metrics={
                "throughput": result.tuples_per_s,
                "locality": result.locality,
                "load_balance": max(
                    result.load_balance.values(), default=1.0
                ),
            }
        )

    report, ref, vec = run_equivalence(
        factory,
        candidate_options=BackendOptions(batch_size=batch_size),
        locality_tol=0.05 if not strict["exact_placements"] else 1e-9,
        balance_tol=0.15 if not strict["exact_placements"] else 1e-9,
        **strict,
    )
    return _backend_outcome(report, ref, vec)


RUNNERS: Dict[str, Callable[[Dict[str, Any], int], CellOutcome]] = {
    "episode": run_episode_cell,
    "fig13": run_fig13_cell,
    "skew": run_skew_cell,
    "backend": run_backend_cell,
}


def run_cell(runner: str, params: Dict[str, Any], seed: int) -> CellOutcome:
    """Dispatch one cell to its registered runner."""
    try:
        fn = RUNNERS[runner]
    except KeyError:
        raise ValueError(
            f"unknown runner {runner!r}; one of {sorted(RUNNERS)}"
        ) from None
    return fn(params, seed)
