"""The SpaceSaving sketch (Metwally, Agrawal, El Abbadi — ICDT'05).

SpaceSaving maintains approximate counts for the most frequent items of a
stream using at most ``capacity`` counters. Its guarantees, with ``N`` the
total stream weight and ``m`` the capacity:

- every estimate *overestimates*: ``true <= count``;
- the overestimation is bounded: ``count - error <= true`` and
  ``error <= N / m``;
- any item with true frequency above ``N / m`` is monitored (no false
  negatives among genuinely frequent items).

The paper (Section 3.2) uses one sketch per operator instance to track
the frequency of *(input key, output key)* pairs with a bounded memory
budget, typically a few MB per instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator, List, Optional

from repro.spacesaving.summary import StreamSummary


@dataclass(frozen=True)
class ItemEstimate:
    """An estimated counter for one monitored item.

    Attributes
    ----------
    item:
        The monitored value (any hashable).
    count:
        Estimated frequency; never less than the true frequency.
    error:
        Maximum overestimation: ``count - error <= true <= count``.
    """

    item: Hashable
    count: int
    error: int

    @property
    def lower_bound(self) -> int:
        """Guaranteed minimum true frequency of the item."""
        return self.count - self.error

    @property
    def guaranteed(self) -> bool:
        """True when the estimate is exact (the item never got evicted)."""
        return self.error == 0


class SpaceSaving:
    """Approximate top-k frequency counting in bounded memory.

    Parameters
    ----------
    capacity:
        Number of counters to maintain. Memory use is O(capacity).

    Examples
    --------
    >>> sketch = SpaceSaving(capacity=2)
    >>> for item in ["a", "a", "b", "c", "a"]:
    ...     sketch.offer(item)
    >>> sketch.top(1)[0].item
    'a'
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._summary = StreamSummary(capacity)
        self._n = 0

    # ------------------------------------------------------------------
    # Stream ingestion
    # ------------------------------------------------------------------

    def offer(self, item: Hashable, weight: int = 1) -> None:
        """Record ``weight`` occurrences of ``item``."""
        if weight < 1:
            raise ValueError(f"weight must be >= 1, got {weight}")
        self._n += weight
        summary = self._summary
        if summary.increment_if_present(item, weight) is None:
            if not summary.full:
                summary.insert(item, count=weight, error=0)
            else:
                # Replace the least-frequent monitored item: the
                # newcomer inherits its count as error (it may have
                # occurred up to min_count times before being
                # monitored).
                min_count = summary.min_count()
                summary.replace_min(
                    item, count=min_count + weight, error=min_count
                )

    def clear(self) -> None:
        """Reset the sketch, as done after each reconfiguration so that
        only recent data influences the next routing decision."""
        self._summary.clear()
        self._n = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._summary.capacity

    @property
    def n(self) -> int:
        """Total stream weight observed since the last clear()."""
        return self._n

    def __len__(self) -> int:
        return len(self._summary)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._summary

    def estimate(self, item: Hashable) -> Optional[ItemEstimate]:
        """Estimate for a monitored item, or None if not monitored."""
        if item not in self._summary:
            return None
        count, error = self._summary.count_of(item)
        return ItemEstimate(item, count, error)

    def max_error(self) -> int:
        """Upper bound on the count of any item *not* monitored."""
        if not self._summary.full:
            return 0
        return self._summary.min_count()

    def items(self) -> Iterator[ItemEstimate]:
        """All monitored items, most frequent first."""
        for item, count, error in self._summary.items_descending():
            yield ItemEstimate(item, count, error)

    def top(self, k: int) -> List[ItemEstimate]:
        """The ``k`` highest-count estimates, most frequent first."""
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        result: List[ItemEstimate] = []
        for estimate in self.items():
            if len(result) >= k:
                break
            result.append(estimate)
        return result

    def guaranteed_top(self, k: int) -> List[ItemEstimate]:
        """The subset of ``top(k)`` guaranteed to be true top-k members.

        An item is guaranteed when its lower bound is at least the
        estimated count of the (k+1)-th item.
        """
        estimates = self.top(k + 1)
        if len(estimates) <= k:
            return estimates[:k]
        threshold = estimates[k].count
        return [e for e in estimates[:k] if e.lower_bound >= threshold]

    # ------------------------------------------------------------------
    # Merging (used when the manager combines per-instance sketches)
    # ------------------------------------------------------------------

    def merge(self, other: "SpaceSaving") -> "SpaceSaving":
        """Combine two sketches into a new one of this sketch's capacity.

        Follows the pessimistic merge of Agarwal et al.: an item missing
        from one sketch contributes that sketch's ``max_error()`` as both
        count and error, preserving the overestimation invariant
        ``true <= count`` and ``count - error <= true``.
        """
        combined: dict = {}
        self_floor = self.max_error()
        other_floor = other.max_error()
        for estimate in self.items():
            combined[estimate.item] = [estimate.count, estimate.error]
        for estimate in other.items():
            entry = combined.get(estimate.item)
            if entry is None:
                combined[estimate.item] = [
                    estimate.count + self_floor,
                    estimate.error + self_floor,
                ]
            else:
                entry[0] += estimate.count
                entry[1] += estimate.error
        for item, entry in combined.items():
            if item not in other:
                entry[0] += other_floor
                entry[1] += other_floor

        merged = SpaceSaving(self.capacity)
        merged._n = self._n + other._n
        ranked = sorted(combined.items(), key=lambda kv: kv[1][0], reverse=True)
        for item, (count, error) in ranked[: self.capacity]:
            merged._summary.insert(item, count=count, error=error)
        return merged

    def __repr__(self) -> str:
        return (
            f"SpaceSaving(capacity={self.capacity}, monitored={len(self)}, "
            f"n={self._n})"
        )
