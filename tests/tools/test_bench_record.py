"""tools/bench_record.py: axis directions, thresholds, edge cases.

The perf-trajectory comparator gates CI, so its semantics are pinned
here: ``*_per_s`` is higher-is-better, ``*_bytes_per_key`` is
lower-is-better, movement of *exactly* the tolerance is not a
regression, a directed baseline metric missing from the current run
is, and brand-new axes never fail the gate that introduces them.
"""

import json
import os
import sys

import pytest

_TOOLS = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "tools",
)
if _TOOLS not in sys.path:
    sys.path.insert(0, _TOOLS)

import bench_record  # noqa: E402


# ----------------------------------------------------------------------
# axis directions
# ----------------------------------------------------------------------


def test_rate_axis_is_higher_is_better():
    base = {"fig13_quick_tuples_per_s": 50_000.0}
    # 30% faster: never a regression
    assert bench_record.compare(base, {"fig13_quick_tuples_per_s": 65_000.0}) == []
    # 30% slower: regression
    messages = bench_record.compare(base, {"fig13_quick_tuples_per_s": 35_000.0})
    assert len(messages) == 1
    assert "fig13_quick_tuples_per_s" in messages[0]


def test_bytes_axis_is_lower_is_better():
    base = {"scale_1m_bytes_per_key": 20.0}
    # shrinking is an improvement
    assert bench_record.compare(base, {"scale_1m_bytes_per_key": 14.0}) == []
    # growing 30% is a regression
    messages = bench_record.compare(base, {"scale_1m_bytes_per_key": 26.0})
    assert len(messages) == 1
    assert "scale_1m_bytes_per_key" in messages[0]


def test_undirected_metrics_are_informational():
    base = {"rounds": 6.0, "overhead_ratio": 1.02}
    now = {"rounds": 1.0, "overhead_ratio": 9.9}
    assert bench_record.compare(base, now) == []


def test_extra_axes_direct_unsuffixed_metrics():
    base = {"locality": 0.70, "load_balance": 1.02}
    now = {"locality": 0.30, "load_balance": 1.80}
    axes = {"locality": "higher", "load_balance": "lower"}
    assert bench_record.compare(base, now) == []  # no directions, no gate
    messages = bench_record.compare(base, now, extra_axes=axes)
    assert len(messages) == 2


# ----------------------------------------------------------------------
# threshold edge cases
# ----------------------------------------------------------------------


def test_exactly_20_percent_drop_is_not_a_regression():
    base = {"x_per_s": 100_000.0}
    assert bench_record.compare(base, {"x_per_s": 80_000.0}) == []
    # one part in a million beyond the boundary trips the gate
    assert bench_record.compare(base, {"x_per_s": 79_999.9}) != []


def test_exactly_20_percent_growth_is_not_a_regression_for_bytes():
    base = {"x_bytes_per_key": 100.0}
    assert bench_record.compare(base, {"x_bytes_per_key": 120.0}) == []
    assert bench_record.compare(base, {"x_bytes_per_key": 120.1}) != []


def test_custom_tolerance():
    base = {"x_per_s": 100.0}
    assert bench_record.compare(base, {"x_per_s": 91.0}, tolerance=0.10) == []
    assert bench_record.compare(base, {"x_per_s": 89.0}, tolerance=0.10) != []


def test_zero_baseline_never_divides():
    base = {"x_per_s": 0.0, "y_bytes_per_key": 0.0}
    assert bench_record.compare(base, {"x_per_s": 0.0, "y_bytes_per_key": 5.0}) == []


# ----------------------------------------------------------------------
# missing / new metrics
# ----------------------------------------------------------------------


def test_directed_baseline_metric_missing_from_current_run_fails():
    base = {"x_per_s": 100.0, "y_bytes_per_key": 10.0}
    messages = bench_record.compare(base, {})
    assert sorted(m.split(":")[0] for m in messages) == [
        "x_per_s",
        "y_bytes_per_key",
    ]
    assert all("missing from current run" in m for m in messages)


def test_new_axis_in_current_run_is_never_gated():
    base = {"x_per_s": 100.0}
    now = {"x_per_s": 100.0, "brand_new_per_s": 1.0, "n_bytes_per_key": 9e9}
    assert bench_record.compare(base, now) == []


def test_undirected_baseline_metric_missing_is_ignored():
    assert bench_record.compare({"rounds": 6.0}, {}) == []


# ----------------------------------------------------------------------
# record/load round-trip and speedup
# ----------------------------------------------------------------------


def test_record_and_load_round_trip(tmp_path):
    path = str(tmp_path / "BENCH_test.json")
    doc = bench_record.record(
        {"b_per_s": 2.0, "a_per_s": 1.0}, role="baseline",
        label="seed", path=path,
    )
    assert doc["baseline"]["metrics"] == {"a_per_s": 1.0, "b_per_s": 2.0}
    doc = bench_record.record({"a_per_s": 1.5}, role="current", path=path)
    loaded = bench_record.load(path)
    assert loaded["current"]["metrics"] == {"a_per_s": 1.5}
    assert len(loaded["history"]) == 2
    # file is valid JSON with a trailing newline
    with open(path) as handle:
        text = handle.read()
    assert text.endswith("\n")
    json.loads(text)


def test_record_rejects_unknown_role(tmp_path):
    with pytest.raises(ValueError):
        bench_record.record({}, role="sideline", path=str(tmp_path / "x.json"))


def test_speedup_ratio_and_missing_key():
    base = {"x_per_s": 100.0}
    assert bench_record.speedup(base, {"x_per_s": 150.0}, "x_per_s") == 1.5
    assert bench_record.speedup({}, {"x_per_s": 150.0}, "x_per_s") == 0.0
