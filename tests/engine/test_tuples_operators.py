"""Tests for tuple sizing, operators, and the keyed-state API."""

import pytest

from repro.engine import CountBolt, Padding, StatefulBolt
from repro.engine.operators import (
    FunctionBolt,
    IteratorSpout,
    OperatorContext,
    PassThroughBolt,
)
from repro.engine.tuples import Tuple, field_size, make_tuple, payload_size


def _context(instance=0, num=1, server=0):
    return OperatorContext("op", instance, num, server, lambda: 1.5)


def test_padding_validation_and_equality():
    with pytest.raises(ValueError):
        Padding(-1)
    assert Padding(100) == Padding(100)
    assert Padding(100) != Padding(99)
    assert hash(Padding(5)) == hash(Padding(5))


def test_field_sizes():
    assert field_size(Padding(1000)) == 1000
    assert field_size("abc") == 3
    assert field_size("héllo") == len("héllo".encode("utf-8"))
    assert field_size(b"1234") == 4
    assert field_size(7) == 8
    assert field_size(3.14) == 8
    assert field_size(True) == 1
    assert field_size(None) == 0
    assert field_size(("ab", 1)) == 10
    assert field_size(object()) == 16


def test_payload_and_tuple_size():
    values = ("asia", 42, Padding(500))
    assert payload_size(values) == 4 + 8 + 500
    tup = make_tuple(values, header_bytes=84)
    assert tup.size == 84 + 512
    assert tup.values == values


def test_tuple_ids_unique_and_root_defaults_to_self():
    first = make_tuple(("a",), 0)
    second = make_tuple(("b",), 0)
    assert first.id != second.id
    assert first.root_id == first.id
    child = make_tuple(("c",), 0, root_id=first.root_id)
    assert child.root_id == first.id


def test_context_emit_and_drain():
    context = _context()
    context.emit(("a", 1))
    context.emit(["b", 2])
    assert context._drain() == [("a", 1), ("b", 2)]
    assert context._drain() == []
    assert context.now == 1.5


def test_count_bolt_counts_and_forwards():
    bolt = CountBolt(0, forward=True)
    context = _context()
    bolt.process(make_tuple(("asia", "#java"), 0), context)
    bolt.process(make_tuple(("asia", "#ruby"), 0), context)
    assert bolt.count("asia") == 2
    assert bolt.count("europe") == 0
    assert len(context._drain()) == 2


def test_count_bolt_sink_mode():
    bolt = CountBolt(1, forward=False)
    context = _context()
    bolt.process(make_tuple(("asia", "#java"), 0), context)
    assert bolt.count("#java") == 1
    assert context._drain() == []


def test_count_bolt_callable_key():
    bolt = CountBolt(key=lambda values: values[0].upper(), forward=False)
    bolt.process(make_tuple(("asia",), 0), _context())
    assert bolt.count("ASIA") == 1


def test_stateful_extract_and_install():
    bolt = CountBolt(0, forward=False)
    context = _context()
    for key in ["a", "a", "b", "c"]:
        bolt.process(make_tuple((key,), 0), context)
    extracted = bolt.extract_state(["a", "b", "missing"])
    assert extracted == {"a": 2, "b": 1}
    assert bolt.state == {"c": 1}
    bolt.install_state({"a": 2, "c": 5})
    # "c" merges by addition (CountBolt.merge_state_entry).
    assert bolt.state == {"a": 2, "c": 6}


def test_stateful_default_merge_keeps_local():
    class Keeper(StatefulBolt):
        def process(self, tup, context):
            pass

    bolt = Keeper()
    bolt.state["k"] = "mine"
    bolt.install_state({"k": "theirs"})
    assert bolt.state["k"] == "mine"


def test_state_for_with_default_factory():
    class Tracker(StatefulBolt):
        def process(self, tup, context):
            self.state_for(tup.values[0], list).append(tup.values[1])

    bolt = Tracker()
    bolt.process(make_tuple(("k", 1), 0), _context())
    bolt.process(make_tuple(("k", 2), 0), _context())
    assert bolt.state["k"] == [1, 2]


def test_pass_through_bolt():
    bolt = PassThroughBolt()
    context = _context()
    bolt.process(make_tuple(("x", 1), 0), context)
    assert context._drain() == [("x", 1)]


def test_pass_through_with_transform():
    bolt = PassThroughBolt(lambda values: (values[0].lower(),))
    context = _context()
    bolt.process(make_tuple(("HELLO",), 0), context)
    assert context._drain() == [("hello",)]


def test_function_bolt_fan_out_and_filter():
    bolt = FunctionBolt(lambda values: [(w,) for w in values[0].split()])
    context = _context()
    bolt.process(make_tuple(("a b c",), 0), context)
    assert context._drain() == [("a",), ("b",), ("c",)]
    bolt.process(make_tuple(("",), 0), context)
    assert context._drain() == []


def test_iterator_spout_drains_and_finishes():
    spout = IteratorSpout(lambda ctx: [("a",), ("b",)])
    context = _context()
    spout.open(context)
    assert spout.next_tuple(context) is True
    assert spout.next_tuple(context) is True
    assert context._drain() == [("a",), ("b",)]
    assert spout.finished is False
    assert spout.next_tuple(context) is False
    assert spout.finished is True
    assert spout.emitted == 2


def test_iterator_spout_per_instance_shards():
    spout = IteratorSpout(lambda ctx: [(ctx.instance_index,)])
    context = _context(instance=3)
    spout.open(context)
    spout.next_tuple(context)
    assert context._drain() == [(3,)]
