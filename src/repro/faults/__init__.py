"""Fault injection for the reconfiguration protocol (chaos tooling).

Algorithm 1's correctness argument assumes perfect FIFO delivery and
surviving POIs. This package injects the imperfections — dropped,
delayed, duplicated and reordered control messages, lost RPC legs,
slow links, crashing POIs — so tests can demonstrate that the
protocol's no-tuple-loss / no-count-misplaced invariant (Section 3.4)
and the manager's round-deadline recovery hold under all of them.

See DESIGN.md §7 for the knob reference and abort semantics.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    CRASH,
    DELAY,
    DROP,
    DUPLICATE,
    REORDER,
    RPC_STEPS,
    ControlFault,
    CrashAt,
    FaultPlan,
    LinkDelay,
    RpcFault,
    control_round_id,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "ControlFault",
    "RpcFault",
    "LinkDelay",
    "CrashAt",
    "control_round_id",
    "DROP",
    "DELAY",
    "DUPLICATE",
    "REORDER",
    "CRASH",
    "RPC_STEPS",
]
