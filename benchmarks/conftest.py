"""Shared benchmark configuration.

Set ``REPRO_BENCH_QUICK=1`` to run every figure on a reduced grid
(useful while iterating); the default regenerates the full figures.
"""

import os

import pytest


@pytest.fixture(scope="session")
def quick() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") == "1"
