"""Tests for the deployment invariant checker."""

import random

import pytest

from repro.core import Manager, ManagerConfig
from repro.core.validation import check_deployment
from repro.engine import (
    Cluster,
    CountBolt,
    Simulator,
    TableFieldsGrouping,
    TopologyBuilder,
    deploy,
)
from repro.engine.operators import IteratorSpout


def _deployment(n=2, per_spout=5000):
    def source(ctx):
        rng = random.Random(ctx.instance_index)
        for _ in range(per_spout):
            key = rng.randrange(10)
            yield (key, key + 100)

    builder = TopologyBuilder()
    builder.spout("S", lambda: IteratorSpout(source), parallelism=n)
    builder.bolt(
        "A", lambda: CountBolt(0, forward=True), parallelism=n,
        inputs={"S": TableFieldsGrouping(0)},
    )
    builder.bolt(
        "B", lambda: CountBolt(1, forward=False), parallelism=n,
        inputs={"A": TableFieldsGrouping(1)},
    )
    sim = Simulator()
    return sim, deploy(sim, Cluster(sim, n), builder.build())


def test_clean_drained_run_is_valid():
    sim, deployment = _deployment()
    deployment.start()
    sim.run()
    report = check_deployment(deployment)
    assert report.ok
    report.raise_if_failed()  # no-op when healthy
    assert "ok" in repr(report)


def test_valid_after_reconfigurations():
    sim, deployment = _deployment(per_spout=20000)
    manager = Manager(deployment, ManagerConfig(period_s=0.05))
    manager.start()
    deployment.start()
    sim.run(until=0.3)
    manager.stop()
    sim.run()
    check_deployment(deployment).raise_if_failed()


def test_detects_duplicated_key_state():
    sim, deployment = _deployment()
    deployment.start()
    sim.run()
    # Corrupt: copy a key's state onto a second instance.
    first, second = deployment.instances("B")
    key = next(iter(first.operator.state))
    second.operator.state[key] = 1
    report = check_deployment(deployment)
    assert not report.ok
    assert any("on instances" in v for v in report.violations)
    with pytest.raises(AssertionError):
        report.raise_if_failed()


def test_detects_held_keys():
    sim, deployment = _deployment()
    deployment.start()
    sim.run()
    deployment.executor("A", 0).hold_keys(["stuck"])
    report = check_deployment(deployment)
    assert any("holding keys" in v for v in report.violations)


def test_detects_in_flight_tuples():
    sim, deployment = _deployment()
    deployment.start()
    sim.run(until=0.001)  # stop mid-stream
    report = check_deployment(deployment)
    assert any("in flight" in v for v in report.violations)


def test_detects_out_of_range_table_entry():
    from repro.core import RoutingTable

    sim, deployment = _deployment()
    deployment.start()
    sim.run()
    deployment.executor("A", 0).table_router("A->B").update_table(
        RoutingTable({"bad": 99})
    )
    report = check_deployment(deployment)
    assert any("out of range" in v for v in report.violations)
