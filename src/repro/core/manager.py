"""The Manager: statistics collection, planning, and orchestration.

The manager runs alongside the application (Section 3.3). Periodically
(or on demand) it executes one reconfiguration *round*:

1. collect pair statistics from every instrumented POI;
2. build the bipartite key graph and partition it across servers;
3. derive routing tables and migration lists
   (:func:`repro.core.assignment.plan_reconfiguration`);
4. drive Algorithm 1 through the
   :class:`~repro.core.reconfiguration.ReconfigurationAgent` attached
   to every executor.

Manager↔POI RPCs are modeled with a fixed control-plane latency; the
in-band steps (PROPAGATE/MIGRATE) go through the data channels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.assignment import (
    DEFAULT_IMBALANCE,
    ReconfigurationPlan,
    RoutedStream,
    plan_migrations,
    plan_reconfiguration,
)
from repro.core.instrumentation import PairTracker
from repro.core.keygraph import KeyGraph
from repro.core.reconfiguration import (
    PROPAGATE,
    EdgeUpdate,
    PoiReconfiguration,
    ReconfigurationAgent,
    RescaleSpec,
    install_agents,
)
from repro.core.compact_table import (
    CompactRoutingTable,
    CompactTableConfig,
    plain_table_memory_bytes,
)
from repro.core.routing_table import RoutingTable
from repro.core.table_delta import TableDelta, snapshot_wire_bytes
from repro.engine.executor import ControlMessage, SpoutExecutor
from repro.engine.grouping import (
    TableFieldsGrouping,
    TableRouter,
    stable_hash,
)
from repro.engine.operators import StatefulBolt
from repro.errors import ReconfigurationError
from repro.observability.sink import NULL_SINK
from repro.observability.trace import Tracer
from repro.spacesaving import SpaceSaving


@dataclass
class HybridConfig:
    """Tunables of hybrid (skew-resilient) routing.

    When a :class:`ManagerConfig` carries one of these, every planning
    round re-derives each routed stream's *split set* from the merged
    sketches: keys whose observed frequency exceeds
    ``hot_fraction × total / n`` (a key's fair share scaled by
    ``hot_fraction``) are split over ``split_width`` instances anchored
    at their table owner. The split set ships inside the routing-table
    payload, so it obeys every rule tables already obey (atomic
    PROPAGATE swap, rescale resize, cache invalidation). Requires the
    sources to use ``HybridTableFieldsGrouping`` — a plain TableRouter
    silently ignores the split set and keeps pinning the hot key.
    """

    #: a key is hot when its weight exceeds this multiple of the
    #: per-instance fair share (total weight / n)
    hot_fraction: float = 0.5
    #: instances each hot key is spread over (clamped to n)
    split_width: int = 2
    #: cap on split keys per stream (heaviest first)
    max_split_keys: int = 8


@dataclass
class ManagerConfig:
    """Tunables of the manager."""

    #: Reconfigure every this many simulated seconds; None = manual only.
    period_s: Optional[float] = None
    #: Balance constraint α passed to the partitioner.
    imbalance: float = DEFAULT_IMBALANCE
    #: SpaceSaving capacity per instrumented (in, out) stream pair.
    sketch_capacity: int = 4096
    #: Keep only this many heaviest pairs when partitioning (Fig. 12).
    max_edges: Optional[int] = None
    #: One-way latency of manager <-> POI control RPCs.
    rpc_latency_s: float = 1.0e-3
    #: Abort a round that has not completed within this many simulated
    #: seconds (lost/late control messages otherwise wedge the round
    #: forever); None disables the deadline.
    round_timeout_s: Optional[float] = None
    #: Seed for the partitioner.
    seed: int = 0
    #: Statistics collector factory (swap in ExactCounter for offline).
    sketch_factory: Callable[[int], object] = SpaceSaving
    #: Optional benefit estimator (core.estimator): when set, a planned
    #: reconfiguration is only deployed if its projected benefit covers
    #: the migration cost (the paper's future-work extension).
    estimator: Optional[object] = None
    #: Poll interval of the scale-out rollback drain watcher: after an
    #: aborted scale-out, doomed instances are evacuated only once
    #: their queues stay quiet for two consecutive polls.
    rescale_drain_poll_s: float = 2.0e-3
    #: Hybrid (hot-key splitting) routing; None keeps the paper's pure
    #: table routing and leaves planning byte-identical to it.
    hybrid: Optional[HybridConfig] = None
    #: Ship routing-table updates as :class:`TableDelta` diffs against
    #: the table the receivers already hold, with a full-snapshot
    #: fallback whenever the delta would not be smaller or the manager
    #: does not know the receiver's base (first push, post-abort).
    #: False ships full tables every round (docs/PROTOCOL.md).
    delta_propagation: bool = True
    #: Compact (fingerprint + front-filter) data-plane tables: the
    #: manager keeps planning on plain tables and compacts at the wire
    #: boundary. None ships plain tables (DESIGN.md §13).
    compact_tables: Optional[CompactTableConfig] = None


@dataclass
class RoundRecord:
    """Bookkeeping of one reconfiguration round (for tests/benches)."""

    round_id: int
    started_at: float
    tables_sent_at: Optional[float] = None
    completed_at: Optional[float] = None
    plan: Optional[ReconfigurationPlan] = None
    collected_pairs: int = 0
    skipped: bool = False
    #: set when an estimator vetoed deployment ("not worthwhile")
    vetoed: bool = False
    #: the estimator's Estimate, when an estimator is configured
    estimate: Optional[object] = None
    #: set when the round deadline expired before completion
    aborted: bool = False
    aborted_at: Optional[float] = None
    abort_reason: str = ""
    #: the key graph this round partitioned (None for skipped rounds);
    #: kept so invariant checkers can audit the balance constraint
    keygraph: Optional[object] = field(default=None, repr=False)
    #: set on rescale rounds: tier parallelism before / requested after
    rescale_from: Optional[int] = None
    rescale_to: Optional[int] = None
    #: instances spawned / retired when the rescale committed
    rescale_spawned: int = 0
    rescale_retired: int = 0
    #: aborted scale-out fully rolled back (doomed instances drained,
    #: state evacuated, instance set restored)
    rescale_rolled_back: bool = False
    #: dst op → {key: member count} for keys split when the round
    #: started (invariant checkers allow that many extract/install
    #: events per key during a consolidation)
    presplit_keys: Dict[str, Dict] = field(default_factory=dict, repr=False)
    #: dst op → {key: members} chosen by hybrid planning this round
    split_sets: Dict[str, Dict] = field(default_factory=dict, repr=False)

    @property
    def is_rescale(self) -> bool:
        return self.rescale_to is not None

    @property
    def duration_s(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.started_at


@dataclass
class _RescaleContext:
    """Everything the commit/abort paths of a rescale round need."""

    #: rescaled stateful operators, topological order
    ops: List[str]
    old_k: int
    new_k: int
    #: instances live during the round: 0..union_k-1 per rescaled op
    union_k: int
    #: executors created for this rescale (empty on scale-in)
    spawned: List
    #: executors this rescale retires at commit (empty on scale-out)
    retiring: List
    #: post-rescale routed-stream view (swapped in at commit)
    new_streams: List[RoutedStream]


class Manager:
    """Coordinator of locality-aware routing for one deployment."""

    def __init__(self, deployment, config: Optional[ManagerConfig] = None):
        self.deployment = deployment
        self.config = config or ManagerConfig()
        self.sim = deployment.sim
        self.rounds: List[RoundRecord] = []
        self.current_tables: Dict[str, RoutingTable] = {}
        self._agents: Dict[Tuple[str, int], ReconfigurationAgent] = {}
        self._instrumented: List = []
        self._routed_streams: List[RoutedStream] = []
        self._round_active = False
        self._round_id = 0
        self._collect_outstanding = 0
        self._ack_outstanding = 0
        self._complete_outstanding = 0
        self._stats: Dict = {}
        self._on_round_complete: Optional[Callable] = None
        self._stopped = False
        self._timer = None
        self._deadline = None
        self._tables_before_round: Dict[str, RoutingTable] = {}
        self._streams_by_name: Dict[str, RoutedStream] = {}
        #: late RPC/completion callbacks ignored because their round
        #: was aborted or superseded (telemetry)
        self.stale_callbacks = 0
        #: observers called with the RoundRecord every time a round
        #: finishes (completed, aborted, skipped or vetoed) — the seam
        #: repro.testing's invariant checkers hook
        self.round_observers: List[Callable[[RoundRecord], None]] = []
        #: tracer for per-round span trees; a no-op until
        #: :meth:`set_telemetry` swaps in a real sink
        self._tracer = Tracer(lambda: self.sim.now, NULL_SINK)
        #: live spans of the in-flight round, by phase name
        self._round_spans: Dict[str, object] = {}
        self._propagated_outstanding = 0
        # -- elastic rescaling state ------------------------------------
        #: requested new parallelism, pending until the round plans
        self._rescale_request: Optional[int] = None
        #: context of the in-flight rescale round (None otherwise)
        self._rescale_ctx: Optional[_RescaleContext] = None
        #: an aborted scale-out is still draining its doomed instances
        self._rollback_pending = False
        #: op → {key → holder instance}, gathered by the inventory RPCs
        self._inventory: Dict[str, Dict] = {}
        self._inventory_outstanding = 0
        #: operator names carrying a PairTracker (so rescale can
        #: instrument the instances it spawns)
        self._instrumented_ops: set = set()
        self._install()
        registry = self.deployment.metrics.registry
        registry.register_callback(
            "reconf_rounds_completed", lambda: len(self.completed_rounds)
        )
        registry.register_callback(
            "reconf_rounds_aborted", lambda: len(self.aborted_rounds)
        )
        registry.register_callback(
            "reconf_stale_callbacks", lambda: self.stale_callbacks
        )
        if self.config.compact_tables is not None:
            registry.gauge("compact_false_route_budget").set(
                self.config.compact_tables.false_route_budget
            )
            registry.register_callback(
                "compact_filter_rejects",
                lambda: self._sum_compact_counter("filter_rejects"),
            )
            registry.register_callback(
                "compact_filter_false_positives",
                lambda: self._sum_compact_counter("filter_false_positives"),
            )
            registry.register_callback(
                "compact_table_lookups",
                lambda: self._sum_compact_counter("lookups"),
            )

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------

    def _install(self) -> None:
        topology = self.deployment.topology
        routed = [
            stream
            for stream in topology.streams
            if isinstance(stream.grouping, TableFieldsGrouping)
        ]
        if not routed:
            raise ReconfigurationError(
                "no TableFieldsGrouping streams to manage; use "
                "TableFieldsGrouping on the fields-grouped streams"
            )
        for stream in routed:
            instances = self.deployment.instances(stream.dst)
            stateful = all(
                isinstance(e.operator, StatefulBolt) for e in instances
            )
            self._routed_streams.append(
                RoutedStream(
                    name=stream.name,
                    src_op=stream.src,
                    dst_op=stream.dst,
                    dst_placements=self.deployment.placement_of(stream.dst),
                    stateful_dst=stateful,
                )
            )
        self._streams_by_name = {s.name: s for s in self._routed_streams}
        # A stateful operator's keys live in exactly one namespace, so
        # it must have at most one table-routed input stream.
        routed_inputs: Dict[str, int] = {}
        for stream in routed:
            routed_inputs[stream.dst] = routed_inputs.get(stream.dst, 0) + 1
        for op, count in routed_inputs.items():
            if count > 1:
                raise ReconfigurationError(
                    f"operator {op!r} has {count} table-routed inputs; "
                    f"at most one is supported"
                )

        # Instrument operators observing key pairs: keyed input and a
        # table-routed output.
        routed_names = {s.name for s in routed}
        for op in topology.operators.values():
            has_keyed_input = any(
                getattr(s.grouping, "key_fn", None) is not None
                for s in topology.inputs_of(op.name)
            )
            has_routed_output = any(
                s.name in routed_names for s in topology.outputs_of(op.name)
            )
            if has_keyed_input and has_routed_output:
                self._instrumented_ops.add(op.name)
                for executor in self.deployment.instances(op.name):
                    executor.instrumentation = PairTracker(
                        op.name,
                        capacity=self.config.sketch_capacity,
                        sketch_factory=self.config.sketch_factory,
                    )
                    self._instrumented.append(executor)
        if not self._instrumented:
            raise ReconfigurationError(
                "no operator observes key pairs (needs a keyed input "
                "and a table-routed output)"
            )
        self._agents = install_agents(self.deployment, self)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def set_telemetry(self, telemetry) -> None:
        """Adopt a :class:`~repro.observability.Telemetry`: rounds emit
        their span tree (STATS_COLLECT → PARTITION → PROPAGATE →
        MIGRATE, closed by a COMMIT/ABORT/SKIP/VETO event) into its
        sink. Usually called through
        :func:`repro.observability.attach_telemetry`."""
        self._tracer = telemetry.tracer

    def start(self) -> None:
        """Arm periodic reconfiguration (config.period_s).

        Idempotent: calling start() on a running manager re-arms the
        single periodic timer instead of stacking a second one.
        """
        if self.config.period_s is None:
            raise ReconfigurationError(
                "ManagerConfig.period_s is None; call reconfigure() manually"
            )
        self._stopped = False
        if self._timer is not None:
            self._timer.cancel()
        self._timer = self.sim.schedule(
            self.config.period_s, self._periodic_tick
        )

    def stop(self) -> None:
        """Disarm periodic reconfiguration (in-flight rounds finish)."""
        self._stopped = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def reconfigure(self, on_complete: Optional[Callable] = None) -> bool:
        """Begin one asynchronous reconfiguration round.

        Returns False (and does nothing) when a round is already in
        flight or an aborted scale-out is still rolling back.
        ``on_complete(record)`` fires when the round finishes.
        """
        if self._round_active or self._rollback_pending:
            return False
        self._round_active = True
        self._round_id += 1
        round_id = self._round_id
        self._on_round_complete = on_complete
        record = RoundRecord(round_id, started_at=self.sim.now)
        self.rounds.append(record)
        round_span = self._tracer.begin(
            "reconfiguration_round", round=round_id
        )
        self._round_spans = {
            "round": round_span,
            "STATS_COLLECT": self._tracer.begin(
                "STATS_COLLECT",
                parent=round_span,
                pois=len(self._instrumented),
            ),
        }
        self._stats = {}
        self._tables_before_round = dict(self.current_tables)
        for stream in self._routed_streams:
            table = self._tables_before_round.get(stream.name)
            if table is not None and table.num_split_keys:
                record.presplit_keys[stream.dst_op] = {
                    key: len(members)
                    for key, members in table.splits.items()
                }
        self._collect_outstanding = len(self._instrumented)
        self._inventory = {}
        self._inventory_outstanding = 0
        if self.config.round_timeout_s is not None:
            self._deadline = self.sim.schedule(
                self.config.round_timeout_s, self._on_round_deadline, round_id
            )
        latency = self.config.rpc_latency_s
        for executor in self._instrumented:  # step 1: GET_METRICS
            self.sim.schedule(latency, self._rpc_get_metrics, executor, round_id)
        if self._rescale_request is not None:
            # Rescale rounds add an inventory leg: ask every stateful
            # instance of the rescaled tier which keys it holds, so the
            # plan can derive hold lists (table diffs cannot — the
            # fallback modulus changes with k).
            record.rescale_from = self._tier_parallelism()
            record.rescale_to = self._rescale_request
            targets = [
                executor
                for op_name in self._rescale_stateful_ops()
                for executor in self.deployment.instances(op_name)
            ]
            self._inventory_outstanding = len(targets)
            for executor in targets:
                self.sim.schedule(
                    latency, self._rpc_get_inventory, executor, round_id
                )
        return True

    def rescale(
        self, new_parallelism: int, on_complete: Optional[Callable] = None
    ) -> bool:
        """Begin an elastic rescale round: resize every stateful routed
        destination tier to ``new_parallelism`` instances, spawning or
        retiring executors and migrating state through Algorithm 1.

        Returns False when a round is already in flight, a rollback is
        still draining, or the tier already has that parallelism.
        """
        if new_parallelism < 1:
            raise ReconfigurationError(
                f"parallelism must be >= 1, got {new_parallelism}"
            )
        if self._round_active or self._rollback_pending:
            return False
        if new_parallelism == self._tier_parallelism():
            return False
        self._rescale_request = new_parallelism
        started = self.reconfigure(on_complete)
        if not started:
            self._rescale_request = None
        return started

    @property
    def round_active(self) -> bool:
        return self._round_active

    @property
    def rescale_in_progress(self) -> bool:
        """A rescale round is live, or an aborted scale-out is still
        rolling back its doomed instances."""
        return self._rescale_ctx is not None or self._rollback_pending

    @property
    def tier_parallelism(self) -> int:
        """Current instance count of the rescaled (routed) tier."""
        return self._tier_parallelism()

    def _tier_parallelism(self) -> int:
        """Current instance count of the rescaled tier. All stateful
        routed destinations rescale together (one-instance-per-server
        placement couples their parallelism to the server count)."""
        sizes = {
            len(self.deployment.executors[s.dst_op])
            for s in self._routed_streams
        }
        if len(sizes) != 1:
            raise ReconfigurationError(
                f"routed destination tiers have mixed parallelism "
                f"{sorted(sizes)}; cannot rescale"
            )
        return sizes.pop()

    def _rescale_ops(self) -> List[str]:
        """All routed destination ops, topological order — every one
        of them gains/loses instances in a rescale (one-instance-per-
        server placement keeps their parallelism equal)."""
        routed = {s.dst_op for s in self._routed_streams}
        return [
            name
            for name in self.deployment.topology.topological_order()
            if name in routed
        ]

    def _rescale_stateful_ops(self) -> List[str]:
        """The subset of :meth:`_rescale_ops` that holds keyed state
        (these participate in inventory and scan migration)."""
        stateful = {
            s.dst_op for s in self._routed_streams if s.stateful_dst
        }
        return [name for name in self._rescale_ops() if name in stateful]

    @property
    def completed_rounds(self) -> List[RoundRecord]:
        return [r for r in self.rounds if r.completed_at is not None]

    @property
    def aborted_rounds(self) -> List[RoundRecord]:
        return [r for r in self.rounds if r.aborted]

    @property
    def agents(self) -> Dict[Tuple[str, int], ReconfigurationAgent]:
        """The installed per-POI protocol agents, by (op, instance)."""
        return dict(self._agents)

    @property
    def routed_streams(self) -> List[RoutedStream]:
        """The table-routed streams under management."""
        return list(self._routed_streams)

    # ------------------------------------------------------------------
    # Round internals
    # ------------------------------------------------------------------

    def _periodic_tick(self) -> None:
        if self._stopped:
            return
        self.reconfigure()
        self._timer = self.sim.schedule(
            self.config.period_s, self._periodic_tick
        )

    def _is_current(self, round_id: int) -> bool:
        """Is ``round_id`` the round currently in flight? Late
        callbacks from aborted rounds fail this and are dropped."""
        if self._round_active and round_id == self._round_id:
            return True
        self.stale_callbacks += 1
        return False

    def _rpc_get_metrics(self, executor, round_id: int) -> None:
        if not self._is_current(round_id):
            return
        agent = self._agents[(executor.op_name, executor.instance)]
        stats = agent.on_get_metrics()  # step 2: SEND_METRICS
        self.sim.schedule(
            self.config.rpc_latency_s, self._on_metrics, stats, round_id
        )

    def _on_metrics(self, stats: Dict, round_id: int) -> None:
        if not self._is_current(round_id):
            return
        for edge_pair, estimates in stats.items():
            self._stats.setdefault(edge_pair, []).extend(estimates)
        self._collect_outstanding -= 1
        self._maybe_plan()

    def _rpc_get_inventory(self, executor, round_id: int) -> None:
        if not self._is_current(round_id):
            return
        agent = self._agents[(executor.op_name, executor.instance)]
        keys = agent.on_state_inventory()
        self.sim.schedule(
            self.config.rpc_latency_s,
            self._on_inventory,
            executor.op_name,
            executor.instance,
            keys,
            round_id,
        )

    def _on_inventory(
        self, op_name: str, instance: int, keys: List, round_id: int
    ) -> None:
        if not self._is_current(round_id):
            return
        holders = self._inventory.setdefault(op_name, {})
        for key in keys:
            holders[key] = instance
        self._inventory_outstanding -= 1
        self._maybe_plan()

    def _maybe_plan(self) -> None:
        """Plan once both the metrics and (for rescale rounds) the
        inventory legs have fully returned."""
        if self._collect_outstanding == 0 and self._inventory_outstanding == 0:
            self._plan_and_send()

    def _plan_and_send(self) -> None:
        record = self.rounds[-1]
        keygraph = KeyGraph.from_stats(self._stats)
        record.collected_pairs = keygraph.num_edges
        record.keygraph = keygraph
        collect_span = self._round_spans.get("STATS_COLLECT")
        if collect_span is not None:
            collect_span.end(pairs=keygraph.num_edges)
        if self._rescale_request is not None:
            # A rescale never skips: even with an empty key graph the
            # instance set must change (tables then come out empty and
            # all routing is hash-fallback at the new width).
            self._plan_and_send_rescale(record, keygraph)
            return
        if keygraph.num_edges == 0:
            # Nothing observed yet: skip this round.
            record.skipped = True
            self._complete_round(record)
            return

        num_servers = self._partition_size()
        partition_span = self._tracer.begin(
            "PARTITION",
            parent=self._round_spans.get("round"),
            edges=keygraph.num_edges,
            servers=num_servers,
        )
        self._round_spans["PARTITION"] = partition_span
        plan = plan_reconfiguration(
            keygraph,
            self._routed_streams,
            num_servers,
            self.current_tables,
            imbalance=self.config.imbalance,
            seed=self.config.seed + self._round_id,
            max_edges=self.config.max_edges,
        )
        record.plan = plan
        if self.config.hybrid is not None:
            self._apply_hybrid_splits(record, keygraph, plan)
        cut_weight = (
            1.0 - plan.predicted_locality
        ) * keygraph.total_pair_weight
        registry = self.deployment.metrics.registry
        registry.gauge("reconf_last_cut_weight").set(cut_weight)
        registry.gauge("reconf_last_predicted_locality").set(
            plan.predicted_locality
        )
        partition_span.end(
            predicted_locality=plan.predicted_locality,
            cut_weight=cut_weight,
            moved_keys=plan.total_moved_keys(),
            tables=len(plan.tables),
        )

        if self.config.estimator is not None:
            estimate = self.config.estimator.evaluate(
                keygraph, plan, self.current_tables, self._routed_streams
            )
            record.estimate = estimate
            if not estimate.worthwhile_with_margin(
                self.config.estimator.config.margin
            ):
                record.vetoed = True
                self._complete_round(record)
                return

        self.current_tables.update(plan.tables)
        self._send_reconfigurations(plan)

    def _partition_size(self) -> int:
        servers = set()
        for stream in self._routed_streams:
            servers.update(stream.dst_placements)
        expected = set(range(len(servers)))
        if servers != expected:
            raise ReconfigurationError(
                f"routed destinations occupy servers {sorted(servers)}; "
                f"expected contiguous 0..{len(servers) - 1}"
            )
        return len(servers)

    def _apply_hybrid_splits(
        self, record: RoundRecord, keygraph, plan: ReconfigurationPlan
    ) -> None:
        """Hybrid mode: re-derive each routed stream's split set from
        the merged sketches and rebuild the migration lists.

        The split set is recomputed from scratch every round, so a key
        that cooled below the threshold consolidates (its partials
        gather on the table owner via :func:`plan_migrations`) and a
        newly hot key starts splitting without migrating anything.
        Migration lists must be rebuilt — :func:`plan_reconfiguration`
        diffed against the *unsplit* new tables, so it would plan a
        spurious consolidation for every key that stays split.
        """
        cfg = self.config.hybrid
        migrations: Dict[str, Dict[Tuple[int, int], List]] = {}
        for stream in self._routed_streams:
            table = plan.tables.get(stream.name)
            if table is None:
                continue
            splits = self._select_splits(keygraph, stream, table, cfg)
            new_table = table.with_splits(splits)
            plan.tables[stream.name] = new_table
            if splits:
                record.split_sets[stream.dst_op] = dict(splits)
            if not stream.stateful_dst:
                continue
            old_table = self.current_tables.get(
                stream.name, RoutingTable.empty()
            )
            per_pair = plan_migrations(old_table, new_table, stream)
            if per_pair:
                # At most one table-routed input per operator
                # (validated at install), so no merge needed here.
                migrations[stream.dst_op] = per_pair
        plan.migrations = migrations

    def _select_splits(
        self, keygraph, stream: RoutedStream, table: RoutingTable, cfg
    ) -> Dict:
        """Deterministic split set for one stream: keys whose observed
        weight exceeds ``hot_fraction`` of the per-instance fair share,
        heaviest first (repr ties), split over ``split_width``
        consecutive instances anchored at the table owner."""
        n = len(stream.dst_placements)
        if n < 2:
            return {}
        weights = keygraph.stream_weights(stream.name)
        total = sum(weights.values())
        if total <= 0.0:
            return {}
        threshold = cfg.hot_fraction * total / n
        hot = sorted(
            (key for key, weight in weights.items() if weight > threshold),
            key=lambda key: (-weights[key], repr(key)),
        )[: cfg.max_split_keys]
        width = min(cfg.split_width, n)
        if width < 2:
            return {}
        splits: Dict = {}
        for key in hot:
            owner = table.lookup(key)
            if owner is None or not 0 <= owner < n:
                owner = stream.fallback_instance(key)
            splits[key] = tuple(
                sorted((owner + j) % n for j in range(width))
            )
        return splits

    def _plan_and_send_rescale(self, record: RoundRecord, keygraph) -> None:
        """Plan a rescale round: provision the new instance set, then
        repartition the key graph for the new ``k`` and send payloads.

        Provisioning happens *before* payloads go out so that the whole
        round runs against the union view: spawned instances forward
        PROPAGATEs (their successors count them as predecessors) and
        retiring instances keep participating until commit.
        """
        new_k = self._rescale_request
        self._rescale_request = None
        old_k = self._tier_parallelism()
        union_k = max(old_k, new_k)
        ops = self._rescale_ops()
        deployment = self.deployment

        provision_span = self._tracer.begin(
            "RESCALE_PROVISION",
            parent=self._round_spans.get("round"),
            old_parallelism=old_k,
            new_parallelism=new_k,
            ops=len(ops),
        )
        self._round_spans["RESCALE_PROVISION"] = provision_span
        spawned: List = []
        if new_k > old_k:
            cluster = deployment.cluster
            while cluster.num_servers < new_k:
                cluster.add_server()
            for op_name in ops:
                for instance in range(old_k, new_k):
                    # notify=False: the agent (control handler) must be
                    # installed before spawn observers wrap the seams.
                    spawned.append(
                        deployment.spawn_instance(
                            op_name, cluster.server(instance), notify=False
                        )
                    )
        retiring: List = []
        if new_k < old_k:
            for op_name in ops:
                retiring.extend(deployment.executors[op_name][new_k:])

        self._repatch_agents()
        for executor in spawned:
            if executor.op_name in self._instrumented_ops:
                executor.instrumentation = PairTracker(
                    executor.op_name,
                    capacity=self.config.sketch_capacity,
                    sketch_factory=self.config.sketch_factory,
                )
                self._instrumented.append(executor)
            deployment.notify_spawned(executor)
        provision_span.end(spawned=len(spawned), retiring=len(retiring))

        new_streams = [
            RoutedStream(
                name=s.name,
                src_op=s.src_op,
                dst_op=s.dst_op,
                dst_placements=[
                    e.server.index
                    for e in deployment.executors[s.dst_op][:new_k]
                ],
                stateful_dst=s.stateful_dst,
            )
            for s in self._routed_streams
        ]
        partition_span = self._tracer.begin(
            "PARTITION",
            parent=self._round_spans.get("round"),
            edges=keygraph.num_edges,
            servers=new_k,
        )
        self._round_spans["PARTITION"] = partition_span
        plan = plan_reconfiguration(
            keygraph,
            new_streams,
            new_k,
            self.current_tables,
            imbalance=self.config.imbalance,
            seed=self.config.seed + self._round_id,
            max_edges=self.config.max_edges,
        )
        # The plan's table-diff migrations compare owners across two
        # different fallback moduli — meaningless for a rescale. State
        # movement is scan-based instead (see RescaleSpec).
        plan.migrations = {}
        record.plan = plan
        cut_weight = (
            1.0 - plan.predicted_locality
        ) * keygraph.total_pair_weight
        registry = deployment.metrics.registry
        registry.gauge("reconf_last_cut_weight").set(cut_weight)
        registry.gauge("reconf_last_predicted_locality").set(
            plan.predicted_locality
        )
        partition_span.end(
            predicted_locality=plan.predicted_locality,
            cut_weight=cut_weight,
            tables=len(plan.tables),
        )

        self._rescale_ctx = _RescaleContext(
            ops=ops,
            old_k=old_k,
            new_k=new_k,
            union_k=union_k,
            spawned=spawned,
            retiring=retiring,
            new_streams=new_streams,
        )
        self.current_tables.update(plan.tables)
        self._send_reconfigurations(plan)

    def _send_reconfigurations(self, plan: ReconfigurationPlan) -> None:
        record = self.rounds[-1]
        record.tables_sent_at = self.sim.now
        if self._rescale_ctx is not None:
            payloads = self._build_rescale_payloads(plan)
        else:
            payloads = self._build_payloads(plan)
        self._ack_outstanding = len(payloads)
        self._complete_outstanding = len(payloads)
        self._propagated_outstanding = len(payloads)
        self._round_spans["PROPAGATE"] = self._tracer.begin(
            "PROPAGATE",
            parent=self._round_spans.get("round"),
            pois=len(payloads),
        )
        latency = self.config.rpc_latency_s
        for (op, instance), payload in payloads.items():  # step 3
            agent = self._agents[(op, instance)]
            self.sim.schedule(latency, self._rpc_send_reconf, agent, payload)

    def _rpc_send_reconf(self, agent, payload) -> None:
        if not self._is_current(payload.round_id):
            return
        agent.on_reconf(payload)
        self.sim.schedule(  # step 4
            self.config.rpc_latency_s, self._on_ack, payload.round_id
        )

    def _on_ack(self, round_id: int) -> None:
        if not self._is_current(round_id):
            return
        self._ack_outstanding -= 1
        if self._ack_outstanding == 0:
            self._start_propagation()

    def _start_propagation(self) -> None:
        """Step 5: PROPAGATE to the DAG roots (the spouts)."""
        latency = self.config.rpc_latency_s
        for executor in self.deployment.all_executors():
            if isinstance(executor, SpoutExecutor):
                message = ControlMessage(
                    PROPAGATE, self._round_id, sender="manager"
                )
                self.sim.schedule(
                    latency, executor.deliver_control, message
                )

    def _build_payloads(
        self, plan: ReconfigurationPlan
    ) -> Dict[Tuple[str, int], PoiReconfiguration]:
        """One PoiReconfiguration per executor (every POI participates
        in propagation, even with empty router/migration entries)."""
        topology = self.deployment.topology
        payloads: Dict[Tuple[str, int], PoiReconfiguration] = {}
        for op in topology.operators.values():
            for executor in self.deployment.instances(op.name):
                payloads[(op.name, executor.instance)] = PoiReconfiguration(
                    round_id=self._round_id
                )

        # Routing table updates go to the *source* executors of each
        # routed stream, resolved through the deployment metadata (a
        # stream's name is a label, not an address).
        for stream_name, table in plan.tables.items():
            stream = self._streams_by_name.get(stream_name)
            if stream is None:
                raise ReconfigurationError(
                    f"plan contains table for unmanaged stream "
                    f"{stream_name!r}"
                )
            src = stream.src_op
            instances = self.deployment.instances(src)
            update = self._encode_table_update(
                stream_name, table, copies=len(instances)
            )
            for executor in instances:
                payloads[(src, executor.instance)].router_updates[
                    stream_name
                ] = update

        # Migration lists go to the stateful destination executors.
        for op_name, per_pair in plan.migrations.items():
            for (old_instance, new_instance), keys in per_pair.items():
                sender = payloads[(op_name, old_instance)]
                sender.send.setdefault(new_instance, []).extend(keys)
                receiver = payloads[(op_name, new_instance)]
                receiver.receive_keys.extend(keys)
                receiver.expected_migrations += 1
        return payloads

    def _compact_router_tables(self):
        """Live compact tables held by source routers (metrics)."""
        for stream in self._routed_streams:
            for executor in self.deployment.instances(stream.src_op):
                table = executor.table_router(stream.name).table
                if isinstance(table, CompactRoutingTable):
                    yield table

    def _sum_compact_counter(self, attr: str) -> int:
        return sum(
            getattr(table, attr) for table in self._compact_router_tables()
        )

    def _wire_table(self, table: Optional[RoutingTable]):
        """The representation routers should hold: the plain table, or
        its compacted twin when compact tables are configured. Planning
        stays on plain tables either way (DESIGN.md §13)."""
        if table is None or self.config.compact_tables is None:
            return table
        return CompactRoutingTable.from_table(
            table, self.config.compact_tables
        )

    def _encode_table_update(
        self, stream_name: str, table: RoutingTable, copies: int = 1
    ):
        """The router_updates payload for one routed stream: a
        :class:`TableDelta` against the base the receivers hold
        (``_tables_before_round``), or a full table when deltas are off
        or no shared base exists. Feeds the ``propagate_bytes_*``
        counters and the per-stream memory gauges; ``copies`` is the
        number of receivers the payload fans out to."""
        wire_table = self._wire_table(table)
        full_bytes = snapshot_wire_bytes(wire_table)
        base = self._tables_before_round.get(stream_name)
        if self.config.delta_propagation and base is not None:
            update = TableDelta.diff(base, table, snapshot_table=wire_table)
            shipped_bytes = update.wire_bytes()
        else:
            update = wire_table
            shipped_bytes = full_bytes
        registry = self.deployment.metrics.registry
        registry.counter("propagate_bytes_sent", stream=stream_name).inc(
            shipped_bytes * copies
        )
        registry.counter("propagate_bytes_saved", stream=stream_name).inc(
            max(0, full_bytes - shipped_bytes) * copies
        )
        if isinstance(wire_table, CompactRoutingTable):
            table_bytes = wire_table.table_bytes()
            filter_bytes = wire_table.filter_bytes()
            registry.gauge(
                "compact_expected_false_route_rate", stream=stream_name
            ).set(wire_table.expected_false_route_rate())
        else:
            table_bytes = plain_table_memory_bytes(table)
            filter_bytes = 0
        registry.gauge("routing_table_bytes", stream=stream_name).set(
            table_bytes
        )
        registry.gauge("routing_filter_bytes", stream=stream_name).set(
            filter_bytes
        )
        return update

    def _build_rescale_payloads(
        self, plan: ReconfigurationPlan
    ) -> Dict[Tuple[str, int], PoiReconfiguration]:
        """Payloads for a rescale round (union view).

        Sources of routed streams get an :class:`EdgeUpdate` — the new
        destination list and table swapped atomically at PROPAGATE
        application (``update_table`` alone cannot change fan-out).
        Every instance of a stateful rescaled tier gets a
        :class:`RescaleSpec`: at apply time it scans its own state and
        ships each key whose owner changed. Because sketch-fed tables
        are lossy and the hash-fallback modulus changes with ``k``, a
        table diff cannot enumerate moving keys — each participant
        instead sends exactly one MIGRATE (possibly empty) to every
        other participant, making ``expected_migrations`` static.
        Hold lists come from the inventory gathered before planning.
        """
        ctx = self._rescale_ctx
        deployment = self.deployment
        topology = deployment.topology
        payloads: Dict[Tuple[str, int], PoiReconfiguration] = {}
        for op in topology.operators.values():
            for executor in deployment.instances(op.name):
                payloads[(op.name, executor.instance)] = PoiReconfiguration(
                    round_id=self._round_id
                )

        stateful_ops = set(self._rescale_stateful_ops())
        participants = list(range(ctx.union_k))
        for stream in ctx.new_streams:
            table = plan.tables.get(stream.name)
            # one wire representation per stream, shared by the edge
            # update and every RescaleSpec, so scan-migration owner
            # decisions agree exactly with data-plane routing even
            # within the compact false-route budget
            wire_table = self._wire_table(table)
            destinations = deployment.executors[stream.dst_op][: ctx.new_k]
            for executor in deployment.instances(stream.src_op):
                payloads[(stream.src_op, executor.instance)].edge_updates[
                    stream.name
                ] = EdgeUpdate(list(destinations), wire_table)

            if stream.dst_op not in stateful_ops:
                continue
            owner_spec = RescaleSpec(
                table=wire_table,
                hash_seed=stream.hash_seed,
                num_instances=ctx.new_k,
                participants=list(participants),
            )
            for executor in deployment.instances(stream.dst_op):
                payload = payloads[(stream.dst_op, executor.instance)]
                payload.rescale = RescaleSpec(
                    table=wire_table,
                    hash_seed=stream.hash_seed,
                    num_instances=ctx.new_k,
                    participants=list(participants),
                    retiring=executor.instance >= ctx.new_k,
                )
                payload.expected_migrations = len(participants) - 1
            for key, holder in self._inventory.get(
                stream.dst_op, {}
            ).items():
                owner = owner_spec.owner_of(key)
                if owner != holder:
                    payloads[(stream.dst_op, owner)].receive_keys.append(key)

        # Non-table-routed streams into a rescaled op (shuffle, plain
        # hash, PKG side inputs) change fan-out too: without an edge
        # update their sources keep the old destination list — stale
        # references to retired executors — and the old router modulus.
        routed_names = {s.name for s in ctx.new_streams}
        for op_name in ctx.ops:
            destinations = deployment.executors[op_name][: ctx.new_k]
            for stream in topology.inputs_of(op_name):
                if stream.name in routed_names:
                    continue
                for executor in deployment.instances(stream.src):
                    payloads[(stream.src, executor.instance)].edge_updates[
                        stream.name
                    ] = EdgeUpdate(list(destinations), None)
        return payloads

    def _repatch_agents(self) -> None:
        """Re-derive every agent's predecessor count, peer list and
        successor list from the *live* deployment — the union view
        while a rescale round runs, the final view after commit or
        rollback. Existing agents keep their protocol state; executors
        without an agent (just spawned) get one, which also installs
        their control handler."""
        deployment = self.deployment
        topology = deployment.topology
        for op in topology.operators.values():
            live = deployment.instances(op.name)
            predecessors = sum(
                len(deployment.executors[stream.src])
                for stream in topology.inputs_of(op.name)
            )
            successors: List = []
            for stream in topology.outputs_of(op.name):
                successors.extend(deployment.instances(stream.dst))
            for executor in live:
                needed = (
                    1
                    if isinstance(executor, SpoutExecutor)
                    else max(1, predecessors)
                )
                agent = self._agents.get((op.name, executor.instance))
                if agent is None:
                    agent = ReconfigurationAgent(
                        executor, self, needed, live, successors
                    )
                    self._agents[(op.name, executor.instance)] = agent
                else:
                    agent.predecessors_needed = needed
                    agent.peers = live
                    agent.successors = successors

    # ------------------------------------------------------------------
    # Round completion, deadline and abort
    # ------------------------------------------------------------------

    def _complete_round(self, record: RoundRecord) -> None:
        if self._rescale_ctx is not None:
            self._commit_rescale(record)
        record.completed_at = self.sim.now
        self._finish_round(record)

    def _commit_rescale(self, record: RoundRecord) -> None:
        """Every POI finished the rescale round: adopt the new instance
        set. Retiring instances are empty by the barrier argument —
        their final PROPAGATE was preceded (same FIFO channel) by all
        old-routed data, and post-swap routing never targets an
        instance ``>= new_k`` — so popping them destroys nothing."""
        ctx, self._rescale_ctx = self._rescale_ctx, None
        deployment = self.deployment
        retired = 0
        for op_name in ctx.ops:
            while len(deployment.executors[op_name]) > ctx.new_k:
                executor = deployment.retire_instance(op_name)
                self._agents.pop((op_name, executor.instance), None)
                if executor in self._instrumented:
                    self._instrumented.remove(executor)
                retired += 1
        for op_name in ctx.ops:
            deployment.topology.operator(op_name).parallelism = ctx.new_k
            for executor in deployment.executors[op_name]:
                executor.set_parallelism(ctx.new_k)
        self._routed_streams = ctx.new_streams
        self._streams_by_name = {s.name: s for s in self._routed_streams}
        self._repatch_agents()
        record.rescale_spawned = len(ctx.spawned)
        record.rescale_retired = retired
        registry = deployment.metrics.registry
        for op_name in ctx.ops:
            registry.gauge("elasticity_parallelism", op=op_name).set(
                ctx.new_k
            )

    def _finish_round(self, record: RoundRecord) -> None:
        self._end_round_trace(record)
        self._round_active = False
        if self._deadline is not None:
            self._deadline.cancel()
            self._deadline = None
        for observer in self.round_observers:
            observer(record)
        if self._on_round_complete is not None:
            callback, self._on_round_complete = self._on_round_complete, None
            callback(record)

    def _end_round_trace(self, record: RoundRecord) -> None:
        """Close the round's span tree with its terminal event. Spans
        already ended on the happy path ignore the extra end()."""
        spans, self._round_spans = self._round_spans, {}
        round_span = spans.get("round")
        if round_span is None:
            return
        if record.aborted:
            status, event = "aborted", "ABORT"
        elif record.vetoed:
            status, event = "vetoed", "VETO"
        elif record.skipped:
            status, event = "skipped", "SKIP"
        else:
            status, event = "committed", "COMMIT"
        for phase in (
            "STATS_COLLECT",
            "RESCALE_PROVISION",
            "PARTITION",
            "PROPAGATE",
            "MIGRATE",
        ):
            span = spans.get(phase)
            if span is not None:
                span.end(status=status)
        attrs = {"status": status}
        if record.abort_reason:
            attrs["reason"] = record.abort_reason
        if record.is_rescale:
            attrs["rescale"] = (
                f"{record.rescale_from}->{record.rescale_to}"
            )
        round_span.event(event, **attrs)
        round_span.end(
            status=status, collected_pairs=record.collected_pairs
        )

    def _on_round_deadline(self, round_id: int) -> None:
        if not self._round_active or round_id != self._round_id:
            return
        self._abort_round(
            f"deadline of {self.config.round_timeout_s}s expired"
        )

    def _abort_round(self, reason: str) -> None:
        """Abort the in-flight round: discard pending reconfigurations,
        release held keys, and roll routing back to the pre-round
        tables so every not-yet-migrated key keeps its previous (or
        hash-fallback) owner. State already migrated stays where it
        landed — hash fallback plus state merging keeps per-key totals
        exact; only locality is temporarily suboptimal."""
        record = self.rounds[-1]
        record.aborted = True
        record.aborted_at = self.sim.now
        record.abort_reason = reason
        self.current_tables = dict(self._tables_before_round)
        ctx, self._rescale_ctx = self._rescale_ctx, None
        self._rescale_request = None
        if ctx is None:
            self._push_tables(self.current_tables)
        else:
            self._push_rescale_rollback(ctx)
        for agent in self._agents.values():
            agent.on_abort(record.round_id)
        self.deployment.metrics.on_round_aborted()
        if ctx is not None:
            if ctx.spawned:
                self._begin_rescale_rollback(ctx, record)
            else:
                # Aborted scale-in: the retiring instances simply stay.
                # State already scan-migrated off them stays merged on
                # its receiver (totals stay exact under merge install);
                # routing is back on the pre-round tables either way.
                self._repatch_agents()
        self._finish_round(record)

    def _push_tables(self, tables: Dict[str, RoutingTable]) -> None:
        """Force-update every source router out-of-band (abort path:
        the in-band protocol is presumed wedged). Always a full table —
        never a delta — so it doubles as the base resync for
        delta-encoded propagation (docs/PROTOCOL.md)."""
        for stream in self._routed_streams:
            table = self._wire_table(tables.get(stream.name))
            for executor in self.deployment.instances(stream.src_op):
                executor.table_router(stream.name).update_table(table)

    # ------------------------------------------------------------------
    # Rescale abort: rollback of the provisioned instance set
    # ------------------------------------------------------------------

    def _push_rescale_rollback(self, ctx: _RescaleContext) -> None:
        """Abort path of a rescale: force every source's out-edge back
        to the pre-round width and table in one atomic step (sources
        that already applied the new edge would otherwise keep routing
        to doomed instances). Spawned sources are included — they may
        still hold in-flight tuples to process during the drain and
        must route like everyone else."""
        deployment = self.deployment
        for stream in self._routed_streams:  # pre-rescale view
            table = self._wire_table(self.current_tables.get(stream.name))
            destinations = deployment.executors[stream.dst_op][: ctx.old_k]
            for executor in deployment.instances(stream.src_op):
                edge = executor.out_edge(stream.name)
                edge.destinations = list(destinations)
                executor.table_router(stream.name).resize(
                    ctx.old_k, table
                )
        # Non-routed streams into rescaled ops roll back the same way
        # (a source that already applied the new edge would keep
        # routing to doomed instances).
        routed_names = {s.name for s in self._routed_streams}
        for op_name in ctx.ops:
            destinations = deployment.executors[op_name][: ctx.old_k]
            for stream in deployment.topology.inputs_of(op_name):
                if stream.name in routed_names:
                    continue
                for executor in deployment.instances(stream.src):
                    edge = executor.out_edge(stream.name)
                    edge.destinations = list(destinations)
                    router = edge.router
                    if hasattr(router, "resize") and not isinstance(
                        router, TableRouter
                    ):
                        router.resize(ctx.old_k)

    def _begin_rescale_rollback(
        self, ctx: _RescaleContext, record: RoundRecord
    ) -> None:
        """An aborted scale-out leaves doomed instances that may still
        hold queued tuples and already-migrated state. Data must never
        be dropped, so removal waits until each doomed instance is
        quiescent — idle with a stable received-count for two
        consecutive polls — then its state is evacuated to the
        pre-round owners. New rounds stay blocked until then."""
        self._rollback_pending = True
        watch = {executor: [-1, 0] for executor in ctx.spawned}
        self.sim.schedule(
            self.config.rescale_drain_poll_s,
            self._poll_rescale_rollback,
            ctx,
            record,
            watch,
        )

    def _poll_rescale_rollback(
        self, ctx: _RescaleContext, record: RoundRecord, watch: Dict
    ) -> None:
        received = self.deployment.metrics.received
        all_quiet = True
        for executor, entry in watch.items():
            count = received[(executor.op_name, executor.instance)]
            if executor.idle and count == entry[0]:
                entry[1] += 1
            else:
                entry[0] = count
                entry[1] = 0
            if entry[1] < 2:
                all_quiet = False
        if not all_quiet:
            self.sim.schedule(
                self.config.rescale_drain_poll_s,
                self._poll_rescale_rollback,
                ctx,
                record,
                watch,
            )
            return
        self._finish_rescale_rollback(ctx, record)

    def _finish_rescale_rollback(
        self, ctx: _RescaleContext, record: RoundRecord
    ) -> None:
        deployment = self.deployment
        streams_by_dst = {s.dst_op: s for s in self._routed_streams}
        for op_name in ctx.ops:
            stream = streams_by_dst.get(op_name)
            while len(deployment.executors[op_name]) > ctx.old_k:
                executor = deployment.executors[op_name][-1]
                self._evacuate_state(executor, stream, ctx.old_k)
                deployment.retire_instance(op_name)
                self._agents.pop((op_name, executor.instance), None)
                if executor in self._instrumented:
                    self._instrumented.remove(executor)
                self._redirect_installs(executor, stream)
        self._repatch_agents()
        registry = deployment.metrics.registry
        for op_name in ctx.ops:
            registry.gauge("elasticity_parallelism", op=op_name).set(
                ctx.old_k
            )
        record.rescale_rolled_back = True
        self._rollback_pending = False

    def _owner_under_current(self, stream, key, n: int) -> int:
        """Owner of ``key`` at width ``n`` under the live tables: valid
        table entry, else engine-identical hash fallback."""
        table = self.current_tables.get(stream.name)
        if table is not None:
            owner = table.lookup(key)
            if owner is not None and 0 <= owner < n:
                return owner
        return stable_hash(key, stream.hash_seed) % n

    def _evacuate_state(self, executor, stream, old_k: int) -> None:
        """Move every state entry off a doomed instance onto its
        pre-round owner (merge install keeps per-key totals exact)."""
        operator = executor.operator
        if not isinstance(operator, StatefulBolt) or not operator.state:
            return
        entries = executor.extract_state(list(operator.state))
        groups: Dict[int, Dict] = {}
        for key, value in entries.items():
            owner = self._owner_under_current(stream, key, old_k)
            groups.setdefault(owner, {})[key] = value
        for owner, sub in groups.items():
            self.deployment.executor(executor.op_name, owner).install_state(
                sub
            )

    def _redirect_installs(self, executor, stream) -> None:
        """A fault-delayed MIGRATE may still land on the removed
        executor after rollback; forward its entries to a live owner so
        no count is ever destroyed."""
        if stream is None:
            return
        op_name = executor.op_name

        def forward_install(entries: Dict) -> None:
            for key, value in entries.items():
                n = len(self.deployment.executors[op_name])
                owner = self._owner_under_current(stream, key, n)
                self.deployment.executor(op_name, owner).install_state(
                    {key: value}
                )

        executor.install_state = forward_install

    # ------------------------------------------------------------------
    # Agent notifications
    # ------------------------------------------------------------------

    def notify_propagated(self, agent, round_id: int) -> None:
        """A POI swapped tables and forwarded PROPAGATE. When the last
        one reports, the PROPAGATE span closes and the MIGRATE span
        opens (zero-length when no state moves)."""
        if not self._round_active or round_id != self._round_id:
            return
        self._propagated_outstanding -= 1
        if self._propagated_outstanding == 0:
            propagate_span = self._round_spans.get("PROPAGATE")
            if propagate_span is not None:
                propagate_span.end(status="propagated")
            self._round_spans["MIGRATE"] = self._tracer.begin(
                "MIGRATE",
                parent=self._round_spans.get("round"),
                pending_pois=self._complete_outstanding,
            )

    def notify_complete(self, agent, round_id: int) -> None:
        """A POI finished the round (propagated + all state received).
        Completions of aborted/superseded rounds are dropped."""
        if not self._is_current(round_id):
            return
        self._complete_outstanding -= 1
        if self._complete_outstanding == 0:
            self._complete_round(self.rounds[-1])
