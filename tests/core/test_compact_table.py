"""Unit tests: CompactRoutingTable (DESIGN.md §13).

The compact table must be a drop-in for RoutingTable on the data
plane: exact lookups for resident keys, split-set parity, fingerprint
equality across representations — with the single documented
approximation (absent keys may falsely route) held under the
configured budget.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CompactRoutingTable, CompactTableConfig, RoutingTable
from repro.core.compact_table import KeyFilter, plain_table_memory_bytes
from repro.errors import ReconfigurationError


def _random_mapping(n, width=8, seed=0):
    rng = random.Random(seed)
    return {f"user-{i:07d}": rng.randrange(width) for i in range(n)}


# ----------------------------------------------------------------------
# Filter
# ----------------------------------------------------------------------


def test_filter_has_no_false_negatives_and_supports_removal():
    f = KeyFilter(1000, bits_per_key=12, hashes=6)
    keys = [f"k{i}" for i in range(1000)]
    for key in keys:
        f.add(key)
    assert all(key in f for key in keys)
    for key in keys[:500]:
        f.discard(key)
    # no false negatives on the survivors
    assert all(key in f for key in keys[500:])


def test_filter_false_positive_rate_is_near_model():
    f = KeyFilter(2000, bits_per_key=12, hashes=6)
    for i in range(2000):
        f.add(f"present-{i}")
    hits = sum(1 for i in range(20_000) if f"absent-{i}" in f)
    measured = hits / 20_000
    model = f.false_positive_rate(2000)
    assert measured < 5 * model + 1e-3


# ----------------------------------------------------------------------
# Lookup exactness and API parity
# ----------------------------------------------------------------------


def test_resident_lookups_are_exact():
    mapping = _random_mapping(20_000)
    compact = CompactRoutingTable(mapping)
    assert len(compact) == len(mapping)
    for key, owner in mapping.items():
        assert compact.lookup(key) == owner
        assert key in compact


def test_absent_keys_fall_back_within_budget():
    mapping = _random_mapping(20_000)
    compact = CompactRoutingTable(mapping)
    absent = [f"ghost-{i}" for i in range(20_000)]
    false_routes = sum(1 for key in absent if compact.lookup(key) is not None)
    assert compact.within_budget()
    # 20k trials at a ~1e-7 expected rate: a handful of hits would
    # already be a broken filter, not bad luck
    assert false_routes <= 3
    assert compact.filter_rejects > 0


def test_split_parity_and_max_instance():
    mapping = {"a": 0, "b": 1, "c": 2}
    splits = {"hot": (1, 5)}
    plain = RoutingTable(mapping, splits)
    compact = CompactRoutingTable.from_table(plain)
    assert compact.split("hot") == (1, 5)
    assert compact.split("a") is None
    assert dict(compact.splits) == splits
    assert compact.num_split_keys == 1
    assert compact.max_instance() == plain.max_instance() == 5
    replaced = compact.with_splits({"b": (0, 3)})
    assert replaced.split("hot") is None
    assert replaced.split("b") == (0, 3)
    assert replaced == plain.with_splits({"b": (0, 3)})


def test_cross_representation_equality_both_directions():
    mapping = _random_mapping(5000)
    splits = {"hot": (0, 1)}
    plain = RoutingTable(mapping, splits)
    compact = CompactRoutingTable.from_table(plain)
    assert compact == plain
    assert plain == compact  # via reflected __eq__ (NotImplemented)
    other = RoutingTable(dict(mapping, extra=3), splits)
    assert compact != other
    assert other != compact


def test_enumeration_raises_loudly():
    compact = CompactRoutingTable({"a": 1})
    for method in (compact.keys, compact.items, compact.as_dict):
        with pytest.raises(TypeError):
            method()
    with pytest.raises(ReconfigurationError):
        compact.moved_keys(CompactRoutingTable({"a": 2}), lambda k: 0)


def test_moved_keys_against_enumerable_counterpart():
    old_map = {"a": 0, "b": 1, "c": 2}
    compact = CompactRoutingTable(old_map, {"s": (0, 1)})
    new = RoutingTable({"a": 1, "b": 1, "d": 0}, {"t": (1, 2)})
    moved = compact.moved_keys(new, lambda key: 99)
    # a changed owner, b kept it, d is new (fallback old owner), and
    # split keys (s in old, t in new) are excluded
    assert moved == {"a": (0, 1), "d": (99, 0)}
    consolidations = compact.split_consolidations(new, lambda key: 7)
    assert consolidations == {"s": ((0, 1), 7)}


def test_config_validation():
    with pytest.raises(ReconfigurationError):
        CompactTableConfig(fingerprint_bits=4)
    with pytest.raises(ReconfigurationError):
        CompactTableConfig(filter_hashes=0)
    with pytest.raises(ReconfigurationError):
        CompactTableConfig(false_route_budget=0.0)


# ----------------------------------------------------------------------
# Memory model
# ----------------------------------------------------------------------


def test_memory_model_is_bounded_and_key_length_independent():
    short = CompactRoutingTable(_random_mapping(10_000))
    long_keys = {f"session/{'x' * 64}/{i:07d}": i % 8 for i in range(10_000)}
    long = CompactRoutingTable(long_keys)
    # compact memory ignores key length; the plain model does not
    assert long.table_bytes() == short.table_bytes()
    assert plain_table_memory_bytes(
        RoutingTable(long_keys)
    ) > 2 * plain_table_memory_bytes(RoutingTable(_random_mapping(10_000)))
    # bounded bytes/key at the default config
    assert short.memory_bytes() / len(short) < 25


# ----------------------------------------------------------------------
# Property: false-route rate stays under budget across configurations
# ----------------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=3000),
    width=st.integers(min_value=1, max_value=16),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_false_route_rate_under_budget_property(n, width, seed):
    mapping = _random_mapping(n, width, seed)
    compact = CompactRoutingTable(mapping)
    assert compact.expected_false_route_rate() <= (
        compact.config.false_route_budget
    )
    for key, owner in mapping.items():
        assert compact.lookup(key) == owner
    absent = [f"phantom-{seed}-{i}" for i in range(2000)]
    false_routes = sum(1 for key in absent if compact.lookup(key) is not None)
    assert false_routes <= 2
