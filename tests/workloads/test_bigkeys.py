"""Unit and smoke tests: the big-keys scale workload."""

from collections import Counter

import pytest

from repro.core import CompactRoutingTable, TableDelta
from repro.engine import Cluster, Simulator, deploy
from repro.errors import WorkloadError
from repro.workloads import BigKeysConfig, BigKeysWorkload


def _small(**overrides):
    defaults = dict(
        parallelism=3,
        num_keys=5000,
        table_coverage=0.6,
        churn_keys=100,
        tuples_per_instance=500,
    )
    defaults.update(overrides)
    return BigKeysWorkload(BigKeysConfig(**defaults))


def test_config_validation():
    with pytest.raises(WorkloadError):
        BigKeysConfig(num_keys=0)
    with pytest.raises(WorkloadError):
        BigKeysConfig(table_coverage=1.5)
    with pytest.raises(WorkloadError):
        BigKeysConfig(churn_keys=-1)


def test_table_size_and_balance():
    workload = _small()
    table = workload.make_table(0)
    assert len(table) == workload.table_size == 3000
    owners = Counter(owner for _, owner in table.items())
    assert max(owners.values()) - min(owners.values()) <= 1


def test_epochs_churn_a_fixed_key_count():
    workload = _small()
    for epoch in range(3):
        old = workload.make_table(epoch)
        new = workload.make_table(epoch + 1)
        moved = old.moved_keys(new, lambda key: -1)
        assert len(moved) == workload.config.churn_keys
        # deltas stay churn-sized regardless of table size
        delta = TableDelta.diff(old, new)
        assert not delta.is_snapshot
        assert delta.num_changes == workload.config.churn_keys


def test_keys_are_stable_and_fixed_width():
    workload = _small()
    assert workload.key(42) == "user-0000042"
    assert len(workload.key(0)) == len(workload.key(4999))


def test_uncovered_keys_exercise_the_filter():
    workload = _small()
    compact = CompactRoutingTable.from_table(workload.make_table(0))
    size = workload.table_size
    misses = [workload.key(i) for i in range(size, size + 500)]
    false_routes = sum(1 for k in misses if compact.lookup(k) is not None)
    assert false_routes == 0
    # every miss is absorbed by the filter or the fingerprint probe
    assert (
        compact.filter_rejects + compact.filter_false_positives == 500
    )
    assert compact.filter_rejects > 450  # filter does the heavy lifting


def test_smoke_topology_conserves_counts():
    workload = _small(num_keys=300, tuples_per_instance=200)
    sim = Simulator()
    cluster = Cluster(sim, workload.config.parallelism)
    deployment = deploy(sim, cluster, workload.topology())
    deployment.start()
    sim.run()
    totals = Counter()
    for executor in deployment.instances("A"):
        for key, value in executor.operator.state.items():
            totals[key] += value
    assert totals == workload.expected_counts()
