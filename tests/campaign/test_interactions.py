"""Cross-flag interaction smoke tests (satellite of the campaign PR).

One quick matrix cell per pairwise combination of the four feature
flags — hybrid routing, mid-stream rescaling, delta propagation and
compact tables — asserting that the full invariant suite passes and
that same-seed fingerprints are stable per cell. These run the cell
in-process (no worker subprocess) so the whole grid stays fast; the
subprocess path is covered by test_executor.py.

``delta_propagation`` is on by default, so its "active" value here is
*off* — the interesting interaction is running other features without
delta-encoded table propagation.
"""

import itertools

import pytest

from repro.campaign.runners import episode_config, run_episode_cell

#: flag -> the value that activates its interesting behavior
ACTIVE = {
    "hybrid": True,
    "rescale": True,
    "delta_propagation": False,
    "compact_tables": True,
}

#: skewed-enough workload that hybrid hot-key splitting engages
QUICK = {"parallelism": 3, "keys": 16, "exponent": 1.4}

PAIRS = sorted(
    itertools.combinations(sorted(ACTIVE), 2)
)  # 6 pairwise combinations

SEED = 7


def _params(pair):
    return {**QUICK, **{flag: ACTIVE[flag] for flag in pair}}


@pytest.mark.parametrize("pair", PAIRS, ids=lambda p: "+".join(p))
def test_pairwise_flags_pass_invariants(pair):
    outcome = run_episode_cell(_params(pair), SEED)
    assert outcome.violations == [], (
        f"invariant violations with {pair}: {outcome.violations}"
    )
    assert outcome.bundle is None
    assert outcome.metrics["rounds_completed"] >= 1
    assert outcome.metrics["sim_tuples_per_s"] > 0


@pytest.mark.parametrize("pair", PAIRS, ids=lambda p: "+".join(p))
def test_pairwise_flags_fingerprint_is_seed_stable(pair):
    first = run_episode_cell(_params(pair), SEED)
    second = run_episode_cell(_params(pair), SEED)
    assert first.fingerprint == second.fingerprint
    assert first.metrics == second.metrics


def test_cell_config_is_a_pure_function_of_params_and_seed():
    params = _params(("hybrid", "rescale"))
    params["faults"] = True
    one = episode_config(params, SEED)
    two = episode_config(params, SEED)
    assert one == two
    # a different seed draws different structured sub-plans
    other = episode_config(params, SEED + 1)
    assert (one.fault_plan, one.rescales, one.hybrid) != (
        other.fault_plan,
        other.rescales,
        other.hybrid,
    )


def test_unknown_episode_param_is_rejected():
    with pytest.raises(ValueError, match="unknown parameter"):
        run_episode_cell({"paralellism": 3}, SEED)  # typo'd axis
