"""Tests for the NIC/bandwidth/latency network model."""

import pytest

from repro.engine import Cluster, Simulator
from repro.engine.network import FifoChannel, Network


def test_fifo_channel_rate_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        FifoChannel(sim, 0.0)
    with pytest.raises(ValueError):
        FifoChannel(sim, -1.0)


def test_fifo_channel_serializes_back_to_back():
    sim = Simulator()
    channel = FifoChannel(sim, rate=100.0)  # 100 bytes/s
    done = []
    channel.submit(50, done.append, "first")   # 0.5 s
    channel.submit(100, done.append, "second")  # +1.0 s
    sim.run()
    assert done == ["first", "second"]
    assert sim.now == pytest.approx(1.5)
    assert channel.bytes_served == 150
    assert channel.busy_time == pytest.approx(1.5)
    assert channel.utilization(3.0) == pytest.approx(0.5)


def test_fifo_channel_infinite_rate():
    sim = Simulator()
    channel = FifoChannel(sim, rate=None)
    done = []
    channel.submit(10**9, done.append, "x")
    sim.run()
    assert sim.now == 0.0
    assert done == ["x"]


def test_fifo_channel_reserve_respects_earliest():
    sim = Simulator()
    channel = FifoChannel(sim, rate=100.0)
    first = channel.reserve(100, earliest=2.0)
    assert first == pytest.approx(3.0)
    # Second reservation queues behind the first even though "now" is 0.
    second = channel.reserve(100)
    assert second == pytest.approx(4.0)


def _two_server_cluster(bandwidth_gbps=None, latency_s=0.001):
    sim = Simulator()
    cluster = Cluster(
        sim, 2, bandwidth_gbps=bandwidth_gbps, latency_s=latency_s
    )
    return sim, cluster


def test_transfer_pays_latency():
    sim, cluster = _two_server_cluster(bandwidth_gbps=None, latency_s=0.25)
    arrived = []
    cluster.transfer(
        cluster.server(0), cluster.server(1), 100, arrived.append, "m"
    )
    sim.run()
    assert arrived == ["m"]
    assert sim.now == pytest.approx(0.25)


def test_transfer_pays_bandwidth_twice():
    """Egress and ingress both serialize the payload."""
    sim, cluster = _two_server_cluster(bandwidth_gbps=8e-9, latency_s=0.0)
    # 8e-9 Gb/s == 1 byte/s
    arrived = []
    cluster.transfer(
        cluster.server(0), cluster.server(1), 3, arrived.append, "m"
    )
    sim.run()
    assert sim.now == pytest.approx(6.0)  # 3 s egress + 3 s ingress


def test_same_server_transfer_rejected():
    sim, cluster = _two_server_cluster()
    with pytest.raises(ValueError):
        cluster.transfer(
            cluster.server(0), cluster.server(0), 10, lambda: None
        )


def test_per_pair_fifo_ordering():
    sim, cluster = _two_server_cluster(bandwidth_gbps=1.0, latency_s=0.001)
    arrived = []
    for i in range(10):
        cluster.transfer(
            cluster.server(0), cluster.server(1), 1000, arrived.append, i
        )
    sim.run()
    assert arrived == list(range(10))


def test_incast_contention_on_ingress():
    """Two senders to one receiver share the receiver's ingress."""
    sim = Simulator()
    cluster = Cluster(sim, 3, bandwidth_gbps=8e-6, latency_s=0.0)
    # 8e-6 Gb/s = 1000 bytes/s per direction.
    arrived = []
    cluster.transfer(
        cluster.server(0), cluster.server(2), 1000, arrived.append, "a"
    )
    cluster.transfer(
        cluster.server(1), cluster.server(2), 1000, arrived.append, "b"
    )
    sim.run()
    # Each egress takes 1 s in parallel; ingress then serializes 2 x 1 s.
    assert sim.now == pytest.approx(3.0)
    assert sorted(arrived) == ["a", "b"]


def test_network_counters():
    sim, cluster = _two_server_cluster()
    cluster.transfer(cluster.server(0), cluster.server(1), 500, lambda: None)
    cluster.transfer(cluster.server(1), cluster.server(0), 300, lambda: None)
    sim.run()
    assert cluster.network.messages_sent == 2
    assert cluster.network.bytes_sent == 800


def test_inter_rack_latency():
    sim = Simulator()
    cluster = Cluster(
        sim,
        4,
        bandwidth_gbps=None,
        latency_s=0.001,
        num_racks=2,
        inter_rack_latency_s=0.5,
    )
    # Servers 0, 2 are rack 0; servers 1, 3 are rack 1.
    times = {}
    cluster.transfer(
        cluster.server(0), cluster.server(2), 1,
        lambda: times.__setitem__("same", sim.now),
    )
    cluster.transfer(
        cluster.server(0), cluster.server(1), 1,
        lambda: times.__setitem__("cross", sim.now),
    )
    sim.run()
    assert times["same"] == pytest.approx(0.001)
    assert times["cross"] == pytest.approx(0.5)


def test_cluster_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Cluster(sim, 0)
    with pytest.raises(ValueError):
        Cluster(sim, 2, num_racks=0)
    with pytest.raises(ValueError):
        Network(sim, 100.0, latency_s=-1.0)
