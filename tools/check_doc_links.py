#!/usr/bin/env python
"""Dead-link check for the repo's documentation (the CI docs gate).

Scans the top-level Markdown files for three kinds of internal
references and fails when any points at nothing:

1. Markdown links ``[text](target)`` whose target is a relative path
   (external ``http(s)://`` links are not checked — CI is offline);
2. backtick-quoted repo paths like ``src/repro/engine/metrics.py``,
   ``examples/quickstart.py`` or ``benchmarks/bench_fig13.py``
   (``results/*.txt`` are checked only when ``--require-results`` is
   given, since results are regenerated artifacts);
3. section cross-references of the form ``DESIGN.md §N`` — the target
   file must contain a ``## N.`` heading.

Module references like ``repro.observability`` (optionally dotted
down to a class or attribute, e.g. ``repro.core.TableDelta``) are
verified by *importing* them: the module must import cleanly from
``src/`` and the trailing attribute must exist — a doc naming a
renamed class fails the gate, not just one naming a deleted file.
Exit status 0 = clean, 1 = dead links (each printed as
``file:line: message``).

Run:  python tools/check_doc_links.py  [--require-results]
"""

from __future__ import annotations

import argparse
import importlib
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DOC_FILES = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "CHANGES.md",
    "docs/PROTOCOL.md",
]

MD_LINK = re.compile(r"\[[^\]]+\]\(([^)#\s]+)[^)]*\)")
#: backtick path: at least one slash, a known top dir, a file-ish tail
CODE_PATH = re.compile(
    r"`((?:src|examples|benchmarks|tests|tools|results|campaigns)/[\w./\-*]+)`"
)
SECTION_REF = re.compile(r"(\w+\.md) §(\d+)")
MODULE_REF = re.compile(r"`(repro(?:\.\w+)+)`")


def _exists(rel: str, base: str = "") -> bool:
    return os.path.exists(os.path.join(REPO, base, rel))


def _module_exists(dotted: str) -> bool:
    """Importlib-verify a ``repro.*`` reference: split off trailing
    capitalized attribute parts (e.g. the class in
    ``repro.analysis.telemetry.TelemetryLog``), import the module
    part, then require each attribute part to resolve."""
    src = os.path.join(REPO, "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    parts = dotted.split(".")
    # Longest importable prefix, remainder resolved as attributes —
    # handles classes (repro.core.TableDelta) and functions
    # (repro.core.routing_table.entry_fingerprint) alike.
    for cut in range(len(parts), 0, -1):
        try:
            obj = importlib.import_module(".".join(parts[:cut]))
        except ImportError:
            continue
        for attr in parts[cut:]:
            try:
                obj = getattr(obj, attr)
            except AttributeError:
                return False
        return True
    return False


def _section_exists(md_file: str, number: str) -> bool:
    path = os.path.join(REPO, md_file)
    if not os.path.isfile(path):
        return False
    with open(path) as handle:
        return any(
            re.match(rf"##+ {number}[.\s]", line) for line in handle
        )


def check_file(rel: str, require_results: bool) -> list:
    problems = []
    # Markdown links are relative to the doc's own directory; backtick
    # repo paths and module refs are repo-root anchored everywhere.
    doc_dir = os.path.dirname(rel)
    with open(os.path.join(REPO, rel)) as handle:
        for lineno, line in enumerate(handle, 1):
            for match in MD_LINK.finditer(line):
                target = match.group(1)
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                if not _exists(target, doc_dir):
                    problems.append(
                        f"{rel}:{lineno}: dead link target {target!r}"
                    )
            for match in CODE_PATH.finditer(line):
                target = match.group(1)
                if target.startswith("results/") and not require_results:
                    continue
                if "*" in target or "NN" in target:
                    # glob mention or figNN-style placeholder
                    continue
                if not _exists(target):
                    problems.append(
                        f"{rel}:{lineno}: missing path {target!r}"
                    )
            for match in SECTION_REF.finditer(line):
                md_file, number = match.groups()
                if md_file not in DOC_FILES:
                    continue
                if not _section_exists(md_file, number):
                    problems.append(
                        f"{rel}:{lineno}: {md_file} has no section "
                        f"§{number}"
                    )
            for match in MODULE_REF.finditer(line):
                dotted = match.group(1)
                if not _module_exists(dotted):
                    problems.append(
                        f"{rel}:{lineno}: unknown module {dotted!r}"
                    )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--require-results",
        action="store_true",
        help="also require referenced results/*.txt files to exist",
    )
    args = parser.parse_args(argv)

    problems = []
    for rel in DOC_FILES:
        if _exists(rel):
            problems.extend(check_file(rel, args.require_results))
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} dead doc link(s)")
        return 1
    print(f"doc links OK ({', '.join(f for f in DOC_FILES if _exists(f))})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
