"""Tests for the individual multilevel phases: matching, coarsening,
initial bisection, and FM refinement."""

import random

from repro.partitioning import Graph, edge_cut
from repro.partitioning.coarsen import coarsen, coarsen_until
from repro.partitioning.initial import greedy_bisection
from repro.partitioning.matching import heavy_edge_matching, matching_size
from repro.partitioning.refine import fm_refine


def _path_graph(n, weight=1.0):
    return Graph.from_edges(n, [(i, i + 1, weight) for i in range(n - 1)])


def test_matching_is_symmetric_and_total():
    rng = random.Random(0)
    graph = _path_graph(10)
    match = heavy_edge_matching(graph, rng)
    for v, partner in enumerate(match):
        assert match[partner] == v


def test_matching_prefers_heavy_edges():
    # Heavy disjoint pairs with light cross links: whichever vertex is
    # visited first, its heaviest free neighbor is its pair partner, so
    # the heavy edges are always collapsed.
    graph = Graph.from_edges(
        4, [(0, 1, 100.0), (2, 3, 100.0), (1, 2, 1.0), (0, 3, 1.0)]
    )
    for seed in range(10):
        match = heavy_edge_matching(graph, random.Random(seed))
        assert match[0] == 1 and match[1] == 0
        assert match[2] == 3 and match[3] == 2


def test_matching_on_isolated_vertices():
    graph = Graph(4)
    match = heavy_edge_matching(graph, random.Random(1))
    assert match == [0, 1, 2, 3]
    assert matching_size(match) == 0


def test_coarsen_preserves_total_weights():
    rng = random.Random(2)
    graph = Graph.from_edges(
        6,
        [(0, 1, 5.0), (2, 3, 5.0), (4, 5, 5.0), (1, 2, 1.0), (3, 4, 1.0)],
        vertex_weights=[1, 2, 3, 4, 5, 6],
    )
    match = heavy_edge_matching(graph, rng)
    level = coarsen(graph, match)
    assert level.coarse.total_vertex_weight == graph.total_vertex_weight
    # Cross edges are preserved or merged, never lost beyond collapsed
    # pairs.
    assert level.coarse.num_vertices < graph.num_vertices


def test_coarsen_projection_roundtrip():
    rng = random.Random(3)
    graph = _path_graph(8)
    match = heavy_edge_matching(graph, rng)
    level = coarsen(graph, match)
    coarse_parts = [i % 2 for i in range(level.coarse.num_vertices)]
    fine_parts = level.project(coarse_parts)
    for v in range(graph.num_vertices):
        assert fine_parts[v] == coarse_parts[level.fine_to_coarse[v]]


def test_coarsen_until_reaches_threshold():
    rng = random.Random(4)
    graph = _path_graph(128)
    coarsest, levels = coarsen_until(graph, rng, min_vertices=10)
    assert coarsest.num_vertices <= max(10, graph.num_vertices)
    assert coarsest.total_vertex_weight == graph.total_vertex_weight
    assert len(levels) >= 1


def test_greedy_bisection_respects_target_roughly():
    rng = random.Random(5)
    graph = _path_graph(20)
    target0 = 10.0
    parts = greedy_bisection(graph, target0, (11.0, 11.0), rng)
    weight0 = sum(1 for p in parts if p == 0)
    assert 8 <= weight0 <= 12
    # A path bisection should cut very few edges.
    assert edge_cut(graph, parts) <= 3.0


def test_greedy_bisection_handles_disconnected_graph():
    rng = random.Random(6)
    graph = Graph.from_edges(6, [(0, 1, 1.0), (2, 3, 1.0)])  # 4, 5 isolated
    parts = greedy_bisection(graph, 3.0, (3.5, 3.5), rng)
    assert set(parts) <= {0, 1}
    assert sum(1 for p in parts if p == 0) >= 2


def test_greedy_bisection_trivial_sizes():
    rng = random.Random(7)
    assert greedy_bisection(Graph(0), 0.0, (1.0, 1.0), rng) == []
    assert greedy_bisection(Graph(1), 1.0, (1.0, 1.0), rng) == [0]


def test_fm_refine_improves_bad_bisection():
    # Two cliques joined by a single light edge; start from the worst
    # split (interleaved) and check FM finds the natural one.
    edges = []
    for group in (range(0, 4), range(4, 8)):
        group = list(group)
        for i, u in enumerate(group):
            for v in group[i + 1 :]:
                edges.append((u, v, 10.0))
    edges.append((0, 4, 1.0))
    graph = Graph.from_edges(8, edges)
    parts = [v % 2 for v in range(8)]
    before = edge_cut(graph, parts)
    after = fm_refine(graph, parts, (4.12, 4.12))
    assert after < before
    assert after == edge_cut(graph, parts)
    assert after == 1.0
    # Balance respected: 4 vertices per side.
    assert sum(1 for p in parts if p == 0) == 4


def test_fm_refine_respects_balance_caps():
    graph = Graph.from_edges(4, [(0, 1, 100.0), (2, 3, 100.0), (1, 2, 1.0)])
    parts = [0, 0, 1, 1]
    # Moving anything would break the 2.2-weight cap, so the (already
    # optimal) split must stay put.
    cut = fm_refine(graph, parts, (2.2, 2.2))
    assert cut == 1.0
    assert parts == [0, 0, 1, 1]


def test_fm_refine_empty_graph():
    assert fm_refine(Graph(0), [], (1.0, 1.0)) == 0.0


def test_fm_refine_reduces_violation_when_start_unbalanced():
    graph = _path_graph(10)
    parts = [0] * 10  # everything on one side
    fm_refine(graph, parts, (5.5, 5.5))
    weight0 = sum(1 for p in parts if p == 0)
    assert 4 <= weight0 <= 6
