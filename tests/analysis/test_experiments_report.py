"""Smoke tests for the figure drivers and the report formatter."""

import pytest

from repro.analysis import experiments
from repro.analysis.report import format_table, ktuples


class TestReport:
    def test_format_table_alignment(self):
        rows = [
            {"a": 1, "b": "x"},
            {"a": 22, "b": "yy"},
        ]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len({len(line) for line in lines[2:]}) <= 2

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="T")
        assert format_table([]) == "(no rows)"

    def test_format_table_column_subset_and_missing(self):
        rows = [{"a": 1.23456, "b": 2}]
        text = format_table(rows, columns=["a", "missing"])
        assert "1.235" in text
        assert "-" in text

    def test_format_table_large_floats_thousands(self):
        text = format_table([{"x": 123456.7}])
        assert "123,457" in text

    def test_ktuples(self):
        assert ktuples(123456) == 123.5


class TestDriversSmoke:
    """Tiny-grid runs of every figure driver (full runs live in
    benchmarks/)."""

    def test_fig7_single_cell(self):
        rows = experiments.fig7(
            parallelisms=(2,), localities=(1.0,), paddings=(0,),
            policies=("locality-aware",),
        )
        assert len(rows) == 1
        assert rows[0]["throughput"] > 0
        assert rows[0]["measured_locality"] == 1.0

    def test_fig8_shape(self):
        rows = experiments.fig8(
            localities=(0.6,), parallelisms=(2,),
            policies=("hash-based",),
        )
        assert rows[0]["padding"] == 12000

    def test_fig9_shape(self):
        rows = experiments.fig9(
            paddings=(0,), parallelisms=(2,), policies=("worst-case",),
        )
        assert rows[0]["locality"] == 0.8

    def test_fig10_rows(self):
        rows = experiments.fig10(weeks=2, quick=True)
        assert rows
        assert {"tag", "location", "day", "frequency"} <= set(rows[0])

    def test_fig11_rows(self):
        rows = experiments.fig11(weeks=2, quick=True)
        modes = {r["mode"] for r in rows}
        assert modes == {"online", "offline", "hash-based"}
        assert all(0.0 <= r["locality"] <= 1.0 for r in rows)

    def test_fig12_rows(self):
        rows = experiments.fig12(
            edge_budgets=(10,), parallelisms=(2,), quick=True
        )
        assert rows[0]["edges"] == 10

    def test_fig13_quick(self):
        rows = experiments.fig13(quick=True)
        assert any(r["reconfigure"] for r in rows)
        assert any(not r["reconfigure"] for r in rows)
        for row in rows:
            assert row["samples"]

    def test_fig14_quick_grid_shape(self):
        rows = experiments.fig14(parallelisms=(2,), quick=True)
        assert len(rows) == 2

    def test_cli_writes_results(self, tmp_path, capsys):
        code = experiments.main(
            ["fig10", "--quick", "--out-dir", str(tmp_path)]
        )
        assert code == 0
        assert (tmp_path / "fig10.txt").exists()
        captured = capsys.readouterr()
        assert "fig10" in captured.out
