"""The online reconfiguration protocol (Section 3.4, Algorithm 1).

Message flow, as in Figure 6 of the paper:

1. ``GET_METRICS``  — manager asks instrumented POIs for statistics;
2. ``SEND_METRICS`` — POIs reply with their SpaceSaving contents;
3. ``SEND_RECONF``  — manager ships each POI its new routing tables and
   its state send/receive lists; the POI starts *buffering* tuples for
   keys whose state it is about to receive;
4. ``ACK_RECONF``   — POIs acknowledge;
5. ``PROPAGATE``    — cascades through the DAG in topological order.
   A POI acts once it holds a PROPAGATE from *every* predecessor
   instance: it swaps its routing tables, migrates state, and forwards
   PROPAGATE downstream;
6. ``MIGRATE``      — peers exchange the state of reassigned keys;
   buffered tuples replay on arrival.

Because PROPAGATE and MIGRATE travel through the same FIFO channels as
data, a PROPAGATE acts as a barrier: every tuple routed with the old
table is delivered before it. Hence, by the time a POI extracts state,
it has processed all old-routed traffic — no tuple is lost and no
count is misplaced (validated by integration tests).

Steps 1–4 are manager↔POI RPCs and travel out-of-band (they do not
alter routing); steps 5–6 are in-band.

Robustness: the agent is *idempotent* with respect to the imperfect
deliveries repro.faults can inject. PROPAGATEs are deduplicated per
sender, MIGRATEs per (round, sender); stale messages (from an aborted
or superseded round) are absorbed instead of raising, and a stale
MIGRATE still installs its state entries so no count is ever destroyed.
Every absorbed anomaly is counted in :attr:`ReconfigurationAgent.anomalies`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.core.routing_table import RoutingTable
from repro.core.table_delta import TableDelta
from repro.engine.executor import BaseExecutor, ControlMessage, SpoutExecutor
from repro.engine.grouping import TableRouter, stable_hash
from repro.engine.operators import StatefulBolt
from repro.errors import ReconfigurationError

GET_METRICS = "GET_METRICS"
SEND_METRICS = "SEND_METRICS"
SEND_RECONF = "SEND_RECONF"
ACK_RECONF = "ACK_RECONF"
PROPAGATE = "PROPAGATE"
MIGRATE = "MIGRATE"


@dataclass
class EdgeUpdate:
    """Atomic (destinations, table) swap for one out-edge.

    A rescale round changes a stream's fan-out width; the new table
    addresses the new width, so destinations, table and the router's
    destination count must swap in one step at PROPAGATE application —
    a (new table, old width) hybrid would route out of range.
    """

    destinations: List[BaseExecutor]
    table: Optional[RoutingTable]


@dataclass
class RescaleSpec:
    """Scan-based migration directive for one instance of a rescaled
    operator.

    A rescale changes the hash-fallback modulus, so the manager cannot
    enumerate the keys that move by diffing tables (sketch statistics
    are lossy — state exists for keys no table mentions). Instead every
    participant scans its own state at apply time, groups keys by their
    new owner, and sends exactly one MIGRATE (possibly empty) to every
    other participant; ``expected_migrations`` is then a static
    ``len(participants) - 1`` regardless of where state actually sits.
    """

    #: the new routing table of the operator's table-routed input
    table: Optional[RoutingTable]
    #: hash seed of that input stream (engine-identical fallback)
    hash_seed: int
    #: destination instance count *after* the rescale
    num_instances: int
    #: all instances live during the round (union of old and new sets)
    participants: List[int]
    #: True when this instance is being removed by the rescale
    retiring: bool = False

    def owner_of(self, key: Hashable) -> int:
        """Post-rescale owner of ``key``: table entry, else fallback."""
        if self.table is not None:
            owner = self.table.lookup(key)
            if owner is not None:
                return owner
        return stable_hash(key, self.hash_seed) % self.num_instances


@dataclass
class PoiReconfiguration:
    """The reconfiguration message payload for one POI (the structure
    listed in Section 3.4: router, send, receive)."""

    round_id: int
    #: out-stream name → new routing table (plain or compact) or a
    #: :class:`~repro.core.table_delta.TableDelta` against the table
    #: the router currently holds
    router_updates: Dict[str, object] = field(default_factory=dict)
    #: peer instance → keys of local state to ship there
    send: Dict[int, List[Hashable]] = field(default_factory=dict)
    #: keys whose state will arrive from peers (buffer their tuples)
    receive_keys: List[Hashable] = field(default_factory=list)
    #: how many MIGRATE messages to expect
    expected_migrations: int = 0
    #: out-stream name → atomic destinations+table swap (rescale rounds)
    edge_updates: Dict[str, EdgeUpdate] = field(default_factory=dict)
    #: scan-based migration directive (rescale rounds only)
    rescale: Optional[RescaleSpec] = None


@dataclass
class MigratePayload:
    round_id: int
    keys: List[Hashable]
    entries: Dict[Hashable, object]


class ReconfigurationAgent:
    """Per-POI protocol engine; installed as the executor's control
    handler."""

    def __init__(
        self,
        executor: BaseExecutor,
        manager,
        predecessors_needed: int,
        peers: List[BaseExecutor],
        successors: List[BaseExecutor],
    ) -> None:
        self.executor = executor
        self.manager = manager
        #: PROPAGATEs required before acting (1 for spouts: the manager)
        self.predecessors_needed = max(1, predecessors_needed)
        self.peers = peers
        self.successors = successors
        self._pending: Optional[PoiReconfiguration] = None
        #: distinct senders whose PROPAGATE arrived for the pending round
        self._propagated_from: Set[str] = set()
        self._migrations = 0
        #: (round_id, sender) of every MIGRATE already applied, so
        #: duplicated deliveries never install state twice
        self._seen_migrations: Set[Tuple[int, str]] = set()
        self._applied_round = -1
        #: absorbed protocol anomalies, by kind (telemetry)
        self.anomalies: Counter = Counter()
        executor.control_handler = self.handle

    # ------------------------------------------------------------------
    # Out-of-band entry points (called by the manager with RPC latency)
    # ------------------------------------------------------------------

    def on_get_metrics(self) -> Dict:
        """Steps 1-2: return and reset the collected statistics."""
        tracker = self.executor.instrumentation
        if tracker is None:
            return {}
        return tracker.collect_and_clear()

    def on_state_inventory(self) -> List[Hashable]:
        """Rescale pre-step: the keys currently materialized in this
        POI's state (insertion order — deterministic). The manager uses
        the inventory to compute hold lists for a rescale round, since
        table diffs cannot enumerate fallback-owned state."""
        operator = self.executor.operator
        if isinstance(operator, StatefulBolt):
            return list(operator.state)
        return []

    def on_reconf(self, payload: PoiReconfiguration) -> None:
        """Step 3: store the pending reconfiguration and start
        buffering tuples for keys whose state has not arrived yet.

        Idempotent: a duplicate SEND_RECONF for the pending round and a
        stale one for an older round are absorbed; a *newer* round
        supersedes a wedged pending one (the manager only starts a new
        round after completing or aborting the previous, so a leftover
        pending here is the residue of a lost/aborted round)."""
        if self._pending is not None:
            if payload.round_id == self._pending.round_id:
                self.anomalies["duplicate_reconf"] += 1
                return
            if payload.round_id < self._pending.round_id:
                self.anomalies["stale_reconf"] += 1
                return
            self.anomalies["superseded_reconf"] += 1
            self._discard_pending()
        self._pending = payload
        self._propagated_from = set()
        self._migrations = 0
        if payload.receive_keys:
            self.executor.hold_keys(payload.receive_keys)

    def on_abort(self, round_id: int) -> None:
        """The manager aborted ``round_id`` (deadline expired): discard
        the pending reconfiguration and release every held key back to
        normal routing — their buffered tuples replay against whatever
        state is locally present (hash-fallback semantics)."""
        if self._pending is None or self._pending.round_id != round_id:
            return
        self.anomalies["aborted"] += 1
        self._discard_pending()

    def _discard_pending(self) -> None:
        self._pending = None
        self._propagated_from = set()
        self._migrations = 0
        release_all = getattr(self.executor, "release_all_held", None)
        if release_all is not None:
            release_all()

    # ------------------------------------------------------------------
    # In-band control messages (PROPAGATE / MIGRATE)
    # ------------------------------------------------------------------

    def handle(self, msg: ControlMessage, executor: BaseExecutor) -> None:
        if msg.kind == PROPAGATE:
            self._on_propagate(msg.payload, msg.sender)
        elif msg.kind == MIGRATE:
            self._on_migrate(msg.payload, msg.sender)
        else:
            raise ReconfigurationError(
                f"{executor.name}: unexpected control message {msg.kind!r}"
            )

    def _on_propagate(self, round_id: int, sender: str) -> None:
        if self._pending is None or round_id != self._pending.round_id:
            # Late/duplicated PROPAGATE of an aborted, superseded or
            # already-finished round: absorb it (the barrier property
            # only matters while the round is live here).
            self.anomalies["stale_propagate"] += 1
            return
        if sender in self._propagated_from:
            self.anomalies["duplicate_propagate"] += 1
            return
        self._propagated_from.add(sender)
        if (
            len(self._propagated_from) >= self.predecessors_needed
            and self._applied_round != round_id
        ):
            self._apply()

    def _apply(self) -> None:
        """All predecessors reconfigured: swap tables, migrate state,
        propagate downstream (Algorithm 1's poi_migration tail)."""
        payload = self._pending
        executor = self.executor

        for stream_name, update in payload.router_updates.items():
            router = executor.table_router(stream_name)
            if isinstance(update, TableDelta):
                # Delta-encoded propagation (docs/PROTOCOL.md): resolve
                # against the table this router currently holds. A base
                # mismatch means the receiver is desynced — count it
                # and keep the old table; the manager's abort/resync
                # paths push full snapshots.
                try:
                    update = update.apply(router.table)
                except ReconfigurationError:
                    self.anomalies["delta_base_mismatch"] += 1
                    continue
            router.update_table(update)

        for stream_name, update in payload.edge_updates.items():
            edge = executor.out_edge(stream_name)
            edge.destinations = list(update.destinations)
            router = edge.router
            new_width = len(update.destinations)
            if isinstance(router, TableRouter):
                router.resize(new_width, update.table)
            elif hasattr(router, "resize"):
                # Hash/PKG/shuffle routers: adopt the new modulus and
                # drop caches/counters sized for the old width.
                router.resize(new_width)
            else:
                raise ReconfigurationError(
                    f"{executor.name}: stream {stream_name!r} router "
                    f"{type(router).__name__} has no resize seam; it "
                    f"cannot survive a rescale"
                )

        # d-choices routers balance against accumulated send counts;
        # pre-round counts describe traffic under the old placement, so
        # they reset at the same barrier that swaps the tables.
        for edge in executor.out_edges:
            reset = getattr(edge.router, "reset_sent", None)
            if reset is not None:
                reset()

        for peer_instance, keys in payload.send.items():
            self._send_migrate(peer_instance, keys, payload.round_id)

        if payload.rescale is not None:
            self._rescale_migrate(payload.rescale, payload.round_id)

        forward = lambda dst: executor.send_control(  # noqa: E731
            dst,
            ControlMessage(
                PROPAGATE, payload.round_id, sender=executor.name
            ),
        )
        for successor in self.successors:
            forward(successor)

        self._applied_round = payload.round_id
        # Propagation is reported before a possible completion so the
        # manager's PROPAGATE phase always closes before the round does.
        self.manager.notify_propagated(self, payload.round_id)
        if self._migrations >= payload.expected_migrations:
            self._finish_round()

    def _send_migrate(
        self, peer_instance: int, keys: List[Hashable], round_id: int
    ) -> None:
        executor = self.executor
        entries = executor.extract_state(keys)
        migrate = ControlMessage(
            MIGRATE,
            MigratePayload(round_id, list(keys), entries),
            sender=executor.name,
        )
        size = (
            executor.costs.control_message_bytes
            + executor.costs.state_bytes_per_key * len(keys)
        )
        if keys:
            executor.metrics.on_keys_migrated(len(keys))
        executor.send_control(self.peers[peer_instance], migrate, size)

    def _rescale_migrate(self, spec: RescaleSpec, round_id: int) -> None:
        """Scan local state, ship each key to its post-rescale owner.

        One MIGRATE goes to *every* other participant even when no keys
        move there — the receiver's ``expected_migrations`` counts
        participants, not planned transfers, so the round's completion
        condition is independent of where state happens to sit.
        """
        executor = self.executor
        groups: Dict[int, List[Hashable]] = {
            peer: []
            for peer in spec.participants
            if peer != executor.instance
        }
        operator = executor.operator
        if isinstance(operator, StatefulBolt):
            for key in list(operator.state):
                owner = spec.owner_of(key)
                if owner != executor.instance:
                    groups[owner].append(key)
        for peer_instance, keys in groups.items():
            self._send_migrate(peer_instance, keys, round_id)

    def _on_migrate(self, payload: MigratePayload, sender: str) -> None:
        token = (payload.round_id, sender)
        if token in self._seen_migrations:
            # Exact redelivery: installing twice would double counts.
            self.anomalies["duplicate_migrate"] += 1
            return
        self._seen_migrations.add(token)
        executor = self.executor
        executor.install_state(payload.entries)
        for key in payload.keys:
            executor.release_key(key)
        if self._pending is None or payload.round_id != self._pending.round_id:
            # State from an aborted/superseded round still gets
            # installed above (never destroy state), it just no longer
            # advances any round.
            self.anomalies["stale_migrate"] += 1
            return
        self._migrations += 1
        if (
            self._applied_round == payload.round_id
            and self._migrations >= self._pending.expected_migrations
        ):
            self._finish_round()

    def _finish_round(self) -> None:
        payload = self._pending
        self._pending = None
        self._propagated_from = set()
        self._migrations = 0
        self.manager.notify_complete(self, payload.round_id)

    # ------------------------------------------------------------------
    # Introspection (tests, experiments)
    # ------------------------------------------------------------------

    @property
    def busy(self) -> bool:
        return self._pending is not None


def install_agents(deployment, manager) -> Dict[Tuple[str, int], "ReconfigurationAgent"]:
    """Create one agent per executor, wired with its predecessor counts,
    peers, and successor instances."""
    topology = deployment.topology
    agents: Dict[Tuple[str, int], ReconfigurationAgent] = {}
    for op in topology.operators.values():
        predecessors_needed = sum(
            topology.operator(stream.src).parallelism
            for stream in topology.inputs_of(op.name)
        )
        peers = deployment.instances(op.name)
        successors: List[BaseExecutor] = []
        for stream in topology.outputs_of(op.name):
            successors.extend(deployment.instances(stream.dst))
        for executor in peers:
            agents[(op.name, executor.instance)] = ReconfigurationAgent(
                executor,
                manager,
                predecessors_needed
                if not isinstance(executor, SpoutExecutor)
                else 1,
                peers,
                successors,
            )
    return agents
