"""The ``backend`` campaign runner: cross-backend equivalence cells.

Pinned behaviors: the runner is registered and validates its
parameters strictly like the other runners; ``both`` cells report the
speedup axes and zero violations on deterministic scenarios;
``skew-<policy>`` scenario values expand to the skew scenario with
that policy; single-backend cells report plain throughput metrics;
the rescale scenario replays the DES decision and stays equivalent.
"""

import pytest

from repro.campaign.config import RUNNER_NAMES, validate
from repro.campaign.runners import (
    BACKEND_SCENARIOS,
    RUNNERS,
    run_backend_cell,
    run_cell,
)

QUICK = {"tuples_per_instance": 200, "parallelism": 3}


def test_backend_runner_registered():
    assert "backend" in RUNNER_NAMES
    assert "backend" in RUNNERS
    assert set(BACKEND_SCENARIOS) == {"fig13", "skew", "rescale"}


def test_backend_runner_accepted_by_config_validation():
    config = validate(
        {
            "campaign": "be",
            "runner": "backend",
            "matrix": {"scenario": ["fig13", "skew-table"]},
        }
    )
    assert config.runner == "backend"


def test_unknown_parameter_rejected():
    with pytest.raises(ValueError, match="unknown parameter"):
        run_backend_cell({"scenario": "fig13", "bogus": 1}, seed=0)


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError, match="unknown scenario"):
        run_backend_cell({"scenario": "nope", **QUICK}, seed=0)


def test_fig13_cell_equivalent_with_speedup_axes():
    outcome = run_cell(
        "backend", {"scenario": "fig13", "padding": 0, **QUICK}, seed=0
    )
    assert outcome.ok, outcome.violations
    assert outcome.metrics["equivalent"] == 1.0
    assert outcome.metrics["locality_delta"] == 0.0
    assert outcome.metrics["vectorized_speedup_x"] > 0
    assert outcome.metrics["vectorized_throughput"] > 0
    assert outcome.metrics["reference_throughput"] > 0


@pytest.mark.parametrize("scenario", ["skew-table", "skew-hash"])
def test_skew_policy_scenarios_equivalent(scenario):
    outcome = run_backend_cell({"scenario": scenario, **QUICK}, seed=0)
    assert outcome.ok, outcome.violations
    assert outcome.metrics["equivalent"] == 1.0


def test_skew_hybrid_relaxes_placements_but_stays_equivalent():
    outcome = run_backend_cell({"scenario": "skew-hybrid", **QUICK}, seed=0)
    assert outcome.ok, outcome.violations


def test_single_backend_cell_reports_throughput():
    outcome = run_backend_cell(
        {"scenario": "fig13", "backend": "vectorized", "padding": 0, **QUICK},
        seed=0,
    )
    assert outcome.ok
    assert outcome.metrics["throughput"] > 0
    assert 0.0 <= outcome.metrics["locality"] <= 1.0
    assert "vectorized_speedup_x" not in outcome.metrics


def test_rescale_scenario_replays_des_decision():
    outcome = run_backend_cell(
        {"scenario": "rescale", "tuples_per_instance": 500}, seed=3
    )
    assert outcome.ok, outcome.violations
    assert outcome.metrics["equivalent"] == 1.0


def test_rescale_rejects_single_backend():
    with pytest.raises(ValueError, match="both"):
        run_backend_cell(
            {"scenario": "rescale", "backend": "vectorized"}, seed=0
        )
