"""Repro bundles: minimal, self-contained failure reproductions.

When a fuzz episode violates an invariant, the driver writes a JSON
*bundle* — the episode config (which embeds the seed and the exact
fault plan), the violations observed, and the run's event-sequence
fingerprint. The bundle is the complete recipe: :func:`replay_bundle`
re-runs the episode from the config alone and verifies it reproduces
the *identical* failing trace (same fingerprint, same violations), so
a bundle attached to a bug report replays anywhere.

Format (``schema`` guards future evolution)::

    {
      "schema": "repro.testing/bundle-v1",
      "config": { ... EpisodeConfig.to_dict() ... },
      "violations": [ {invariant, detail, at_s, round_id}, ... ],
      "fingerprint": 1234567890,
      "rounds": {"total": 5, "completed": 4, "aborted": 1},
      "faults_injected": 2,
      "telemetry_records": 40
    }
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import List, Optional

from repro.testing.episode import EpisodeConfig, EpisodeResult, run_episode
from repro.testing.invariants import Violation

BUNDLE_SCHEMA = "repro.testing/bundle-v1"


def bundle_data(result: EpisodeResult) -> dict:
    """The JSON-ready bundle payload for a (failing) episode."""
    return {
        "schema": BUNDLE_SCHEMA,
        "config": result.config.to_dict(),
        "violations": [v.to_dict() for v in result.violations],
        "fingerprint": result.fingerprint,
        "rounds": {
            "total": result.rounds,
            "completed": result.rounds_completed,
            "aborted": result.rounds_aborted,
        },
        "faults_injected": result.faults_injected,
        "telemetry_records": result.telemetry_records,
    }


def write_bundle(directory: str, result: EpisodeResult) -> str:
    """Write the bundle for ``result`` into ``directory``; returns the
    file path (``bundle-seed<seed>.json``)."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(
        directory, f"bundle-seed{result.config.seed}.json"
    )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(bundle_data(result), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_bundle(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    schema = data.get("schema")
    if schema != BUNDLE_SCHEMA:
        raise ValueError(
            f"{path}: unsupported bundle schema {schema!r} "
            f"(expected {BUNDLE_SCHEMA!r})"
        )
    return data


@dataclass
class ReplayOutcome:
    """Result of replaying a bundle against the current code."""

    result: EpisodeResult
    #: replay produced the identical event sequence
    fingerprint_matches: bool
    #: replay produced the identical violation list
    violations_match: bool
    expected_fingerprint: int
    expected_violations: List[Violation]

    @property
    def reproduced(self) -> bool:
        return self.fingerprint_matches and self.violations_match


def replay_bundle(path: str) -> ReplayOutcome:
    """Re-run a bundle's episode and compare against what it recorded."""
    data = load_bundle(path)
    config = EpisodeConfig.from_dict(data["config"])
    expected_violations = [
        Violation.from_dict(v) for v in data["violations"]
    ]
    result = run_episode(config)
    return ReplayOutcome(
        result=result,
        fingerprint_matches=result.fingerprint == data["fingerprint"],
        violations_match=(
            [v.to_dict() for v in result.violations]
            == [v.to_dict() for v in expected_violations]
        ),
        expected_fingerprint=data["fingerprint"],
        expected_violations=expected_violations,
    )
