"""Initial bisection of the coarsest graph: greedy graph growing.

Greedy Graph Growing Partitioning (GGGP) grows part 0 from a random seed
vertex, repeatedly absorbing the frontier vertex whose move decreases the
cut the most, until part 0 reaches its target weight. Several attempts
with different seeds are made and the best bisection (fewest balance
violations, then smallest cut) is kept.
"""

from __future__ import annotations

import heapq
import random
from typing import List, Optional, Sequence, Tuple

from repro.partitioning.graph import Graph
from repro.partitioning.quality import edge_cut


def _grow_once(graph: Graph, target0: float, rng: random.Random) -> List[int]:
    """One GGGP growth: returns a 0/1 partition vector."""
    n = graph.num_vertices
    parts = [1] * n
    if n == 0:
        return parts
    weight0 = 0.0
    remaining = set(range(n))
    # gain[v] = cut decrease when moving v into part 0
    gains = {}
    heap: List[Tuple[float, int, int]] = []
    counter = 0

    def push(v: int) -> None:
        nonlocal counter
        heapq.heappush(heap, (-gains[v], counter, v))
        counter += 1

    def seed() -> None:
        v = rng.choice(tuple(remaining))
        gains[v] = 0.0
        push(v)

    seed()
    while weight0 < target0 and remaining:
        while heap:
            negative_gain, _, v = heapq.heappop(heap)
            if v in remaining and gains.get(v) == -negative_gain:
                break
        else:
            # Frontier exhausted (disconnected graph): restart elsewhere.
            seed()
            continue
        parts[v] = 0
        remaining.discard(v)
        gains.pop(v, None)
        weight0 += graph.vertex_weight(v)
        for neighbor, weight in graph.neighbors(v).items():
            if neighbor not in remaining:
                continue
            # Moving `neighbor` into part 0 now saves edge {v, neighbor}.
            gains[neighbor] = gains.get(
                neighbor, -graph.adjacency_weight(neighbor)
            ) + 2.0 * weight
            push(neighbor)
    return parts


def _violation(
    graph: Graph, parts: Sequence[int], max_weights: Sequence[float]
) -> float:
    weights = [0.0, 0.0]
    for v, part in enumerate(parts):
        weights[part] += graph.vertex_weight(v)
    return max(0.0, weights[0] - max_weights[0]) + max(
        0.0, weights[1] - max_weights[1]
    )


def greedy_bisection(
    graph: Graph,
    target0: float,
    max_weights: Sequence[float],
    rng: random.Random,
    attempts: int = 8,
) -> List[int]:
    """Best-of-``attempts`` GGGP bisection.

    Parameters
    ----------
    target0:
        Desired total vertex weight of part 0.
    max_weights:
        Hard caps ``(max_weight_part0, max_weight_part1)`` used to rank
        candidate bisections (violation is minimized first).
    """
    n = graph.num_vertices
    if n == 0:
        return []
    if n == 1:
        return [0]
    best: Optional[List[int]] = None
    best_key: Optional[Tuple[float, float]] = None
    for _ in range(max(1, attempts)):
        parts = _grow_once(graph, target0, rng)
        key = (_violation(graph, parts, max_weights), edge_cut(graph, parts))
        if best_key is None or key < best_key:
            best, best_key = parts, key
    assert best is not None
    return best
