"""Machine-checked invariants of the reconfiguration protocol.

The :class:`InvariantSuite` arms Algorithm 1's correctness claims as
runtime checks on a live deployment, using only pre-existing seams:
the manager's ``round_observers`` list, each executor's
``control_handler`` / ``extract_state`` / ``install_state`` methods
(wrapped, never replaced in behaviour), and the quiescent-state
checker in :mod:`repro.core.validation`.

Checked **at every round end** (completed *or* aborted — the manager
guarantees both are quiescent for the control plane):

- ``routing_agreement`` — every upstream POI of a table-routed stream
  holds the same routing table, and (for committed rounds) exactly the
  table the manager believes is current;
- ``held_keys`` — no POI is still buffering tuples for in-migration
  keys once its round is over;
- ``balance`` — the partition the round deployed respects the α
  balance constraint on the key graph it was computed from, up to the
  partitioner's documented vertex-granularity slack.

Checked **while running**:

- ``duplicate_extract`` / ``duplicate_install`` — a key's state is
  extracted at most once and installed at most once per round
  (exactly-once migration), attributed to rounds via the round id
  carried by the triggering control message. Keys *split* by hybrid
  routing when the round started get a per-split-set allowance
  instead: consolidating a key spread over ``m`` members legitimately
  extracts (and installs, merging) up to ``m`` times in one round —
  conservation still verifies the summed totals at quiescence.

Checked **at final quiescence** (:meth:`InvariantSuite.final_check`):

- ``conservation`` — per-key state summed across a POI's instances
  equals the ground-truth counts of the generated workload: no tuple
  lost, none double-counted, across every migration and abort;
- ``migration_ledger`` — every state entry extracted was installed
  somewhere (nothing evaporated in transit);
- ``unique_ownership``/held-keys/acker checks via
  :func:`repro.core.validation.check_deployment`. Unique ownership is
  skipped when a round aborted: rollback legitimately leaves a
  migrated key's past state on its new owner while fresh tuples
  rebuild state on the old one (totals stay exact — conservation
  still applies).

Conservation checking must be disarmed for episodes that crash POIs
(crashes destroy state by design).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.validation import check_deployment
from repro.engine.executor import BoltExecutor
from repro.engine.operators import StatefulBolt
from repro.faults.plan import control_round_id

#: slack epsilon on floating-point weight comparisons
_EPS = 1e-6


@dataclass
class Violation:
    """One observed invariant breach."""

    invariant: str
    detail: str
    at_s: float
    round_id: Optional[int] = None

    def to_dict(self) -> dict:
        return {
            "invariant": self.invariant,
            "detail": self.detail,
            "at_s": self.at_s,
            "round_id": self.round_id,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Violation":
        return cls(
            invariant=data["invariant"],
            detail=data["detail"],
            at_s=data["at_s"],
            round_id=data.get("round_id"),
        )


def balance_bound(
    total_weight: float, nparts: int, max_vertex: float, imbalance: float
) -> float:
    """The heaviest part weight the recursive-bisection partitioner is
    allowed to produce: α times the ideal, or — when keys are coarse
    relative to parts — the ideal plus one heaviest vertex of slack per
    recursion level (mirrors the granularity slack in
    ``partitioning/kway.py``)."""
    if nparts <= 1:
        return total_weight + _EPS
    ideal = total_weight / nparts
    depth = max(1, math.ceil(math.log2(nparts)))
    return max(imbalance * ideal, ideal + depth * max_vertex) + _EPS


class InvariantSuite:
    """Arms the invariant checkers on one deployment + manager pair."""

    def __init__(
        self,
        deployment,
        manager,
        *,
        check_conservation: bool = True,
        check_balance: bool = True,
    ) -> None:
        self.deployment = deployment
        self.manager = manager
        self.check_conservation = check_conservation
        self.check_balance = check_balance
        self.violations: List[Violation] = []
        #: (round_id, op, key) → extract count
        self._extracts: Dict[Tuple[int, str, Hashable], int] = {}
        #: (round_id, op, key) → install count
        self._installs: Dict[Tuple[int, str, Hashable], int] = {}
        #: total state weight extracted minus installed (in transit)
        self._ledger = 0.0
        #: (kind, round_id) of the control message being handled, if any
        self._msg_ctx: Optional[Tuple[str, Optional[int]]] = None
        self._attached = False
        self._rounds_seen = 0

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------

    def attach(self) -> "InvariantSuite":
        """Wrap the seams. Call once, after the manager is installed
        and before the run starts."""
        if self._attached:
            return self
        self._attached = True
        self.manager.round_observers.append(self._on_round_end)
        for executor in self.deployment.all_executors():
            if not isinstance(executor, BoltExecutor):
                continue
            self._wrap_executor(executor)
        # Elastic rescaling: instances spawned mid-run get the same
        # wrapping (the manager installs their agent *before* firing
        # spawn observers); retiring instances are audited for leaks.
        self.deployment.spawn_observers.append(self._on_spawn)
        self.deployment.retire_observers.append(self._on_retire)
        return self

    def _on_spawn(self, executor) -> None:
        if isinstance(executor, BoltExecutor):
            self._wrap_executor(executor)

    def _on_retire(self, executor) -> None:
        """A POI may only leave the deployment empty-handed: no held
        keys (their buffered tuples would be destroyed), no queued
        tuples, and no state (it must have been migrated or evacuated
        first)."""
        if not isinstance(executor, BoltExecutor):
            return
        now = self.deployment.sim.now
        if executor.held_keys:
            self._fail_at(
                "retired_poi_leak",
                f"{executor.name} retired while still holding "
                f"{sorted(map(repr, executor.held_keys))[:5]}",
                now,
            )
        if executor.queue_depth:
            self._fail_at(
                "retired_poi_leak",
                f"{executor.name} retired with {executor.queue_depth} "
                f"queued tuples (undelivered data destroyed)",
                now,
            )
        operator = executor.operator
        if isinstance(operator, StatefulBolt) and operator.state:
            self._fail_at(
                "retired_poi_leak",
                f"{executor.name} retired with {len(operator.state)} "
                f"state entries still on board",
                now,
            )

    def _wrap_executor(self, executor) -> None:
        suite = self
        handler = executor.control_handler
        if handler is not None:

            def wrapped_handler(msg, ex, _orig=handler):
                suite._msg_ctx = (msg.kind, control_round_id(msg))
                try:
                    _orig(msg, ex)
                finally:
                    suite._msg_ctx = None

            executor.control_handler = wrapped_handler

        orig_extract = executor.extract_state

        def wrapped_extract(keys, _orig=orig_extract, _ex=executor):
            entries = _orig(keys)
            suite._record_extract(_ex, entries)
            return entries

        executor.extract_state = wrapped_extract

        orig_install = executor.install_state

        def wrapped_install(entries, _orig=orig_install, _ex=executor):
            suite._record_install(_ex, entries)
            _orig(entries)

        executor.install_state = wrapped_install

    # ------------------------------------------------------------------
    # Running checks (exactly-once migration, in-transit ledger)
    # ------------------------------------------------------------------

    def _context_round(self) -> Optional[int]:
        if self._msg_ctx is None:
            return None
        return self._msg_ctx[1]

    def _is_rescale_round(self, round_id: Optional[int]) -> bool:
        """Rescale rounds migrate by *scanning* state, so a key whose
        state was split across instances by an earlier abort is
        legitimately extracted (and installed, merging) once per
        holder — the per-key exactly-once rule only binds plain
        rounds. Conservation still verifies totals at quiescence."""
        if round_id is None:
            return False
        for record in reversed(self.manager.rounds):
            if record.round_id == round_id:
                return bool(getattr(record, "is_rescale", False))
        return False

    def _split_allowance(
        self, round_id: int, op_name: str, key: Hashable
    ) -> int:
        """How many extract/install events round ``round_id`` may
        legitimately produce for ``key`` at ``op_name``: one normally,
        the pre-round split-member count for a key hybrid routing had
        split when the round started (consolidation gathers one partial
        per member)."""
        for record in reversed(self.manager.rounds):
            if record.round_id == round_id:
                presplit = getattr(record, "presplit_keys", None) or {}
                return max(1, presplit.get(op_name, {}).get(key, 1))
        return 1

    def _record_extract(self, executor, entries: Dict) -> None:
        round_id = self._context_round()
        self._ledger += _state_weight(entries)
        if round_id is None:
            return
        for key in entries:
            token = (round_id, executor.op_name, key)
            count = self._extracts.get(token, 0) + 1
            self._extracts[token] = count
            if (
                count > self._split_allowance(round_id, executor.op_name, key)
                and not self._is_rescale_round(round_id)
            ):
                self._fail(
                    "duplicate_extract",
                    f"{executor.name}: key {key!r} extracted {count} times "
                    f"in round {round_id}",
                    round_id,
                )

    def _record_install(self, executor, entries: Dict) -> None:
        round_id = self._context_round()
        self._ledger -= _state_weight(entries)
        if round_id is None:
            return
        for key in entries:
            token = (round_id, executor.op_name, key)
            count = self._installs.get(token, 0) + 1
            self._installs[token] = count
            if (
                count > self._split_allowance(round_id, executor.op_name, key)
                and not self._is_rescale_round(round_id)
            ):
                self._fail(
                    "duplicate_install",
                    f"{executor.name}: key {key!r} installed {count} times "
                    f"in round {round_id}",
                    round_id,
                )

    # ------------------------------------------------------------------
    # Round-end checks
    # ------------------------------------------------------------------

    def _on_round_end(self, record) -> None:
        self._rounds_seen += 1
        self._check_held_keys(record)
        self._check_routing_agreement(record)
        self._check_table_range(record)
        if getattr(record, "is_rescale", False) and not record.aborted:
            self._check_rescale_parallelism(record)
        if (
            self.check_balance
            and record.plan is not None
            and record.keygraph is not None
            and not record.aborted
            and not record.vetoed
        ):
            self._check_balance(record)

    def _check_table_range(self, record) -> None:
        """Every current routing-table entry must address a live
        instance — a stale-width table after a rescale (or a rollback)
        would route tuples out of range."""
        for stream in self.manager.routed_streams:
            table = self.manager.current_tables.get(stream.name)
            if table is None:
                continue
            width = len(self.deployment.executors[stream.dst_op])
            top = table.max_instance()
            if top is not None and top >= width:
                self._fail(
                    "table_range",
                    f"stream {stream.name!r}: table routes to instance "
                    f"{top} but {stream.dst_op} has only {width} "
                    f"instances after round {record.round_id}",
                    record.round_id,
                )

    def _check_rescale_parallelism(self, record) -> None:
        """A committed rescale must leave every routed destination tier
        at exactly the requested parallelism."""
        for op_name in sorted(
            {s.dst_op for s in self.manager.routed_streams}
        ):
            width = len(self.deployment.executors[op_name])
            if width != record.rescale_to:
                self._fail(
                    "rescale_parallelism",
                    f"{op_name}: {width} instances after committed "
                    f"rescale round {record.round_id} requested "
                    f"{record.rescale_from}->{record.rescale_to}",
                    record.round_id,
                )

    def _check_held_keys(self, record) -> None:
        for executor in self.deployment.all_executors():
            if isinstance(executor, BoltExecutor) and executor.held_keys:
                self._fail(
                    "held_keys",
                    f"{executor.name}: still holding "
                    f"{sorted(map(repr, executor.held_keys))[:5]} after "
                    f"round {record.round_id} ended",
                    record.round_id,
                )

    def _check_routing_agreement(self, record) -> None:
        for stream in self.manager.routed_streams:
            tables = []
            for executor in self.deployment.instances(stream.src_op):
                tables.append(
                    (executor.name, executor.table_router(stream.name).table)
                )
            reference_name, reference = tables[0]
            for name, table in tables[1:]:
                if table != reference:
                    self._fail(
                        "routing_agreement",
                        f"stream {stream.name!r}: {name} disagrees with "
                        f"{reference_name} after round {record.round_id}",
                        record.round_id,
                    )
            expected = self.manager.current_tables.get(stream.name)
            if expected is not None and reference != expected:
                self._fail(
                    "routing_agreement",
                    f"stream {stream.name!r}: {reference_name} diverges "
                    f"from the manager's current table after round "
                    f"{record.round_id}",
                    record.round_id,
                )

    def _check_balance(self, record) -> None:
        assignment = record.plan.assignment
        if assignment is None:
            return
        keygraph = record.keygraph
        weights: Dict[int, float] = {}
        max_vertex = 0.0
        total = 0.0
        for (stream, key), part in assignment.parts.items():
            w = keygraph.vertex_weight(stream, key)
            weights[part] = weights.get(part, 0.0) + w
            max_vertex = max(max_vertex, w)
            total += w
        if not weights or total <= 0:
            return
        bound = balance_bound(
            total,
            assignment.num_parts,
            max_vertex,
            self.manager.config.imbalance,
        )
        heaviest = max(weights.values())
        if heaviest > bound:
            self._fail(
                "balance",
                f"round {record.round_id}: heaviest part carries "
                f"{heaviest:.1f} of {total:.1f} total weight, above the "
                f"bound {bound:.1f} (α={self.manager.config.imbalance})",
                record.round_id,
            )

    # ------------------------------------------------------------------
    # Final quiescence checks
    # ------------------------------------------------------------------

    def final_check(
        self, expected_counts: Optional[Dict[str, Dict]] = None
    ) -> List[Violation]:
        """Run the end-of-episode checks and return all violations.

        ``expected_counts`` maps operator name → ground-truth per-key
        counts (e.g. from ``PairsWorkload.expected_counts``); omit it
        to skip conservation.
        """
        now = self.deployment.sim.now
        if self.check_conservation and abs(self._ledger) > _EPS:
            self.violations.append(
                Violation(
                    "migration_ledger",
                    f"{self._ledger:+.1f} state weight still in transit "
                    f"at quiescence (extracted but never installed)",
                    now,
                )
            )
        if self.check_conservation and expected_counts is not None:
            self._check_conservation(expected_counts, now)

        aborted = any(r.aborted for r in self.manager.rounds)
        if not aborted:
            report = check_deployment(self.deployment)
            for message in report.violations:
                self.violations.append(
                    Violation("deployment_state", message, now)
                )
        else:
            # Aborts legitimately split a key's state across two
            # owners; keep the abort-safe subset of the checks.
            if self.deployment.acker.in_flight != 0:
                self.violations.append(
                    Violation(
                        "deployment_state",
                        f"{self.deployment.acker.in_flight} tuple trees "
                        f"still in flight",
                        now,
                    )
                )
            for executor in self.deployment.all_executors():
                if (
                    isinstance(executor, BoltExecutor)
                    and executor.held_keys
                ):
                    self.violations.append(
                        Violation(
                            "deployment_state",
                            f"{executor.name}: still holding keys at "
                            f"quiescence",
                            now,
                        )
                    )
        return self.violations

    def _check_conservation(
        self, expected_counts: Dict[str, Dict], now: float
    ) -> None:
        for op_name, expected in expected_counts.items():
            totals: Dict[Hashable, float] = {}
            for executor in self.deployment.instances(op_name):
                operator = executor.operator
                if not isinstance(operator, StatefulBolt):
                    continue
                for key, value in operator.state.items():
                    totals[key] = totals.get(key, 0) + value
            missing = {
                key: count
                for key, count in expected.items()
                if abs(totals.get(key, 0) - count) > _EPS
            }
            extra = sorted(set(totals) - set(expected))
            if missing or extra:
                examples = [
                    f"key {key!r}: have {totals.get(key, 0)}, "
                    f"expected {count}"
                    for key, count in list(missing.items())[:3]
                ]
                if extra:
                    examples.append(f"unexpected keys {extra[:3]}")
                self._fail_at(
                    "conservation",
                    f"{op_name}: {len(missing)} keys off, "
                    f"{len(extra)} unexpected ({'; '.join(examples)})",
                    now,
                )

    # ------------------------------------------------------------------

    def _fail(self, invariant: str, detail: str, round_id: int) -> None:
        self.violations.append(
            Violation(invariant, detail, self.deployment.sim.now, round_id)
        )

    def _fail_at(self, invariant: str, detail: str, at_s: float) -> None:
        self.violations.append(Violation(invariant, detail, at_s))

    @property
    def ok(self) -> bool:
        return not self.violations


def _state_weight(entries: Dict) -> float:
    """Total weight of a state-entry dict (CountBolt entries are plain
    numbers; anything else counts 1 per key)."""
    weight = 0.0
    for value in entries.values():
        weight += value if isinstance(value, (int, float)) else 1.0
    return weight
