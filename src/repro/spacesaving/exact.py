"""Exact frequency counting with the SpaceSaving interface.

Used as the *offline* statistics collector (Section 3.2 of the paper):
when a full trace sample is available, exact pair frequencies can be
computed without a memory bound. Having the same interface as
:class:`~repro.spacesaving.sketch.SpaceSaving` lets the manager and the
trace-evaluation harness swap collectors freely (e.g. for the Fig. 12
edge-budget experiment).
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Iterator, List, Optional

from repro.spacesaving.sketch import ItemEstimate


class ExactCounter:
    """Unbounded exact counter exposing the SpaceSaving query API."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        # ``capacity`` is accepted (and ignored) for interface parity.
        self._counts: Counter = Counter()
        self._n = 0

    # ------------------------------------------------------------------
    # Stream ingestion
    # ------------------------------------------------------------------

    def offer(self, item: Hashable, weight: int = 1) -> None:
        if weight < 1:
            raise ValueError(f"weight must be >= 1, got {weight}")
        self._counts[item] += weight
        self._n += weight

    def clear(self) -> None:
        self._counts.clear()
        self._n = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> Optional[int]:
        return None

    @property
    def n(self) -> int:
        return self._n

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._counts

    def estimate(self, item: Hashable) -> Optional[ItemEstimate]:
        if item not in self._counts:
            return None
        return ItemEstimate(item, self._counts[item], 0)

    def max_error(self) -> int:
        return 0

    def items(self) -> Iterator[ItemEstimate]:
        for item, count in self._counts.most_common():
            yield ItemEstimate(item, count, 0)

    def top(self, k: int) -> List[ItemEstimate]:
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        return [
            ItemEstimate(item, count, 0)
            for item, count in self._counts.most_common(k)
        ]

    def guaranteed_top(self, k: int) -> List[ItemEstimate]:
        return self.top(k)

    def merge(self, other: "ExactCounter") -> "ExactCounter":
        merged = ExactCounter()
        merged._counts = self._counts + other._counts
        merged._n = self._n + other._n
        return merged

    def __repr__(self) -> str:
        return f"ExactCounter(distinct={len(self)}, n={self._n})"
