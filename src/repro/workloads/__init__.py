"""Workload generators for the paper's three evaluations.

- :mod:`~repro.workloads.synthetic` — the Section 4.2 tunable workload:
  ``(integer, integer, padding)`` tuples with a *locality* knob and
  three fields-grouping variants (locality-aware / hash-based /
  worst-case).
- :mod:`~repro.workloads.twitter` — a generative stand-in for the
  crawled Twitter dataset (Section 4.3): Zipfian locations and
  hashtags, stable and transient correlations, flash events, and new
  hashtags appearing every week.
- :mod:`~repro.workloads.flickr` — a stable tag/country workload in
  place of the Flickr 100M dataset (Section 4.4).
- :mod:`~repro.workloads.zipf` — the shared skewed sampler.
- :mod:`~repro.workloads.bigkeys` — a million-key population with
  epoch-churned routing tables for the compact-table /
  delta-propagation scale sweep (beyond the paper; DESIGN.md §13).

See DESIGN.md Section 2 for why these substitutions preserve the
paper's experimental conditions.
"""

from repro.workloads.bigkeys import BigKeysConfig, BigKeysWorkload
from repro.workloads.flickr import FlickrConfig, FlickrWorkload
from repro.workloads.pairs import PairsConfig, PairsWorkload
from repro.workloads.skew import SkewConfig, SkewWorkload
from repro.workloads.synthetic import SyntheticConfig, SyntheticWorkload
from repro.workloads.twitter import TwitterConfig, TwitterWorkload
from repro.workloads.zipf import ZipfSampler

__all__ = [
    "ZipfSampler",
    "BigKeysConfig",
    "BigKeysWorkload",
    "PairsConfig",
    "PairsWorkload",
    "SkewConfig",
    "SkewWorkload",
    "SyntheticConfig",
    "SyntheticWorkload",
    "TwitterConfig",
    "TwitterWorkload",
    "FlickrConfig",
    "FlickrWorkload",
]
