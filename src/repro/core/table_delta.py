"""Delta-encoded routing-table propagation (DESIGN.md §13).

PROPAGATE historically shipped the full routing table to every source
instance each round, so control-plane bytes grew linearly with the key
space even when a round moved a handful of keys. A
:class:`TableDelta` instead carries only the changed entries — upserts,
removals, split-set upserts/removals — against a fingerprinted base,
falling back to a full snapshot whenever the delta would be at least as
large as the table itself (or when the manager does not know the base
the receiver holds, e.g. the first round or after an abort resync).

Byte accounting is a *model*, like the rest of the cost layer
(``repro.engine.costs``): ``wire_bytes`` computes what a compact binary
framing would cost without serializing anything, and the manager feeds
those numbers to the executor's control-message metering and the
``propagate_bytes_*`` counters.

The base check is fingerprint-grade, not byte-exact: ``apply`` verifies
``(base length, base fingerprint)`` using the shared XOR fingerprint of
:mod:`repro.core.routing_table`, which both plain and compact tables
maintain. A mismatch raises ``ReconfigurationError`` — the agent counts
it as an anomaly and the manager's abort path resyncs with a full push.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Tuple

from repro.core.compact_table import CompactRoutingTable
from repro.core.routing_table import RoutingTable, table_fingerprint
from repro.errors import ReconfigurationError

#: snapshot frame: magic u32 + flags u8 + entry count u32 + split count u16
SNAPSHOT_HEADER_BYTES = 11
#: delta frame: magic u32 + flags u8 + base fingerprint u64 + base len u32
#: + set count u32 + remove count u32 + split-set count u16 + split-remove u16
DELTA_HEADER_BYTES = 29


#: sentinel distinguishing "absent" from any real owner in diff()
_ABSENT = object()


def key_wire_bytes(key: Hashable) -> int:
    """Modeled encoded size of a key: its canonical ``repr`` in UTF-8
    (the same canonical form routing hashes on)."""
    return len(repr(key).encode("utf-8", "backslashreplace"))


def snapshot_wire_bytes(table) -> int:
    """Modeled size of a full-table PROPAGATE payload.

    Plain tables ship raw entries (u16 key length + key bytes + u16
    owner) and the split set (u16 key length + key bytes + u8 member
    count + u16 per member). Compact tables ship their fingerprint
    store and filter verbatim, so their snapshot cost is their modeled
    memory — independent of key length.
    """
    if table is None:
        return SNAPSHOT_HEADER_BYTES
    if isinstance(table, CompactRoutingTable):
        return SNAPSHOT_HEADER_BYTES + table.memory_bytes()
    total = SNAPSHOT_HEADER_BYTES
    for key, _owner in table.items():
        total += 2 + key_wire_bytes(key) + 2
    for key, members in table.splits.items():
        total += 2 + key_wire_bytes(key) + 1 + 2 * len(members)
    return total


@dataclass
class TableDelta:
    """A routing-table update as changes against a known base.

    Exactly one of two shapes:

    - **delta** (``snapshot is None``): ``set_entries`` / ``removed_keys``
      / ``set_splits`` / ``removed_splits`` applied to a base matching
      ``(base_len, base_fingerprint)``;
    - **snapshot** (``snapshot`` is a table): the full replacement
      table, applied unconditionally — the fallback when the delta
      would not save bytes or no shared base exists.
    """

    base_fingerprint: int = 0
    base_len: int = 0
    set_entries: Dict[Hashable, int] = field(default_factory=dict)
    removed_keys: Tuple[Hashable, ...] = ()
    set_splits: Dict[Hashable, Tuple[int, ...]] = field(default_factory=dict)
    removed_splits: Tuple[Hashable, ...] = ()
    snapshot: object = None

    @classmethod
    def diff(
        cls,
        old: Optional[RoutingTable],
        new: RoutingTable,
        snapshot_table: object = None,
    ) -> "TableDelta":
        """The delta turning enumerable ``old`` (None = empty) into
        enumerable ``new``, or a snapshot of ``snapshot_table`` (default
        ``new``; pass the compacted twin in compact mode) whenever the
        delta encoding would not be smaller."""
        if old is None:
            old = RoutingTable.empty()
        old_map, new_map = old.mapping, new.mapping
        set_entries = {
            key: owner
            for key, owner in new_map.items()
            if old_map.get(key, _ABSENT) != owner
        }
        removed_keys = tuple(key for key in old_map if key not in new_map)
        old_splits, new_splits = old.splits, new.splits
        set_splits = {
            key: members
            for key, members in new_splits.items()
            if old_splits.get(key) != members
        }
        removed_splits = tuple(
            key for key in old_splits if key not in new_splits
        )
        delta = cls(
            base_fingerprint=table_fingerprint(old),
            base_len=len(old),
            set_entries=set_entries,
            removed_keys=removed_keys,
            set_splits=set_splits,
            removed_splits=removed_splits,
        )
        fallback = snapshot_table if snapshot_table is not None else new
        if delta.wire_bytes() >= snapshot_wire_bytes(fallback):
            return cls(snapshot=fallback)
        return delta

    @classmethod
    def snapshot_of(cls, table) -> "TableDelta":
        """A pure snapshot frame (used when the manager does not know
        the receiver's base: first round, post-abort resync)."""
        return cls(snapshot=table)

    @property
    def is_snapshot(self) -> bool:
        return self.snapshot is not None

    @property
    def num_changes(self) -> int:
        return (
            len(self.set_entries)
            + len(self.removed_keys)
            + len(self.set_splits)
            + len(self.removed_splits)
        )

    def apply(self, base):
        """The table this delta produces on ``base`` (None = empty).

        Snapshots return the carried table. Deltas verify the base by
        ``(len, fingerprint)`` — raising ``ReconfigurationError`` on
        mismatch so a desynced receiver fails loudly instead of
        applying changes to the wrong table — then build the successor
        without mutating ``base`` (plain bases yield a plain table,
        compact bases a compact one)."""
        if self.snapshot is not None:
            return self.snapshot
        base_len = 0 if base is None else len(base)
        if (
            base_len != self.base_len
            or table_fingerprint(base) != self.base_fingerprint
        ):
            raise ReconfigurationError(
                f"TableDelta base mismatch: delta expects "
                f"(len={self.base_len}, "
                f"fp={self.base_fingerprint:#018x}), receiver holds "
                f"(len={base_len}, fp={table_fingerprint(base):#018x})"
            )
        if isinstance(base, CompactRoutingTable):
            out = base.copy()
            for key, owner in self.set_entries.items():
                out._set(key, owner)
            for key in self.removed_keys:
                out._remove(key)
            for key, members in self.set_splits.items():
                out._set_split(key, members)
            for key in self.removed_splits:
                out._remove_split(key)
            return out
        mapping = dict(base.mapping) if base is not None else {}
        mapping.update(self.set_entries)
        for key in self.removed_keys:
            mapping.pop(key, None)
        splits = dict(base.splits) if base is not None else {}
        splits.update(self.set_splits)
        for key in self.removed_splits:
            splits.pop(key, None)
        return RoutingTable(mapping, splits)

    def wire_bytes(self) -> int:
        """Modeled encoded size: upserts cost u16 key length + key
        bytes + u16 owner, removals u16 + key bytes, split upserts add
        a u8 member count + u16 per member."""
        if self.snapshot is not None:
            return snapshot_wire_bytes(self.snapshot)
        total = DELTA_HEADER_BYTES
        for key in self.set_entries:
            total += 2 + key_wire_bytes(key) + 2
        for key in self.removed_keys:
            total += 2 + key_wire_bytes(key)
        for key, members in self.set_splits.items():
            total += 2 + key_wire_bytes(key) + 1 + 2 * len(members)
        for key in self.removed_splits:
            total += 2 + key_wire_bytes(key)
        return total

    def __repr__(self) -> str:
        if self.snapshot is not None:
            return f"TableDelta(snapshot of {self.snapshot!r})"
        return (
            f"TableDelta({len(self.set_entries)} set, "
            f"{len(self.removed_keys)} removed, "
            f"{len(self.set_splits)}/{len(self.removed_splits)} splits, "
            f"base len={self.base_len})"
        )
