"""Unit tests: tracer/span lifecycle and the telemetry sinks."""

import json

import pytest

from repro.observability import (
    JsonlSink,
    MemorySink,
    NULL_SINK,
    Tracer,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestTracer:
    def test_span_lifecycle_records(self):
        clock, sink = FakeClock(), MemorySink()
        tracer = Tracer(clock, sink)

        root = tracer.begin("round", round=1)
        clock.now = 0.5
        child = tracer.begin("PARTITION", parent=root)
        child.event("note", detail="x")
        clock.now = 0.75
        child.end(status="ok")
        clock.now = 1.0
        root.end()

        types = [r["type"] for r in sink.records]
        assert types == [
            "span_begin", "span_begin", "event", "span_end", "span_end",
        ]
        begin_root, begin_child, event, end_child, end_root = sink.records
        assert begin_root["name"] == "round"
        assert begin_root["round"] == 1
        assert begin_root["parent"] is None
        assert begin_child["parent"] == begin_root["span"]
        assert event["span"] == begin_child["span"]
        assert event["detail"] == "x"
        assert end_child["status"] == "ok"
        assert end_child["ts"] == 0.75
        assert end_root["ts"] == 1.0

    def test_span_ids_are_unique_and_increasing(self):
        tracer = Tracer(FakeClock(), MemorySink())
        ids = [tracer.begin(f"s{i}").span_id for i in range(5)]
        assert ids == sorted(set(ids))

    def test_end_is_idempotent(self):
        sink = MemorySink()
        tracer = Tracer(FakeClock(), sink)
        span = tracer.begin("x")
        span.end(status="done")
        span.end(status="again")
        ends = [r for r in sink.records if r["type"] == "span_end"]
        assert len(ends) == 1
        assert ends[0]["status"] == "done"

    def test_null_sink_emits_nothing_but_ids_still_flow(self):
        tracer = Tracer(FakeClock(), NULL_SINK)
        a = tracer.begin("a")
        b = tracer.begin("b", parent=a)
        b.event("e")
        b.end()
        a.end()
        assert not tracer.enabled
        assert b.parent_id == a.span_id


class TestJsonlSink:
    def test_round_trip_and_flush_on_close(self, tmp_path):
        path = tmp_path / "out.jsonl"
        sink = JsonlSink(str(path), flush_every=1000)
        sink.emit({"type": "event", "name": "x", "ts": 0.1})
        sink.emit({"type": "snapshot", "ts": 0.2})
        sink.close()
        lines = path.read_text().strip().splitlines()
        assert [json.loads(l)["type"] for l in lines] == [
            "event", "snapshot",
        ]

    def test_non_serializable_values_fall_back_to_str(self, tmp_path):
        path = tmp_path / "out.jsonl"
        sink = JsonlSink(str(path))
        sink.emit({"type": "event", "obj": object()})
        sink.close()
        record = json.loads(path.read_text().strip())
        assert isinstance(record["obj"], str)
