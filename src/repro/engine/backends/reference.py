"""The reference backend: the discrete-event simulator, unchanged.

This adapter deploys the topology exactly as :func:`repro.engine.
runner.deploy` always has and drains the simulator — it adds *no* code
to the DES hot path, so same-seed event fingerprints are byte-identical
to a direct ``deploy``/``run`` (a property the equivalence suite pins).
Its job is to express a finished DES run in the cross-backend
:class:`~repro.engine.backends.BackendResult` vocabulary: per-key
state totals, key placements, locality, balance.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Tuple

from repro.engine.cluster import Cluster
from repro.engine.operators import StatefulBolt
from repro.engine.runner import deploy
from repro.engine.simulator import Simulator
from repro.engine.topology import Topology


def run_reference(topology: Topology, options) -> "BackendResult":
    from repro.engine.backends import BackendResult, _default_servers

    num_servers = _default_servers(topology, options)
    sim = Simulator()
    if options.fingerprint:
        sim.enable_fingerprint()
    cluster = Cluster(
        sim,
        num_servers,
        bandwidth_gbps=options.bandwidth_gbps,
        latency_s=options.latency_s,
    )
    deployment = deploy(
        sim,
        cluster,
        topology,
        costs=options.costs,
        max_pending=options.max_pending,
    )
    if options.on_deployed is not None:
        options.on_deployed(deployment)
    deployment.start()
    start = time.perf_counter()
    sim.run()  # drain: finite spouts finish, queues empty
    wall = time.perf_counter() - start

    metrics = deployment.metrics
    processed = {
        name: metrics.processed_total(name)
        for name in topology.operators
        if not topology.operator(name).is_spout
    }
    emitted = sum(
        spout.operator.emitted
        for spout in deployment.spout_executors()
        if hasattr(spout.operator, "emitted")
    )

    stream_locality: Dict[str, float] = {}
    local_sum = 0
    total_sum = 0
    for name, counters in metrics.streams.items():
        stream_locality[name] = counters.locality()
        local_sum += counters.local_tuples
        total_sum += counters.total_tuples

    load_balance: Dict[str, float] = {}
    received: Dict[str, List[int]] = {}
    per_key_totals: Dict[str, Dict[Any, int]] = {}
    key_instances: Dict[str, Dict[Any, Tuple[int, ...]]] = {}
    for op in topology.bolts:
        group = deployment.executors[op.name]
        parallelism = len(group)
        load_balance[op.name] = metrics.load_balance(op.name, parallelism)
        received[op.name] = metrics.received_per_instance(
            op.name, parallelism
        )
        if isinstance(group[0].operator, StatefulBolt):
            totals: Dict[Any, int] = {}
            holders: Dict[Any, list] = {}
            for executor in group:
                for key, value in executor.operator.state.items():
                    totals[key] = totals.get(key, 0) + value
                    holders.setdefault(key, []).append(executor.instance)
            per_key_totals[op.name] = totals
            key_instances[op.name] = {
                key: tuple(sorted(instances))
                for key, instances in holders.items()
            }

    total_processed = sum(processed.values())
    return BackendResult(
        backend="reference",
        wall_s=wall,
        sim_s=sim.now,
        tuples_emitted=emitted,
        processed=processed,
        tuples_per_s=total_processed / wall if wall > 0 else 0.0,
        locality=(local_sum / total_sum) if total_sum else 1.0,
        stream_locality=stream_locality,
        load_balance=load_balance,
        received=received,
        per_key_totals=per_key_totals,
        key_instances=key_instances,
        op_stats={},
        fingerprint=sim.fingerprint if options.fingerprint else None,
        handle=deployment,
    )
