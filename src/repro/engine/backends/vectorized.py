"""The batched-vectorized fast path (DESIGN.md §15).

The DES executes one simulator event per tuple hop; this backend packs
tuples into :class:`~repro.engine.physical.TupleBatch` micro-batches
and resolves everything per *batch*:

- each keyed stream owns a **key vocabulary** (key → dense int id,
  interned once per distinct key) and a **route array** (id →
  destination instance) mirroring the scalar router math exactly:
  a valid table entry wins, otherwise ``stable_hash(key, seed) % n``;
- a batch routes as ``route[ids]`` — one numpy gather instead of
  len(batch) Python calls;
- counting bolts accumulate per-instance ``np.bincount`` over key ids;
- payload bytes, locality and the coarse time model (per-server CPU
  busy seconds, NIC transfer seconds) are numpy reductions.

Python-level work is O(batch) plus O(distinct new keys) per batch (the
vocabulary and route arrays extend once per unique key); the per-tuple
costs that remain are cheap dict/list operations in tight loops.

Exactness contract (enforced by :mod:`repro.testing.equivalence`):

- **table / hash** streams: per-tuple routing decisions identical to
  the DES routers (pure functions of the key);
- **hybrid** streams: tail keys identical; split keys always land
  inside the member set, but the least-loaded pick is load-dependent,
  so only per-key totals and member-set containment are guaranteed;
- **PKG** streams: candidate sets identical; the d-choices pick is
  load-dependent (per-edge counters here vs per-source-router counters
  in the DES), so the same containment-and-totals guarantee applies;
- **shuffle** streams: round-robin per source instance, matched to the
  DES only in aggregate (per-destination counts within one tuple).

Operators without a vectorized kernel (anything that is not a
:class:`~repro.engine.operators.CountBolt` counting its input stream's
routing key) fall back to a scalar per-tuple loop over real operator
instances — correct for any bolt, just not O(batch).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.engine.grouping import (
    _SCALAR_KEY_TYPES,
    FieldsGrouping,
    HybridTableFieldsGrouping,
    PartialKeyGrouping,
    ShuffleGrouping,
    TableFieldsGrouping,
    candidate_instances,
    stable_hash,
)
from repro.engine.operators import (
    Bolt,
    CountBolt,
    IteratorSpout,
    OperatorContext,
    Spout,
    StatefulBolt,
)
from repro.engine.physical import (
    PhysicalEdge,
    PhysicalOperator,
    PhysicalPlan,
    SourceOperator,
    TupleBatch,
)
from repro.engine.topology import Topology
from repro.engine.tuples import payload_size
from repro.errors import DeploymentError, RoutingError


class _Meter:
    """Per-server modeled busy time (CPU + NIC) and byte counters."""

    def __init__(self, num_servers: int, costs, bandwidth_gbps) -> None:
        self.costs = costs
        self.cpu_s = np.zeros(num_servers)
        self.nic_tx_s = np.zeros(num_servers)
        self.nic_rx_s = np.zeros(num_servers)
        self.bytes_per_s = (
            bandwidth_gbps * 1e9 / 8.0 if bandwidth_gbps else None
        )

    @property
    def num_servers(self) -> int:
        return len(self.cpu_s)

    def sim_s(self) -> float:
        """Modeled makespan: the busiest resource bounds throughput."""
        busiest = float(self.cpu_s.max()) if len(self.cpu_s) else 0.0
        if self.bytes_per_s:
            busiest = max(
                busiest,
                float(self.nic_tx_s.max()),
                float(self.nic_rx_s.max()),
            )
        return busiest


class _Vocab:
    """Key interning for one stream: key → dense id, id → key.

    Memo keys are type-tagged exactly like the scalar routers' LRU
    caches (``1`` / ``1.0`` / ``True`` must not alias); non-scalar keys
    are rejected — the vectorized backend requires scalar routing keys.
    """

    __slots__ = ("memo", "keys")

    def __init__(self) -> None:
        self.memo: dict = {}
        self.keys: List[Any] = []

    def encode(self, raw_keys, stream_name: str) -> Tuple[np.ndarray, int]:
        """Ids for ``raw_keys``; returns (ids, first_new_id)."""
        memo = self.memo
        get = memo.get
        keys = self.keys
        first_new = len(keys)
        ids = np.empty(len(raw_keys), dtype=np.int64)
        index = 0
        for key in raw_keys:
            cls = key.__class__
            if cls not in _SCALAR_KEY_TYPES:
                raise RoutingError(
                    f"vectorized backend requires scalar routing keys; "
                    f"stream {stream_name!r} saw {cls.__name__}"
                )
            memo_key = (cls, key)
            kid = get(memo_key)
            if kid is None:
                kid = len(keys)
                memo[memo_key] = kid
                keys.append(key)
            ids[index] = kid
            index += 1
        return ids, first_new

    def __len__(self) -> int:
        return len(self.keys)


class _VectorEdge:
    """One stream's vectorized router + cost/locality accounting.

    The transform applied to every batch crossing the edge: extract
    keys, resolve destinations, account bytes/locality/served time,
    and hand the consumer a routed batch (``dst_instances`` and — for
    keyed streams — ``key_ids`` filled in).
    """

    KEYED_KINDS = ("table", "hash", "hybrid", "pkg")

    def __init__(
        self,
        stream_name: str,
        kind: str,
        key_fn,
        key_spec,
        seed: int,
        num_destinations: int,
        table,
        d: int,
        src_placement: np.ndarray,
        dst_placement: np.ndarray,
        meter: _Meter,
    ) -> None:
        self.stream_name = stream_name
        self.kind = kind
        self.key_fn = key_fn
        self.key_spec = key_spec
        self.seed = seed
        self.n = num_destinations
        self.table = table
        self.d = d
        self.src_placement = src_placement
        self.dst_placement = dst_placement
        self.meter = meter
        self.vocab = _Vocab()
        #: id → destination instance (table entry or hash fallback)
        self.route = np.empty(0, dtype=np.int64)
        #: pkg: id → d candidate instances
        self.cands = np.empty((0, d), dtype=np.int64)
        #: hybrid: id → split member tuple
        self.splits: Dict[int, Tuple[int, ...]] = {}
        #: hybrid/pkg: per-destination sent counters (least-loaded pick)
        self.sent = np.zeros(num_destinations, dtype=np.int64)
        #: shuffle: next destination per source instance
        self._shuffle_next: Dict[int, int] = {}
        self.local_tuples = 0
        self.total_tuples = 0
        self.received = np.zeros(num_destinations, dtype=np.int64)
        self.table_hits = 0
        self.hash_fallbacks = 0

    # -- route resolution ----------------------------------------------

    def _resolve(self, key) -> int:
        """Scalar-router-identical decision for one key."""
        table = self.table
        if table is not None:
            instance = table.lookup(key)
            if instance is not None:
                if not 0 <= instance < self.n:
                    raise RoutingError(
                        f"routing table maps {key!r} to instance "
                        f"{instance}, but stream has {self.n} destinations"
                    )
                self.table_hits += 1
                return instance
        self.hash_fallbacks += 1
        return stable_hash(key, self.seed) % self.n

    def _extend(self, first_new: int) -> None:
        """Resolve routes (and candidates/splits) for new vocab ids."""
        keys = self.vocab.keys
        total = len(keys)
        if total == len(self.route) and self.kind != "pkg":
            return
        if self.kind == "pkg":
            if total > len(self.cands):
                fresh = np.array(
                    [
                        candidate_instances(key, self.seed, self.n, self.d)
                        for key in keys[len(self.cands):]
                    ],
                    dtype=np.int64,
                ).reshape(-1, self.d)
                self.cands = np.concatenate([self.cands, fresh])
            return
        new_routes = [self._resolve(key) for key in keys[len(self.route):]]
        if new_routes:
            base = len(self.route)
            self.route = np.concatenate(
                [self.route, np.array(new_routes, dtype=np.int64)]
            )
            if self.kind == "hybrid":
                split_fn = getattr(self.table, "split", None)
                if split_fn is not None:
                    for kid in range(base, len(keys)):
                        members = split_fn(keys[kid])
                        if members:
                            valid = tuple(
                                m for m in members if 0 <= m < self.n
                            )
                            if not valid:
                                raise RoutingError(
                                    f"split set maps {keys[kid]!r} to "
                                    f"{members}, all outside the stream's "
                                    f"{self.n} destinations"
                                )
                            self.splits[kid] = valid

    def rebuild(self, table, num_destinations: Optional[int]) -> None:
        """Swap the routing table (and optionally the width) and
        re-resolve every known key — the vectorized mirror of
        ``TableRouter.update_table`` / ``resize``."""
        if num_destinations is not None:
            if num_destinations < 1:
                raise RoutingError(
                    f"num_destinations must be >= 1, got {num_destinations}"
                )
            self.n = num_destinations
            old_received = self.received
            self.received = np.zeros(self.n, dtype=np.int64)
            limit = min(len(old_received), self.n)
            self.received[:limit] = old_received[:limit]
        self.table = table
        self.route = np.empty(0, dtype=np.int64)
        self.splits = {}
        self.sent = np.zeros(self.n, dtype=np.int64)
        self._extend(0)

    def owner_of_ids(self) -> np.ndarray:
        """Current owner per known key id (deterministic kinds only)."""
        if self.kind not in ("table", "hash"):
            raise RoutingError(
                f"stream {self.stream_name!r} ({self.kind}) has no "
                f"deterministic per-key owner"
            )
        self._extend(0)
        return self.route

    # -- the batch transform -------------------------------------------

    def __call__(self, batch: TupleBatch) -> TupleBatch:
        n_tuples = len(batch.values)
        if self.kind in self.KEYED_KINDS:
            key_fn = self.key_fn
            raw_keys = [key_fn(v) for v in batch.values]
            ids, _ = self.vocab.encode(raw_keys, self.stream_name)
            self._extend(0)
            if self.kind == "pkg":
                dst = self._pick_pkg(ids)
            else:
                dst = self.route[ids]
                if self.splits:
                    dst = self._apply_splits(ids, dst)
                elif self.kind == "hybrid":
                    np.add.at(self.sent, dst, 1)
        elif self.kind == "shuffle":
            ids = None
            dst = self._pick_shuffle(batch, n_tuples)
        else:  # pragma: no cover - compile() rejects other kinds
            raise RoutingError(f"unroutable kind {self.kind!r}")

        self._account(batch, dst)
        return TupleBatch(
            batch.values,
            src_instances=batch.src_instances,
            dst_instances=dst,
            sizes=batch.sizes,
            key_ids=ids,
        )

    def _apply_splits(self, ids: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Reroute split heavy hitters to their least-loaded member.

        Tail traffic is credited to the load counters per batch (the
        DES router credits per tuple) — split keys stay inside their
        member set either way; the exact member sequence is the
        documented divergence."""
        dst = dst.copy()
        splits = self.splits
        sent = self.sent
        split_mask = np.isin(ids, np.fromiter(splits, dtype=np.int64))
        tail = dst[~split_mask]
        if len(tail):
            np.add.at(sent, tail, 1)
        for index in np.nonzero(split_mask)[0]:
            members = splits[int(ids[index])]
            choice = members[0]
            best = sent[choice]
            for member in members[1:]:
                if sent[member] < best:
                    best = sent[member]
                    choice = member
            dst[index] = choice
            sent[choice] += 1
        return dst

    def _pick_pkg(self, ids: np.ndarray) -> np.ndarray:
        """d-choices pick per tuple (inherently sequential: each pick
        feeds the load counters the next pick reads)."""
        sent = self.sent
        cands = self.cands
        dst = np.empty(len(ids), dtype=np.int64)
        for index, kid in enumerate(ids):
            row = cands[kid]
            choice = row[0]
            best = sent[choice]
            for member in row[1:]:
                if sent[member] < best:
                    best = sent[member]
                    choice = member
            dst[index] = choice
            sent[choice] += 1
        return dst

    def _pick_shuffle(self, batch: TupleBatch, n_tuples: int) -> np.ndarray:
        nxt = self._shuffle_next
        n = self.n
        src = batch.src_instances
        dst = np.empty(n_tuples, dtype=np.int64)
        if src is None or len(np.unique(src)) == 1:
            instance = int(src[0]) if src is not None and len(src) else 0
            start = nxt.get(instance)
            if start is None:
                start = instance % n
            dst[:] = (start + np.arange(n_tuples)) % n
            nxt[instance] = int((start + n_tuples) % n)
        else:
            for index in range(n_tuples):
                instance = int(src[index])
                start = nxt.get(instance)
                if start is None:
                    start = instance % n
                dst[index] = start
                nxt[instance] = (start + 1) % n
        return dst

    def _account(self, batch: TupleBatch, dst: np.ndarray) -> None:
        meter = self.meter
        costs = meter.costs
        n_tuples = len(dst)
        self.total_tuples += n_tuples
        self.received += np.bincount(dst, minlength=self.n)

        src_servers = (
            self.src_placement[batch.src_instances]
            if batch.src_instances is not None
            else np.zeros(n_tuples, dtype=np.int64)
        )
        dst_servers = self.dst_placement[dst]
        remote = src_servers != dst_servers
        n_remote = int(remote.sum())
        self.local_tuples += n_tuples - n_remote

        # Destination CPU: the bolt's per-tuple service time.
        meter.cpu_s += (
            np.bincount(dst_servers, minlength=meter.num_servers)
            * costs.bolt_service_s
        )
        if n_remote and batch.sizes is not None:
            sizes = batch.sizes
            remote_src = src_servers[remote]
            remote_dst = dst_servers[remote]
            remote_bytes = sizes[remote]
            tx_counts = np.bincount(
                remote_src, minlength=meter.num_servers
            )
            rx_counts = np.bincount(
                remote_dst, minlength=meter.num_servers
            )
            tx_bytes = np.bincount(
                remote_src,
                weights=remote_bytes,
                minlength=meter.num_servers,
            )
            rx_bytes = np.bincount(
                remote_dst,
                weights=remote_bytes,
                minlength=meter.num_servers,
            )
            meter.cpu_s += (
                tx_counts * costs.ser_fixed_s
                + tx_bytes * costs.ser_per_byte_s
                + rx_counts * costs.deser_fixed_s
                + rx_bytes * costs.deser_per_byte_s
            )
            if meter.bytes_per_s:
                meter.nic_tx_s += tx_bytes / meter.bytes_per_s
                meter.nic_rx_s += rx_bytes / meter.bytes_per_s

    def locality(self) -> float:
        if not self.total_tuples:
            return 1.0
        return self.local_tuples / self.total_tuples


# ----------------------------------------------------------------------
# Physical operators
# ----------------------------------------------------------------------


class _ShimContext(OperatorContext):
    """Minimal operator context for backend-hosted operator objects."""

    def __init__(
        self, op_name: str, instance: int, parallelism: int, server: int
    ) -> None:
        super().__init__(op_name, instance, parallelism, server, lambda: 0.0)


class _VTuple:
    """Value carrier handed to scalar-fallback ``Bolt.process``."""

    __slots__ = ("values", "size", "root_id")

    def __init__(self, values: tuple, size: int) -> None:
        self.values = values
        self.size = size
        self.root_id = None


class _VectorSpoutSource(SourceOperator):
    """One physical source per spout logical op: cycles its instances,
    producing one single-instance batch per poll."""

    def __init__(
        self,
        name: str,
        factory: Callable[[], object],
        parallelism: int,
        placement: np.ndarray,
        meter: _Meter,
        batch_size: int,
        max_tuples_per_instance: Optional[int],
    ) -> None:
        super().__init__(name)
        self.placement = placement
        self.meter = meter
        self.batch_size = batch_size
        self._header = meter.costs.tuple_header_bytes
        self._spouts: List[Spout] = []
        self._iters: List[Any] = []
        self._contexts: List[_ShimContext] = []
        self._budget: List[Optional[int]] = []
        self._live: List[int] = []
        self._cursor = 0
        for instance in range(parallelism):
            operator = factory()
            if not isinstance(operator, Spout):
                raise DeploymentError(
                    f"factory of spout {name!r} returned "
                    f"{type(operator).__name__}, not a Spout"
                )
            context = _ShimContext(
                name, instance, parallelism, int(placement[instance])
            )
            operator.open(context)
            self._spouts.append(operator)
            self._contexts.append(context)
            # Fast path: drain the IteratorSpout's iterator directly
            # (islice-style) instead of one next_tuple call per tuple.
            self._iters.append(
                operator._iterator
                if isinstance(operator, IteratorSpout)
                else None
            )
            self._budget.append(max_tuples_per_instance)
            self._live.append(instance)

    def _poll(self) -> Optional[TupleBatch]:
        while self._live:
            slot = self._cursor % len(self._live)
            instance = self._live[slot]
            values = self._pull(instance)
            if values:
                self._cursor = slot + 1
                return self._make_batch(instance, values)
            self._live.pop(slot)
            if self._live:
                self._cursor = slot % len(self._live)
        return None

    def _pull(self, instance: int) -> List[tuple]:
        budget = self._budget[instance]
        limit = self.batch_size if budget is None else min(
            self.batch_size, budget
        )
        if limit <= 0:
            return []
        values: List[tuple] = []
        iterator = self._iters[instance]
        if iterator is not None:
            append = values.append
            try:
                for _ in range(limit):
                    append(next(iterator))
            except StopIteration:
                pass
        else:
            spout = self._spouts[instance]
            context = self._contexts[instance]
            while len(values) < limit:
                if spout.finished or not spout.next_tuple(context):
                    break
                values.extend(context._drain())
        if budget is not None:
            self._budget[instance] = budget - len(values)
        return values

    def _make_batch(self, instance: int, values: List[tuple]) -> TupleBatch:
        n_tuples = len(values)
        header = self._header
        sizes = np.fromiter(
            (payload_size(v) + header for v in values),
            dtype=np.int64,
            count=n_tuples,
        )
        self.meter.cpu_s[self.placement[instance]] += (
            n_tuples * self.meter.costs.spout_service_s
        )
        return TupleBatch(
            values,
            src_instances=np.full(n_tuples, instance, dtype=np.int64),
            sizes=sizes,
        )


class _VectorCountOp(PhysicalOperator):
    """Vectorized CountBolt: per-instance bincount over the input
    edge's key ids (valid because the counted key *is* the routing
    key, proven at compile time via ``key_spec``)."""

    def __init__(
        self,
        name: str,
        input_names,
        parallelism: int,
        forward: bool,
        in_edge: _VectorEdge,
    ) -> None:
        super().__init__(name, input_names)
        self.parallelism = parallelism
        self.forward = forward
        self.in_edge = in_edge
        self._counts = [
            np.zeros(0, dtype=np.int64) for _ in range(parallelism)
        ]

    def _ensure(self, instance: int, size: int) -> None:
        counts = self._counts[instance]
        if len(counts) < size:
            grown = np.zeros(max(size, 2 * len(counts)), dtype=np.int64)
            grown[: len(counts)] = counts
            self._counts[instance] = grown

    def _process(self, batch: TupleBatch, input_index: int) -> None:
        ids = batch.key_ids
        dst = batch.dst_instances
        vocab_size = len(self.in_edge.vocab)
        for instance in range(self.parallelism):
            mask = dst == instance
            if not mask.any():
                continue
            tallies = np.bincount(ids[mask], minlength=vocab_size)
            self._ensure(instance, len(tallies))
            self._counts[instance][: len(tallies)] += tallies
        if self.forward:
            self._emit(
                TupleBatch(
                    batch.values,
                    src_instances=dst,
                    sizes=batch.sizes,
                )
            )

    def resize(self, parallelism: int) -> None:
        while len(self._counts) < parallelism:
            self._counts.append(np.zeros(0, dtype=np.int64))
        self.parallelism = max(self.parallelism, parallelism)

    def migrate(self, owner_of_id: np.ndarray) -> None:
        """Move every key's count to its (new) owner instance — the
        state-migration step of a scripted reconfiguration."""
        size = len(owner_of_id)
        for instance in range(self.parallelism):
            counts = self._counts[instance]
            limit = min(len(counts), size)
            if not limit:
                continue
            held = np.nonzero(counts[:limit])[0]
            moving = held[owner_of_id[held] != instance]
            for kid in moving:
                owner = int(owner_of_id[kid])
                self._ensure(owner, kid + 1)
                self._counts[owner][kid] += counts[kid]
                counts[kid] = 0

    # -- result extraction ---------------------------------------------

    def per_key_totals(self) -> Dict[Any, int]:
        keys = self.in_edge.vocab.keys
        totals: Dict[Any, int] = {}
        for counts in self._counts:
            for kid in np.nonzero(counts)[0]:
                key = keys[kid]
                totals[key] = totals.get(key, 0) + int(counts[kid])
        return totals

    def key_instances(self) -> Dict[Any, Tuple[int, ...]]:
        keys = self.in_edge.vocab.keys
        holders: Dict[Any, list] = {}
        for instance, counts in enumerate(self._counts):
            for kid in np.nonzero(counts)[0]:
                holders.setdefault(keys[kid], []).append(instance)
        return {
            key: tuple(sorted(instances))
            for key, instances in holders.items()
        }


class _ScalarBoltOp(PhysicalOperator):
    """Correctness fallback: run real operator instances per tuple.

    Used for any bolt without a vectorized kernel (SumBolt,
    PartialCountBolt, pass-through/function bolts, or a CountBolt whose
    key differs from its input stream's routing key). Still batch-
    structured — emissions are collected into output batches — but the
    inner loop is per tuple."""

    def __init__(
        self,
        name: str,
        input_names,
        factory: Callable[[], object],
        parallelism: int,
        placement: np.ndarray,
        header_bytes: int,
    ) -> None:
        super().__init__(name, input_names)
        self.parallelism = parallelism
        self._header = header_bytes
        self.operators: List[Bolt] = []
        self.contexts: List[_ShimContext] = []
        for instance in range(parallelism):
            operator = factory()
            context = _ShimContext(
                name, instance, parallelism, int(placement[instance])
            )
            operator.open(context)
            self.operators.append(operator)
            self.contexts.append(context)
        self._factory = factory
        self._placement = placement

    def _process(self, batch: TupleBatch, input_index: int) -> None:
        dst = batch.dst_instances
        sizes = batch.sizes
        out_values: List[tuple] = []
        out_src: List[int] = []
        for index, values in enumerate(batch.values):
            instance = int(dst[index])
            operator = self.operators[instance]
            context = self.contexts[instance]
            size = int(sizes[index]) if sizes is not None else 0
            operator.process(_VTuple(values, size), context)
            emitted = context._drain()
            if emitted:
                out_values.extend(emitted)
                out_src.extend([instance] * len(emitted))
        if out_values:
            header = self._header
            self._emit(
                TupleBatch(
                    out_values,
                    src_instances=np.array(out_src, dtype=np.int64),
                    sizes=np.fromiter(
                        (payload_size(v) + header for v in out_values),
                        dtype=np.int64,
                        count=len(out_values),
                    ),
                )
            )

    def resize(self, parallelism: int) -> None:
        while len(self.operators) < parallelism:
            instance = len(self.operators)
            operator = self._factory()
            server = int(self._placement[instance % len(self._placement)])
            context = _ShimContext(self.name, instance, parallelism, server)
            operator.open(context)
            self.operators.append(operator)
            self.contexts.append(context)
        self.parallelism = max(self.parallelism, parallelism)

    def migrate(self, owner_for_key: Callable[[Any], int]) -> None:
        for instance, operator in enumerate(self.operators):
            if not isinstance(operator, StatefulBolt):
                return
            moving = [
                key
                for key in operator.state
                if owner_for_key(key) != instance
            ]
            for key in moving:
                owner = owner_for_key(key)
                self.operators[owner].install_state(
                    operator.extract_state([key])
                )

    def per_key_totals(self) -> Dict[Any, int]:
        totals: Dict[Any, int] = {}
        for operator in self.operators:
            if not isinstance(operator, StatefulBolt):
                return {}
            for key, value in operator.state.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def key_instances(self) -> Dict[Any, Tuple[int, ...]]:
        holders: Dict[Any, list] = {}
        for instance, operator in enumerate(self.operators):
            if not isinstance(operator, StatefulBolt):
                return {}
            for key in operator.state:
                holders.setdefault(key, []).append(instance)
        return {
            key: tuple(sorted(instances))
            for key, instances in holders.items()
        }


# ----------------------------------------------------------------------
# Compilation + driver
# ----------------------------------------------------------------------


def _edge_kind(grouping) -> Tuple[str, int]:
    """(kind, d) of a grouping; raises for unsupported policies."""
    if isinstance(grouping, HybridTableFieldsGrouping):
        return "hybrid", 2
    if isinstance(grouping, TableFieldsGrouping):
        return "table", 2
    if isinstance(grouping, FieldsGrouping):
        return "hash", 2
    if isinstance(grouping, PartialKeyGrouping):
        return "pkg", grouping.d
    if isinstance(grouping, ShuffleGrouping):
        return "shuffle", 2
    raise RoutingError(
        f"vectorized backend does not support "
        f"{type(grouping).__name__} (reference backend required)"
    )


def _count_fast_path(operator, in_streams) -> bool:
    """Whether the bolt is a CountBolt counting its (single) input
    stream's routing key — the condition for the bincount kernel."""
    if not isinstance(operator, CountBolt):
        return False
    if len(in_streams) != 1:
        return False
    grouping = in_streams[0].grouping
    key_spec = getattr(grouping, "key_spec", None)
    return (
        isinstance(key_spec, int)
        and isinstance(operator.key_spec, int)
        and key_spec == operator.key_spec
    )


class _VectorizedRun:
    """Compiled plan plus the mutable routing/placement state the
    scripted reconfigurations update."""

    def __init__(self, topology: Topology, options) -> None:
        from repro.engine.backends import _default_servers

        self.topology = topology
        self.options = options
        self.num_servers = _default_servers(topology, options)
        self.meter = _Meter(
            self.num_servers, options.costs, options.bandwidth_gbps
        )
        # Widths a scripted rescale may grow to must be placeable.
        widest = max(
            [op.parallelism for op in topology.operators.values()]
            + [a.parallelism or 1 for a in options.actions]
        )
        self.placements: Dict[str, np.ndarray] = {}
        self.widths: Dict[str, int] = {}
        for op in topology.operators.values():
            self.widths[op.name] = op.parallelism
            self.placements[op.name] = (
                np.arange(max(op.parallelism, widest), dtype=np.int64)
                % self.num_servers
            )

        self.ops: Dict[str, PhysicalOperator] = {}
        self.edges_by_stream: Dict[str, _VectorEdge] = {}
        phys_edges: List[PhysicalEdge] = []

        for name in topology.topological_order():
            spec = topology.operator(name)
            in_streams = topology.inputs_of(name)
            if spec.is_spout:
                self.ops[name] = _VectorSpoutSource(
                    name,
                    spec.factory,
                    spec.parallelism,
                    self.placements[name],
                    self.meter,
                    options.batch_size,
                    options.max_tuples_per_instance,
                )
                continue
            probe = spec.factory()
            input_names = [s.name for s in in_streams]
            if _count_fast_path(probe, in_streams):
                # in_edge is attached after edges are built below.
                self.ops[name] = _VectorCountOp(
                    name,
                    input_names,
                    spec.parallelism,
                    probe.forwards,
                    in_edge=None,
                )
            else:
                self.ops[name] = _ScalarBoltOp(
                    name,
                    input_names,
                    spec.factory,
                    spec.parallelism,
                    self.placements[name],
                    options.costs.tuple_header_bytes,
                )

        for stream in topology.streams:
            kind, d = _edge_kind(stream.grouping)
            dst_spec = topology.operator(stream.dst)
            edge = _VectorEdge(
                stream.name,
                kind,
                getattr(stream.grouping, "key_fn", None),
                getattr(stream.grouping, "key_spec", None),
                stable_hash(stream.name),
                dst_spec.parallelism,
                getattr(stream.grouping, "initial_table", None),
                d,
                self.placements[stream.src],
                self.placements[stream.dst],
                self.meter,
            )
            self.edges_by_stream[stream.name] = edge
            dst_op = self.ops[stream.dst]
            if isinstance(dst_op, _VectorCountOp):
                dst_op.in_edge = edge
            phys_edges.append(
                PhysicalEdge(
                    stream.name,
                    self.ops[stream.src],
                    dst_op,
                    dst_op.input_names.index(stream.name),
                    transform=edge,
                )
            )

        self.plan = PhysicalPlan(list(self.ops.values()), phys_edges)
        self._pending = sorted(options.actions, key=lambda a: a.at_tuples)

    # -- scripted reconfiguration --------------------------------------

    def _emitted(self) -> int:
        return sum(
            source.stats.tuples_out for source in self.plan.sources()
        )

    def _on_round(self, _plan) -> None:
        while self._pending and self._emitted() >= self._pending[0].at_tuples:
            self._apply(self._pending.pop(0))

    def _apply(self, action) -> None:
        try:
            edge = self.edges_by_stream[action.stream]
        except KeyError:
            raise DeploymentError(
                f"reconfigure action names unknown stream "
                f"{action.stream!r}; one of "
                f"{sorted(self.edges_by_stream)}"
            ) from None
        if edge.kind not in ("table", "hash"):
            raise DeploymentError(
                f"scripted reconfiguration requires a deterministic "
                f"keyed stream; {action.stream!r} is {edge.kind!r}"
            )
        dst = next(
            s.dst
            for s in self.topology.streams
            if s.name == action.stream
        )
        new_width = action.parallelism
        if new_width is not None:
            self.widths[dst] = new_width
            consumer = self.ops[dst]
            consumer.resize(new_width)
        edge.rebuild(action.table, new_width)
        consumer = self.ops[dst]
        if isinstance(consumer, _VectorCountOp):
            consumer.migrate(edge.owner_of_ids())
        elif isinstance(consumer, _ScalarBoltOp):
            consumer.migrate(lambda key: edge._resolve(key))

    # -- execution ------------------------------------------------------

    def execute(self) -> float:
        start = time.perf_counter()
        self.plan.execute(on_round=self._on_round)
        while self._pending:
            self._apply(self._pending.pop(0))
        return time.perf_counter() - start


def run_vectorized(topology: Topology, options) -> "BackendResult":
    from repro.engine.backends import BackendResult

    run = _VectorizedRun(topology, options)
    wall = run.execute()

    stream_locality: Dict[str, float] = {}
    local_sum = 0
    total_sum = 0
    for name, edge in run.edges_by_stream.items():
        stream_locality[name] = edge.locality()
        local_sum += edge.local_tuples
        total_sum += edge.total_tuples

    processed: Dict[str, int] = {}
    received: Dict[str, List[int]] = {}
    load_balance: Dict[str, float] = {}
    per_key_totals: Dict[str, Dict[Any, int]] = {}
    key_instances: Dict[str, Dict[Any, Tuple[int, ...]]] = {}
    for op in run.topology.bolts:
        phys = run.ops[op.name]
        processed[op.name] = phys.stats.tuples_in
        width = run.widths[op.name]
        counts = np.zeros(width, dtype=np.int64)
        for stream in run.topology.inputs_of(op.name):
            edge = run.edges_by_stream[stream.name]
            counts[: len(edge.received)] += edge.received[:width]
        received[op.name] = [int(c) for c in counts]
        mean = counts.mean() if width else 0.0
        load_balance[op.name] = (
            float(counts.max() / mean) if mean else 1.0
        )
        if hasattr(phys, "per_key_totals"):
            totals = phys.per_key_totals()
            if totals:
                per_key_totals[op.name] = totals
                key_instances[op.name] = phys.key_instances()

    emitted = run._emitted()
    total_processed = sum(processed.values())
    return BackendResult(
        backend="vectorized",
        wall_s=wall,
        sim_s=run.meter.sim_s(),
        tuples_emitted=emitted,
        processed=processed,
        tuples_per_s=total_processed / wall if wall > 0 else 0.0,
        locality=(local_sum / total_sum) if total_sum else 1.0,
        stream_locality=stream_locality,
        load_balance=load_balance,
        received=received,
        per_key_totals=per_key_totals,
        key_instances=key_instances,
        op_stats={
            name: op.stats.as_dict() for name, op in run.ops.items()
        },
        fingerprint=None,
        handle=run,
    )
