"""Figure 12: locality achieved vs number of collected edges (pairs),
for parallelisms 2-6.

Paper claims asserted:
- more collected pairs -> better locality;
- a small fraction of the edges (~0.1-1%) already doubles the
  locality vs hash for parallelism 6 (bounded memory is enough);
- with a tiny budget locality approaches hash (1/n).
"""

import pytest

from helpers import save_table, series_of
from repro.analysis.experiments import fig12
from repro.analysis.report import format_table


@pytest.fixture(scope="module")
def rows(quick):
    return fig12(quick=quick)


def test_fig12_regenerate(rows, benchmark):
    benchmark.pedantic(
        lambda: fig12(edge_budgets=(100,), parallelisms=(2,), quick=True),
        rounds=1,
        iterations=1,
    )
    table = format_table(rows, columns=[
        "parallelism", "budget", "edges", "locality", "predicted",
    ], title="Figure 12: locality vs collected edges")
    print()
    print(table)
    save_table("fig12", table)


def test_fig12_locality_grows_with_budget(rows):
    for parallelism in sorted({r["parallelism"] for r in rows}):
        series = series_of(
            rows, {"parallelism": parallelism}, "edges", "locality"
        )
        assert series[-1][1] > series[0][1]


def test_fig12_small_budget_doubles_locality(rows, quick):
    if quick:
        pytest.skip("needs the full budget grid")
    n = max(r["parallelism"] for r in rows)
    hash_level = 1.0 / n
    # ~1% of the edges is enough to double the hash locality.
    total = max(r["edges"] for r in rows if r["parallelism"] == n)
    small = [
        r for r in rows
        if r["parallelism"] == n and r["edges"] <= max(total * 0.02, 1000)
    ]
    assert max(r["locality"] for r in small) > 2 * hash_level


def test_fig12_tiny_budget_close_to_hash(rows):
    for parallelism in sorted({r["parallelism"] for r in rows}):
        series = series_of(
            rows, {"parallelism": parallelism}, "edges", "locality"
        )
        tiny = series[0][1]
        assert tiny < 1.0 / parallelism + 0.15
