"""Stream routing policies (Section 2.2 of the paper).

A *grouping* is the declarative policy attached to a stream in the
topology; at deployment it is instantiated into one *router* per source
instance. Routers map an emitted tuple's values to destination instance
indices.

Implemented groupings:

- **shuffle** — round-robin over all destination instances;
- **local-or-shuffle** — round-robin over same-server instances when
  any exist, else shuffle;
- **fields** — hash of a key extracted from the tuple (the Storm
  default for stateful bolts);
- **table fields** — fields grouping driven by an explicit routing
  table with hash fallback: the mechanism the paper's manager updates
  online;
- **global**, **broadcast** — classic utilities;
- **partial key** — the "power of both choices" baseline (Nasir et
  al., ICDE'15), included for load-balance comparisons;
- **custom** — arbitrary routing function (used by the worst-case
  policy of Section 4.2).
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, List, Optional, Sequence, Union

from repro.errors import RoutingError

KeySpec = Union[int, Callable[[tuple], Any]]


def normalize_key_fn(key: KeySpec) -> Callable[[tuple], Any]:
    """Turn a field index or callable into a key extraction function."""
    if callable(key):
        return key
    if isinstance(key, int):
        index = key

        def extract(values: tuple) -> Any:
            return values[index]

        return extract
    raise RoutingError(f"key must be a field index or callable, got {key!r}")


_MASK64 = (1 << 64) - 1


def stable_hash(key: Any, seed: int = 0) -> int:
    """Deterministic, process-independent hash of a key.

    Python's builtin ``hash`` is randomized per process for strings.
    CRC32 alone is *linear* (two key families differing by a constant
    byte pattern would land at a constant XOR offset — catastrophically
    correlating the owners of paired keys), so a splitmix64 finalizer
    mixes the CRC with the seed non-linearly.
    """
    data = repr(key).encode("utf-8", errors="backslashreplace")
    x = (zlib.crc32(data) ^ (seed * 0x9E3779B97F4A7C15)) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class RouterContext:
    """Everything a router may need about its edge at deployment time."""

    __slots__ = (
        "stream_name",
        "src_instance",
        "src_server",
        "dst_placements",
        "seed",
    )

    def __init__(
        self,
        stream_name: str,
        src_instance: int,
        src_server: int,
        dst_placements: Sequence[int],
        seed: int,
    ) -> None:
        self.stream_name = stream_name
        self.src_instance = src_instance
        self.src_server = src_server
        self.dst_placements = list(dst_placements)
        self.seed = seed


class Router:
    """Runtime routing decision for one (source instance, stream)."""

    def select(self, values: tuple) -> List[int]:
        """Destination instance indices for an emission."""
        raise NotImplementedError


class Grouping:
    """Declarative routing policy; builds one router per source POI."""

    def build_router(self, context: RouterContext) -> Router:
        raise NotImplementedError


# ----------------------------------------------------------------------
# Shuffle
# ----------------------------------------------------------------------


class _ShuffleRouter(Router):
    def __init__(self, num_destinations: int, start: int) -> None:
        self._n = num_destinations
        self._next = start % num_destinations

    def select(self, values: tuple) -> List[int]:
        dst = self._next
        self._next = (dst + 1) % self._n
        return [dst]


class ShuffleGrouping(Grouping):
    """Round-robin over destination instances (stateless POs only)."""

    def build_router(self, context: RouterContext) -> Router:
        n = len(context.dst_placements)
        return _ShuffleRouter(n, start=context.src_instance)


# ----------------------------------------------------------------------
# Local-or-shuffle
# ----------------------------------------------------------------------


class _LocalOrShuffleRouter(Router):
    def __init__(self, local: List[int], all_dsts: int, start: int) -> None:
        self._local = local
        self._n = all_dsts
        self._next = start

    def select(self, values: tuple) -> List[int]:
        if self._local:
            dst = self._local[self._next % len(self._local)]
        else:
            dst = self._next % self._n
        self._next += 1
        return [dst]


class LocalOrShuffleGrouping(Grouping):
    """Prefer a destination instance on the sender's server."""

    def build_router(self, context: RouterContext) -> Router:
        local = [
            i
            for i, server in enumerate(context.dst_placements)
            if server == context.src_server
        ]
        return _LocalOrShuffleRouter(
            local, len(context.dst_placements), start=context.src_instance
        )


# ----------------------------------------------------------------------
# Fields grouping (hash-based)
# ----------------------------------------------------------------------


class _HashFieldsRouter(Router):
    def __init__(self, key_fn, num_destinations: int, seed: int) -> None:
        self._key_fn = key_fn
        self._n = num_destinations
        self._seed = seed

    def select(self, values: tuple) -> List[int]:
        key = self._key_fn(values)
        return [stable_hash(key, self._seed) % self._n]


class FieldsGrouping(Grouping):
    """Key-based deterministic routing: all tuples sharing a key reach
    the same destination instance.

    Parameters
    ----------
    key:
        A field index or ``callable(values) -> key``.
    """

    def __init__(self, key: KeySpec) -> None:
        self.key_fn = normalize_key_fn(key)

    def build_router(self, context: RouterContext) -> Router:
        return _HashFieldsRouter(
            self.key_fn, len(context.dst_placements), context.seed
        )


# ----------------------------------------------------------------------
# Fields grouping driven by an explicit routing table
# ----------------------------------------------------------------------


class TableRouter(Router):
    """Fields router with a swappable key→instance table.

    The table is any object with ``lookup(key) -> Optional[int]``;
    unknown keys fall back to hash routing, as in Section 3.3 of the
    paper. ``table_hits`` / ``hash_fallbacks`` count the two outcomes —
    the explicit-vs-fallback split the telemetry layer exports (a high
    fallback share after a reconfiguration means the routed key set no
    longer covers the traffic, the Fig. 12 unseen-keys effect).
    """

    def __init__(self, key_fn, num_destinations: int, seed: int, table) -> None:
        self._key_fn = key_fn
        self._n = num_destinations
        self._seed = seed
        self._table = table
        self.table_hits = 0
        self.hash_fallbacks = 0

    @property
    def table(self):
        return self._table

    def update_table(self, table) -> None:
        """Hot-swap the routing table (reconfiguration step 5)."""
        self._table = table

    def select(self, values: tuple) -> List[int]:
        key = self._key_fn(values)
        if self._table is not None:
            instance = self._table.lookup(key)
            if instance is not None:
                if not 0 <= instance < self._n:
                    raise RoutingError(
                        f"routing table maps {key!r} to instance {instance}, "
                        f"but stream has {self._n} destinations"
                    )
                self.table_hits += 1
                return [instance]
        self.hash_fallbacks += 1
        return [stable_hash(key, self._seed) % self._n]


class TableFieldsGrouping(Grouping):
    """Fields grouping with an explicit (optional, swappable) table."""

    def __init__(self, key: KeySpec, table=None) -> None:
        self.key_fn = normalize_key_fn(key)
        self.initial_table = table

    def build_router(self, context: RouterContext) -> TableRouter:
        return TableRouter(
            self.key_fn,
            len(context.dst_placements),
            context.seed,
            self.initial_table,
        )


# ----------------------------------------------------------------------
# Global / broadcast
# ----------------------------------------------------------------------


class _ConstantRouter(Router):
    def __init__(self, targets: List[int]) -> None:
        self._targets = targets

    def select(self, values: tuple) -> List[int]:
        return list(self._targets)


class GlobalGrouping(Grouping):
    """Everything goes to instance 0."""

    def build_router(self, context: RouterContext) -> Router:
        return _ConstantRouter([0])


class BroadcastGrouping(Grouping):
    """Every emission is replicated to every destination instance."""

    def build_router(self, context: RouterContext) -> Router:
        return _ConstantRouter(list(range(len(context.dst_placements))))


# ----------------------------------------------------------------------
# Partial key grouping (baseline from related work)
# ----------------------------------------------------------------------


class _PartialKeyRouter(Router):
    def __init__(self, key_fn, num_destinations: int, seed: int) -> None:
        self._key_fn = key_fn
        self._n = num_destinations
        self._seed = seed
        self._sent = [0] * num_destinations

    def select(self, values: tuple) -> List[int]:
        key = self._key_fn(values)
        first = stable_hash(key, self._seed) % self._n
        second = stable_hash(key, self._seed + 0x9E3779B9) % self._n
        dst = first if self._sent[first] <= self._sent[second] else second
        self._sent[dst] += 1
        return [dst]


class PartialKeyGrouping(Grouping):
    """"Power of both choices" key routing (Nasir et al., ICDE'15).

    Splits each key over two candidate instances, picking the less
    loaded one locally. Better load balance than hash fields grouping,
    but requires downstream aggregation for correctness — included here
    as a load-balancing baseline only.
    """

    def __init__(self, key: KeySpec) -> None:
        self.key_fn = normalize_key_fn(key)

    def build_router(self, context: RouterContext) -> Router:
        return _PartialKeyRouter(
            self.key_fn, len(context.dst_placements), context.seed
        )


# ----------------------------------------------------------------------
# Custom
# ----------------------------------------------------------------------


class _CustomRouter(Router):
    def __init__(self, fn, context: RouterContext) -> None:
        self._fn = fn
        self._context = context

    def select(self, values: tuple) -> List[int]:
        result = self._fn(values, self._context)
        if isinstance(result, int):
            return [result]
        return list(result)


class CustomGrouping(Grouping):
    """Route with an arbitrary function ``fn(values, context) -> index``
    (or a list of indices). Used for the paper's worst-case policy."""

    def __init__(self, fn: Callable[[tuple, RouterContext], Any]) -> None:
        self.fn = fn

    def build_router(self, context: RouterContext) -> Router:
        return _CustomRouter(self.fn, context)
