"""Integration: delta-encoded propagation and compact tables through
the full reconfiguration protocol (Manager + ReconfigurationAgent).

The protocol guarantees must be representation-independent: per-key
state totals conserved, routers in agreement with the manager, and —
for non-compact configurations — the simulator event fingerprint
byte-identical whether tables ship as deltas or snapshots (delta
encoding changes payload *content*, never event timing).
"""

import random
from collections import Counter

from repro.core import (
    CompactRoutingTable,
    CompactTableConfig,
    Manager,
    ManagerConfig,
    TableDelta,
)
from repro.engine import (
    Cluster,
    CountBolt,
    Simulator,
    TableFieldsGrouping,
    TopologyBuilder,
    deploy,
)
from repro.engine.operators import IteratorSpout

N = 3
PER_SPOUT = 12000


RANKS = 17  # keys per instance → ~RANKS*N distinct keys, so routing
# tables are big enough that delta encoding beats snapshots


def _emit(rng, instance):
    # mostly home keys (rank*N + instance → perfect locality), with a
    # 20% shuffle so tables keep changing a little every round
    rank = rng.randrange(RANKS)
    if rng.random() < 0.8:
        a = rank * N + instance
    else:
        a = rank * N + rng.randrange(N)
    return a


def _correlated_source(ctx):
    rng = random.Random(ctx.instance_index)
    for _ in range(PER_SPOUT):
        a = _emit(rng, ctx.instance_index)
        yield (a, a + 100)


def _ground_truth():
    truth_a, truth_b = Counter(), Counter()
    for i in range(N):
        rng = random.Random(i)
        for _ in range(PER_SPOUT):
            a = _emit(rng, i)
            truth_a[a] += 1
            truth_b[a + 100] += 1
    return truth_a, truth_b


def _build():
    builder = TopologyBuilder()
    builder.spout(
        "S", lambda: IteratorSpout(_correlated_source), parallelism=N
    )
    builder.bolt(
        "A",
        lambda: CountBolt(0, forward=True),
        parallelism=N,
        inputs={"S": TableFieldsGrouping(0)},
    )
    builder.bolt(
        "B",
        lambda: CountBolt(1, forward=False),
        parallelism=N,
        inputs={"A": TableFieldsGrouping(1)},
    )
    return builder.build()


def _run(until=3.0, *, fingerprint=False, **config_kwargs):
    sim = Simulator()
    if fingerprint:
        sim.enable_fingerprint()
    cluster = Cluster(sim, N)
    deployment = deploy(sim, cluster, _build())
    manager = Manager(
        deployment, ManagerConfig(period_s=0.05, **config_kwargs)
    )
    manager.start()
    deployment.start()
    sim.run(until=until)
    return sim, deployment, manager


def _state_totals(deployment, op):
    totals = Counter()
    for executor in deployment.instances(op):
        for key, value in executor.operator.state.items():
            totals[key] += value
    return totals


def _assert_correct(deployment, manager):
    truth_a, truth_b = _ground_truth()
    assert _state_totals(deployment, "A") == truth_a
    assert _state_totals(deployment, "B") == truth_b
    # routers agree with the manager's authoritative plain tables
    for stream_name, table in manager.current_tables.items():
        stream = manager._streams_by_name[stream_name]
        for executor in deployment.instances(stream.src_op):
            held = executor.table_router(stream_name).table
            assert held == table


class TestDeltaPropagation:
    def test_delta_mode_preserves_protocol_guarantees(self):
        sim, deployment, manager = _run(delta_propagation=True)
        assert len(manager.completed_rounds) >= 2
        _assert_correct(deployment, manager)

    def test_delta_payloads_actually_shrink_after_first_round(self):
        sim, deployment, manager = _run(delta_propagation=True)
        registry = deployment.metrics.registry
        for stream_name in manager.current_tables:
            sent = registry.counter(
                "propagate_bytes_sent", stream=stream_name
            ).value
            saved = registry.counter(
                "propagate_bytes_saved", stream=stream_name
            ).value
            assert sent > 0
            # the first push is a snapshot; later rounds must save
            assert saved > 0

    def test_same_seed_fingerprint_matches_snapshot_mode(self):
        """Delta encoding changes payload content, not event timing:
        the simulator fingerprint must be byte-identical with deltas
        on and off (the acceptance bar for non-compact configs)."""
        sim_delta, _, _ = _run(fingerprint=True, delta_propagation=True)
        sim_full, _, _ = _run(fingerprint=True, delta_propagation=False)
        assert sim_delta.fingerprint != 0
        assert sim_delta.fingerprint == sim_full.fingerprint
        assert sim_delta.events_executed == sim_full.events_executed

    def test_payload_objects_are_deltas_after_first_round(self):
        sim, deployment, manager = _run(delta_propagation=True)
        plan_tables = manager.current_tables
        assert plan_tables
        # re-encode against the live bases: with a known base the
        # manager must produce TableDelta payloads
        for stream_name, table in plan_tables.items():
            manager._tables_before_round = dict(plan_tables)
            update = manager._encode_table_update(stream_name, table)
            assert isinstance(update, TableDelta)


class TestCompactTables:
    def test_compact_mode_preserves_protocol_guarantees(self):
        sim, deployment, manager = _run(
            compact_tables=CompactTableConfig()
        )
        assert len(manager.completed_rounds) >= 2
        _assert_correct(deployment, manager)
        # data-plane routers actually hold compact tables
        held_types = set()
        for stream_name in manager.current_tables:
            stream = manager._streams_by_name[stream_name]
            for executor in deployment.instances(stream.src_op):
                held_types.add(
                    type(executor.table_router(stream_name).table)
                )
        assert held_types == {CompactRoutingTable}

    def test_compact_without_deltas(self):
        sim, deployment, manager = _run(
            compact_tables=CompactTableConfig(), delta_propagation=False
        )
        assert len(manager.completed_rounds) >= 2
        _assert_correct(deployment, manager)

    def test_compact_metrics_are_registered(self):
        sim, deployment, manager = _run(
            compact_tables=CompactTableConfig()
        )
        registry = deployment.metrics.registry
        names = {sample["metric"] for sample in registry.collect()}
        assert "compact_filter_rejects" in names
        assert "compact_filter_false_positives" in names
        assert "compact_false_route_budget" in names
        assert "routing_table_bytes" in names
        assert "routing_filter_bytes" in names
        # counters follow the delta lineage across table swaps, so the
        # summed gauge accumulates instead of zeroing every round
        assert registry.value("compact_table_lookups") > 0

    def test_abort_resync_pushes_full_compact_tables(self):
        """After an abort the manager force-pushes full tables; in
        compact mode routers must come back holding compact tables
        equal to the manager's plain ones."""
        sim, deployment, manager = _run(
            until=1.0, compact_tables=CompactTableConfig()
        )
        manager._tables_before_round = dict(manager.current_tables)
        manager._push_tables(manager.current_tables)
        _assert_correct(deployment, manager)
