"""One driver per figure of the paper's evaluation (Section 4).

Each ``figNN`` function regenerates the corresponding figure's data
and returns it as a list of dict rows; the benchmarks in
``benchmarks/`` call these and assert the paper's qualitative claims.
Run standalone with::

    python -m repro.analysis.experiments fig7 [--quick]

Time axis note: the engine simulates tuple-level behaviour, so the
Fig. 13/14 experiments compress the paper's 30-minute runs with
10-minute reconfiguration periods into seconds-long simulated runs
with proportionally shorter periods. Rates (Ktuples/s) stay
comparable; only the wall-clock axis is compressed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.trace_eval import TwoHopEvaluator, weekly_series
from repro.core import Manager, ManagerConfig
from repro.engine import Cluster, RunConfig, Simulator, deploy
from repro.engine.metrics import ThroughputSampler
from repro.engine.runner import run
from repro.workloads import (
    FlickrConfig,
    FlickrWorkload,
    SkewConfig,
    SkewWorkload,
    SyntheticConfig,
    SyntheticWorkload,
    TwitterConfig,
    TwitterWorkload,
)
from repro.workloads.skew import SKEW_POLICIES
from repro.workloads.synthetic import POLICIES

#: Short simulated measurement window: transients settle within a few
#: thousand tuples (max_pending bounded), so this is plenty.
DEFAULT_DURATION_S = 0.30
DEFAULT_WARMUP_S = 0.10


# ----------------------------------------------------------------------
# Synthetic-workload throughput experiments (Figures 7, 8, 9)
# ----------------------------------------------------------------------


def _synthetic_run(
    parallelism: int,
    locality: float,
    padding: int,
    policy: str,
    duration_s: float = DEFAULT_DURATION_S,
    warmup_s: float = DEFAULT_WARMUP_S,
    bandwidth_gbps: float = 10.0,
    seed: int = 0,
) -> Dict:
    workload = SyntheticWorkload(
        SyntheticConfig(
            parallelism=parallelism,
            locality=locality,
            padding=padding,
            seed=seed,
        )
    )
    result = run(
        workload.topology(policy),
        RunConfig(
            duration_s=duration_s,
            warmup_s=warmup_s,
            num_servers=parallelism,
            bandwidth_gbps=bandwidth_gbps,
        ),
    )
    return {
        "policy": policy,
        "parallelism": parallelism,
        "locality": locality,
        "padding": padding,
        "throughput": result.throughput,
        "measured_locality": result.locality,
    }


def fig7(
    parallelisms: Optional[Sequence[int]] = None,
    localities: Sequence[float] = (0.6, 1.0),
    paddings: Optional[Sequence[int]] = None,
    policies: Sequence[str] = POLICIES,
    quick: bool = False,
) -> List[Dict]:
    """Throughput vs parallelism for each (locality, padding) panel."""
    if parallelisms is None:
        parallelisms = (1, 2, 4, 6) if quick else (1, 2, 3, 4, 5, 6)
    if paddings is None:
        paddings = (0, 20000) if quick else (0, 8000, 20000)
    rows = []
    for locality in localities:
        for padding in paddings:
            for policy in policies:
                for parallelism in parallelisms:
                    rows.append(
                        _synthetic_run(parallelism, locality, padding, policy)
                    )
    return rows


def fig8(
    localities: Optional[Sequence[float]] = None,
    parallelisms: Optional[Sequence[int]] = None,
    padding: int = 12000,
    policies: Sequence[str] = POLICIES,
    quick: bool = False,
) -> List[Dict]:
    """Throughput vs locality at 12 kB padding."""
    if localities is None:
        localities = (0.6, 0.8, 1.0) if quick else (0.6, 0.7, 0.8, 0.9, 1.0)
    if parallelisms is None:
        parallelisms = (2, 6) if quick else (2, 4, 6)
    rows = []
    for parallelism in parallelisms:
        for policy in policies:
            for locality in localities:
                rows.append(
                    _synthetic_run(parallelism, locality, padding, policy)
                )
    return rows


def fig9(
    paddings: Optional[Sequence[int]] = None,
    parallelisms: Optional[Sequence[int]] = None,
    locality: float = 0.8,
    policies: Sequence[str] = POLICIES,
    quick: bool = False,
) -> List[Dict]:
    """Throughput vs tuple size at 80% locality."""
    if paddings is None:
        paddings = (0, 2000, 5000) if quick else (
            0, 1000, 2000, 3000, 4000, 5000,
        )
    if parallelisms is None:
        parallelisms = (2, 6) if quick else (2, 4, 6)
    rows = []
    for parallelism in parallelisms:
        for policy in policies:
            for padding in paddings:
                rows.append(
                    _synthetic_run(parallelism, locality, padding, policy)
                )
    return rows


# ----------------------------------------------------------------------
# Skew experiment (beyond the paper): locality vs load balance vs
# throughput under Zipf skew with a flash hot key
# ----------------------------------------------------------------------


def _skew_run(
    parallelism: int,
    exponent: float,
    flash_share: float,
    policy: str,
    split_width: int = 2,
    duration_s: float = DEFAULT_DURATION_S,
    warmup_s: float = DEFAULT_WARMUP_S,
    seed: int = 0,
) -> Dict:
    workload = SkewWorkload(
        SkewConfig(
            parallelism=parallelism,
            exponent=exponent,
            flash_share=flash_share,
            split_width=split_width,
            seed=seed,
        )
    )
    result = run(
        workload.topology(policy),
        RunConfig(
            duration_s=duration_s,
            warmup_s=warmup_s,
            num_servers=parallelism,
        ),
    )
    return {
        "policy": policy,
        "parallelism": parallelism,
        "exponent": exponent,
        "flash_share": flash_share,
        "throughput": result.throughput,
        "locality": result.locality,
        "load_balance": result.load_balance["A"],
    }


def skew(
    exponents: Optional[Sequence[float]] = None,
    flash_shares: Optional[Sequence[float]] = None,
    parallelism: int = 4,
    policies: Sequence[str] = SKEW_POLICIES,
    quick: bool = False,
) -> List[Dict]:
    """Locality, load balance (max/mean) and throughput for the three
    routing policies under increasing Zipf skew and a flash-crowd hot
    key. The acceptance row is exponent 1.5 with a flash share: hybrid
    must beat pure tables on load balance and pure hash on locality."""
    if exponents is None:
        exponents = (1.0, 1.5) if quick else (0.8, 1.0, 1.2, 1.5)
    if flash_shares is None:
        flash_shares = (0.3,) if quick else (0.0, 0.15, 0.3)
    rows = []
    for flash_share in flash_shares:
        for exponent in exponents:
            for policy in policies:
                rows.append(
                    _skew_run(parallelism, exponent, flash_share, policy)
                )
    return rows


# ----------------------------------------------------------------------
# Twitter trace experiments (Figures 10, 11, 12)
# ----------------------------------------------------------------------


def _twitter(quick: bool) -> TwitterWorkload:
    if quick:
        return TwitterWorkload(
            TwitterConfig(
                tweets_per_week=10000,
                num_locations=200,
                base_hashtags=1500,
                new_hashtags_per_week=150,
            )
        )
    return TwitterWorkload(TwitterConfig(tweets_per_week=30000))


def fig10(weeks: int = 8, quick: bool = False) -> List[Dict]:
    """Daily frequency of the recurring flash hashtag per location."""
    workload = _twitter(quick)
    tag = workload.config.flash_tag
    series = workload.daily_frequency(tag, weeks)
    # The three locations where the tag peaks the most, like the
    # Virginia/Florida/Texas panel of the paper.
    top = sorted(
        series.items(), key=lambda kv: max(kv[1].values()), reverse=True
    )[:3]
    rows = []
    for location, days in top:
        for day in sorted(days):
            rows.append(
                {
                    "tag": tag,
                    "location": location,
                    "day": day,
                    "frequency": days[day],
                }
            )
    return rows


def fig11(
    weeks: int = 25,
    num_servers: int = 6,
    sketch_capacity: Optional[int] = 100_000,
    quick: bool = False,
) -> List[Dict]:
    """Locality and load balance over time: online vs offline vs hash."""
    if quick:
        weeks = 8
    workload = _twitter(quick)
    rows = []
    for mode in ("online", "offline", "hash-based"):
        results = weekly_series(
            workload.week_pairs,
            weeks,
            num_servers,
            mode,
            sketch_capacity=sketch_capacity,
        )
        for week, result in enumerate(results):
            rows.append(
                {
                    "mode": mode,
                    "week": week,
                    "locality": result.locality,
                    "load_balance": result.load_balance,
                    "unseen_fraction": result.unseen_fraction,
                }
            )
    return rows


def fig11_predicted_locality(quick: bool = False) -> Dict:
    """The Section 4.3 side claim: the partitioner predicts a higher
    locality on the data it saw than what next week achieves."""
    workload = _twitter(quick)
    evaluator = TwoHopEvaluator(6)
    week0 = list(workload.week_pairs(0))
    tables, predicted = evaluator.plan_tables(week0)
    achieved_same = evaluator.evaluate(week0, tables).locality
    achieved_next = evaluator.evaluate(
        list(workload.week_pairs(1)), tables
    ).locality
    return {
        "predicted": predicted,
        "achieved_on_training_week": achieved_same,
        "achieved_on_next_week": achieved_next,
    }


def fig12(
    edge_budgets: Optional[Sequence[Optional[int]]] = None,
    parallelisms: Optional[Sequence[int]] = None,
    quick: bool = False,
) -> List[Dict]:
    """Locality achieved vs number of collected edges (pairs)."""
    if edge_budgets is None:
        edge_budgets = (10, 1000, None) if quick else (
            10, 100, 1000, 10_000, 100_000, None,
        )
    if parallelisms is None:
        parallelisms = (2, 6) if quick else (2, 3, 4, 5, 6)
    workload = _twitter(quick)
    train = list(workload.week_pairs(0))
    test = list(workload.week_pairs(1))
    total_edges = len(set(train))
    rows = []
    for parallelism in parallelisms:
        evaluator = TwoHopEvaluator(parallelism)
        for budget in edge_budgets:
            tables, predicted = evaluator.plan_tables(
                train, max_edges=budget
            )
            result = evaluator.evaluate(test, tables)
            rows.append(
                {
                    "parallelism": parallelism,
                    "edges": budget if budget is not None else total_edges,
                    "budget": "all" if budget is None else budget,
                    "locality": result.locality,
                    "predicted": predicted,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Flickr reconfiguration experiments (Figures 13, 14)
# ----------------------------------------------------------------------


def _flickr_run(
    parallelism: int,
    padding: int,
    bandwidth_gbps: float,
    reconfigure: bool,
    duration_s: float = 1.5,
    period_s: float = 0.5,
    sample_interval_s: float = 0.05,
    quick: bool = False,
    telemetry_path: Optional[str] = None,
) -> Dict:
    """One Fig. 13-style run: the Flickr application with or without
    periodic reconfiguration; returns the throughput time series.

    The paper runs 30 minutes with a 10-minute period; we compress the
    time axis (duration : period stays 3 : 1). When ``telemetry_path``
    is set, full observability is attached and the run's trace
    (reconfiguration-round spans, periodic snapshots, metric dump) is
    exported there as JSONL — render it with
    ``python -m repro.analysis.report <path>``.
    """
    from repro.observability import attach_telemetry

    # The workload itself is cheap to generate; ``quick`` only trims
    # the experiment grids, never the data realism.
    workload = FlickrWorkload(FlickrConfig())
    sim = Simulator()
    cluster = Cluster(sim, parallelism, bandwidth_gbps=bandwidth_gbps)
    deployment = deploy(
        sim, cluster, workload.topology(parallelism, padding=padding)
    )
    manager = None
    if reconfigure:
        manager = Manager(
            deployment,
            ManagerConfig(period_s=period_s, sketch_capacity=100_000),
        )
        manager.start()
    telemetry = None
    if telemetry_path is not None:
        telemetry = attach_telemetry(
            deployment,
            manager=manager,
            path=telemetry_path,
            snapshot_interval_s=sample_interval_s,
        )
    sampler = ThroughputSampler(
        sim, deployment.metrics, "B", sample_interval_s
    )
    sampler.start()
    deployment.start()
    sim.run(until=duration_s)
    if telemetry is not None:
        telemetry.flush()

    samples = [
        {"time": t, "throughput": rate} for t, rate in sampler.samples
    ]
    before = [s["throughput"] for s in samples if s["time"] <= period_s]
    # "the average is measured after the first reconfiguration": allow
    # a short settle margin past the reconfiguration instant.
    settle = period_s + 0.15
    after = [s["throughput"] for s in samples if s["time"] > settle]
    return {
        "parallelism": parallelism,
        "padding": padding,
        "bandwidth_gbps": bandwidth_gbps,
        "reconfigure": reconfigure,
        "samples": samples,
        "mean_before_first_reconf": sum(before) / max(len(before), 1),
        "mean_after_first_reconf": sum(after) / max(len(after), 1),
        "rounds": len(manager.completed_rounds) if manager else 0,
    }


def fig13(
    bandwidths: Optional[Sequence[float]] = None,
    paddings: Optional[Sequence[int]] = None,
    parallelism: int = 6,
    quick: bool = False,
    telemetry_path: Optional[str] = None,
) -> List[Dict]:
    """Throughput over time, with vs without reconfiguration.

    ``telemetry_path`` exports the full telemetry of the *first*
    reconfiguring run (spans, snapshots, metrics) as JSONL for
    ``python -m repro.analysis.report``.
    """
    if bandwidths is None:
        bandwidths = (1.0,) if quick else (10.0, 1.0)
    if paddings is None:
        paddings = (4000,) if quick else (4000, 8000, 12000)
    rows = []
    traced = False
    for bandwidth in bandwidths:
        for padding in paddings:
            for reconfigure in (True, False):
                trace_here = reconfigure and not traced
                rows.append(
                    _flickr_run(
                        parallelism,
                        padding,
                        bandwidth,
                        reconfigure,
                        quick=quick,
                        telemetry_path=(
                            telemetry_path if trace_here else None
                        ),
                    )
                )
                traced = traced or trace_here
    return rows


def fig14(
    parallelisms: Optional[Sequence[int]] = None,
    padding: int = 4000,
    bandwidth_gbps: float = 1.0,
    quick: bool = False,
) -> List[Dict]:
    """Average throughput vs parallelism, 4 kB tuples on 1 Gb/s.

    With reconfiguration, the average is measured after the first
    reconfiguration, as in the paper.
    """
    if parallelisms is None:
        parallelisms = (2, 6) if quick else (2, 3, 4, 5, 6)
    rows = []
    for parallelism in parallelisms:
        for reconfigure in (True, False):
            result = _flickr_run(
                parallelism, padding, bandwidth_gbps, reconfigure,
                duration_s=2.0,
                quick=quick,
            )
            rows.append(
                {
                    "parallelism": parallelism,
                    "reconfigure": reconfigure,
                    "throughput": result["mean_after_first_reconf"],
                }
            )
    return rows


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

FIGURES = {
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "skew": skew,
}


def main(argv: Optional[List[str]] = None) -> int:
    import argparse
    import os

    from repro.analysis.report import format_table

    parser = argparse.ArgumentParser(
        description="Regenerate one of the paper's figures."
    )
    parser.add_argument("figure", choices=sorted(FIGURES) + ["all"])
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--out-dir", default="results")
    parser.add_argument(
        "--telemetry",
        metavar="PATH",
        default=None,
        help="(fig13 only) export the first reconfiguring run's "
        "telemetry as JSONL; render it with "
        "'python -m repro.analysis.report PATH'",
    )
    args = parser.parse_args(argv)

    figures = sorted(FIGURES) if args.figure == "all" else [args.figure]
    os.makedirs(args.out_dir, exist_ok=True)
    for name in figures:
        kwargs = {"quick": args.quick}
        if name == "fig13" and args.telemetry:
            kwargs["telemetry_path"] = args.telemetry
        rows = FIGURES[name](**kwargs)
        if name == "fig13":
            for row in rows:
                row.pop("samples", None)
        table = format_table(rows, title=f"{name} ({'quick' if args.quick else 'full'})")
        print(table)
        print()
        path = os.path.join(args.out_dir, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(table + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
