"""Elastic scaling: a load-watching controller for online rescaling.

The paper keeps the instance count of every operator fixed; this module
adds the natural elasticity extension on top of the reconfiguration
protocol. An :class:`ElasticityController` periodically samples the
load signals that the engine already exposes —

* per-instance **queue depth** (the most direct backpressure signal),
* per-instance **throughput** (received-tuple deltas between samples),
* **SpaceSaving occupancy** of the pair sketches (how crowded the
  observed key space is),

— and when a threshold trips it asks the :class:`~repro.core.manager.
Manager` for a *rescale round*: the manager spawns or retires POI
instances, repartitions the key graph for the new width and migrates
state through Algorithm 1 without stopping the stream.

Determinism contract: **constructing** a controller schedules nothing
and perturbs nothing — a simulation with a controller that is never
:meth:`~ElasticityController.start`-ed is event-for-event identical
(same fingerprint) to one without it. Only ``start()`` arms the
sampling tick, and the tick is a *daemon* event so an armed-but-idle
controller never keeps a drain run alive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.routing_table import RoutingTable
from repro.engine.grouping import stable_hash
from repro.errors import ReconfigurationError


@dataclass
class ElasticityConfig:
    """Tunables of the elasticity controller."""

    #: Sample the load signals every this many simulated seconds.
    check_period_s: float = 0.05
    #: Scale out when any instance's queue is at least this deep.
    scale_out_queue_depth: float = 32.0
    #: Scale in when *every* instance's queue is at most this deep ...
    scale_in_queue_depth: float = 2.0
    #: ... for this many consecutive samples (guards against scaling
    #: in during a momentary lull or before the workload ramps up).
    scale_in_consecutive: int = 3
    #: Secondary scale-out trigger: any pair sketch at least this full
    #: (fraction of capacity); None disables the occupancy signal.
    scale_out_occupancy: Optional[float] = None
    #: Parallelism bounds the controller may move between.
    min_parallelism: int = 1
    max_parallelism: int = 8
    #: Instances added/removed per decision.
    step: int = 1
    #: Minimum simulated seconds between two triggered rescales.
    cooldown_s: float = 0.1


@dataclass
class ScalingDecision:
    """One controller decision (kept for tests and experiments)."""

    at: float
    from_parallelism: int
    to_parallelism: int
    reason: str
    #: False when the manager declined (round in flight, rollback...)
    started: bool = True


class ElasticityController:
    """Watches per-POI load and drives the manager's rescale rounds.

    The controller is passive until :meth:`start` is called; sampling
    stops again after :meth:`stop` (the pending daemon tick fires once
    more and does nothing).
    """

    def __init__(self, manager, config: Optional[ElasticityConfig] = None):
        self.manager = manager
        self.config = config or ElasticityConfig()
        if self.config.min_parallelism < 1:
            raise ReconfigurationError(
                f"min_parallelism must be >= 1, got "
                f"{self.config.min_parallelism}"
            )
        if self.config.max_parallelism < self.config.min_parallelism:
            raise ReconfigurationError(
                "max_parallelism must be >= min_parallelism"
            )
        self.decisions: List[ScalingDecision] = []
        self.samples = 0
        #: the most recent load sample (exported through the registry)
        self.last_sample: Dict[str, float] = {}
        self._armed = False
        self._last_action_at: Optional[float] = None
        self._last_received: Dict[Tuple[str, int], int] = {}
        self._last_sample_at: Optional[float] = None
        self._low_streak = 0
        registry = manager.deployment.metrics.registry
        registry.register_callback(
            "elasticity_decisions", lambda: len(self.decisions)
        )
        registry.register_callback(
            "elasticity_max_queue_depth",
            lambda: self.last_sample.get("max_queue_depth", 0.0),
        )
        registry.register_callback(
            "elasticity_max_rate",
            lambda: self.last_sample.get("max_rate", 0.0),
        )
        registry.register_callback(
            "elasticity_max_occupancy",
            lambda: self.last_sample.get("max_occupancy", 0.0),
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def armed(self) -> bool:
        return self._armed

    def start(self) -> None:
        """Arm periodic sampling. Idempotent."""
        if self._armed:
            return
        self._armed = True
        self._schedule_tick()

    def stop(self) -> None:
        """Disarm sampling (the in-flight tick fires and does nothing)."""
        self._armed = False

    def _schedule_tick(self) -> None:
        self.manager.sim.schedule(
            self.config.check_period_s, self._tick, daemon=True
        )

    def _tick(self) -> None:
        if not self._armed:
            return
        self.sample_and_act()
        self._schedule_tick()

    # ------------------------------------------------------------------
    # Sampling and decisions
    # ------------------------------------------------------------------

    def _stateful_tiers(self) -> List[str]:
        return sorted(
            {s.dst_op for s in self.manager.routed_streams if s.stateful_dst}
        )

    def sample(self) -> Dict[str, float]:
        """Read the load signals without acting on them."""
        manager = self.manager
        deployment = manager.deployment
        now = manager.sim.now
        max_depth = 0.0
        max_rate = 0.0
        max_occupancy = 0.0
        elapsed = (
            now - self._last_sample_at
            if self._last_sample_at is not None
            else None
        )
        for op_name in self._stateful_tiers():
            for executor in deployment.instances(op_name):
                max_depth = max(max_depth, float(executor.queue_depth))
                received = deployment.metrics.received[
                    (op_name, executor.instance)
                ]
                key = (op_name, executor.instance)
                if elapsed is not None and elapsed > 0:
                    delta = received - self._last_received.get(key, 0)
                    max_rate = max(max_rate, delta / elapsed)
                self._last_received[key] = received
        for executor in deployment.all_executors():
            tracker = getattr(executor, "instrumentation", None)
            if tracker is None:
                continue
            for stats in tracker.sketch_stats().values():
                if stats["capacity"]:
                    max_occupancy = max(
                        max_occupancy,
                        stats["occupancy"] / stats["capacity"],
                    )
        self._last_sample_at = now
        self.samples += 1
        self.last_sample = {
            "max_queue_depth": max_depth,
            "max_rate": max_rate,
            "max_occupancy": max_occupancy,
        }
        return self.last_sample

    def sample_and_act(self) -> Optional[ScalingDecision]:
        """One controller step: sample, decide, maybe rescale."""
        manager = self.manager
        sample = self.sample()
        if manager.round_active or manager.rescale_in_progress:
            return None
        config = self.config
        now = manager.sim.now
        if (
            self._last_action_at is not None
            and now - self._last_action_at < config.cooldown_s
        ):
            return None
        k = manager.tier_parallelism
        max_depth = sample["max_queue_depth"]
        max_occupancy = sample["max_occupancy"]

        if max_depth > config.scale_in_queue_depth:
            self._low_streak = 0
        reason = None
        target = k
        if max_depth >= config.scale_out_queue_depth:
            reason = f"queue depth {max_depth:.0f}"
            target = min(k + config.step, config.max_parallelism)
        elif (
            config.scale_out_occupancy is not None
            and max_occupancy >= config.scale_out_occupancy
        ):
            reason = f"sketch occupancy {max_occupancy:.2f}"
            target = min(k + config.step, config.max_parallelism)
        elif max_depth <= config.scale_in_queue_depth:
            self._low_streak += 1
            if self._low_streak >= config.scale_in_consecutive:
                reason = (
                    f"queue depth <= {config.scale_in_queue_depth:.0f} "
                    f"for {self._low_streak} samples"
                )
                target = max(k - config.step, config.min_parallelism)
        if reason is None or target == k:
            return None

        started = manager.rescale(target)
        decision = ScalingDecision(
            at=now,
            from_parallelism=k,
            to_parallelism=target,
            reason=reason,
            started=started,
        )
        self.decisions.append(decision)
        if started:
            self._last_action_at = now
            self._low_streak = 0
        return decision


# ----------------------------------------------------------------------
# Pure owner math (shared with the property-based tests)
# ----------------------------------------------------------------------


def owner_of(
    key: Hashable,
    table: Optional[RoutingTable],
    num_instances: int,
    seed: int,
) -> int:
    """Owner of ``key`` at width ``num_instances``: a valid table entry
    wins, otherwise the engine-identical hash fallback."""
    if table is not None:
        owner = table.lookup(key)
        if owner is not None and 0 <= owner < num_instances:
            return owner
    return stable_hash(key, seed) % num_instances


def rescale_moves(
    keys,
    old_table: Optional[RoutingTable],
    old_n: int,
    new_table: Optional[RoutingTable],
    new_n: int,
    seed: int,
) -> Dict[Hashable, Tuple[int, int]]:
    """The exact key movements a k→k' rescale induces: each key whose
    owner changes, mapped to ``(old_owner, new_owner)``. Keys whose
    owner is unchanged never appear — the migration plan must not move
    them."""
    moves: Dict[Hashable, Tuple[int, int]] = {}
    for key in keys:
        old = owner_of(key, old_table, old_n, seed)
        new = owner_of(key, new_table, new_n, seed)
        if old != new:
            moves[key] = (old, new)
    return moves
