"""Property-based tests of reconfiguration planning.

These check structural invariants of the plan for arbitrary observed
pair statistics — the properties the protocol's correctness rests on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    KeyGraph,
    RoutingTable,
    compute_assignment,
    expected_locality,
    plan_reconfiguration,
)
from repro.core.assignment import RoutedStream

pair_counts = st.dictionaries(
    keys=st.tuples(
        st.integers(min_value=0, max_value=12),   # first-hop key
        st.integers(min_value=100, max_value=112),  # second-hop key
    ),
    values=st.integers(min_value=1, max_value=1000),
    min_size=1,
    max_size=40,
)


def _graph(counts):
    graph = KeyGraph()
    for (k1, k2), count in counts.items():
        graph.add_pair("S->A", k1, "A->B", k2, count)
    return graph


def _streams(n):
    return [
        RoutedStream("S->A", "S", "A", list(range(n))),
        RoutedStream("A->B", "A", "B", list(range(n))),
    ]


@given(counts=pair_counts, n=st.integers(min_value=1, max_value=6))
@settings(max_examples=60, deadline=None)
def test_assignment_is_total_and_in_range(counts, n):
    graph = _graph(counts)
    assignment = compute_assignment(graph, n, seed=1)
    assert len(assignment.parts) == graph.num_vertices
    assert all(0 <= part < n for part in assignment.parts.values())
    locality = expected_locality(graph, assignment)
    assert 0.0 <= locality <= 1.0
    if n == 1:
        assert locality == 1.0


@given(counts=pair_counts, n=st.integers(min_value=2, max_value=5))
@settings(max_examples=40, deadline=None)
def test_tables_cover_exactly_the_observed_keys(counts, n):
    graph = _graph(counts)
    plan = plan_reconfiguration(graph, _streams(n), n, {})
    first_keys = {k1 for (k1, _) in counts}
    second_keys = {k2 for (_, k2) in counts}
    assert set(plan.tables["S->A"].keys()) == first_keys
    assert set(plan.tables["A->B"].keys()) == second_keys


@given(counts=pair_counts, n=st.integers(min_value=2, max_value=5))
@settings(max_examples=40, deadline=None)
def test_migrations_are_consistent_with_table_diffs(counts, n):
    """Every migrated key moves between exactly the instances that the
    old/new routing (with hash fallback) imply; no key moves twice."""
    graph = _graph(counts)
    streams = _streams(n)
    old = {
        "S->A": RoutingTable({k: 0 for (k, _) in counts}),
        "A->B": RoutingTable(),
    }
    plan = plan_reconfiguration(graph, streams, n, old)
    for stream in streams:
        per_pair = plan.migrations.get(stream.dst_op, {})
        seen = set()
        for (src, dst), keys in per_pair.items():
            assert src != dst
            assert 0 <= src < n and 0 <= dst < n
            for key in keys:
                assert key not in seen, "key migrated twice"
                seen.add(key)
                old_owner = old[stream.name].lookup(key)
                if old_owner is None:
                    old_owner = stream.fallback_instance(key)
                new_owner = plan.tables[stream.name].lookup(key)
                if new_owner is None:
                    new_owner = stream.fallback_instance(key)
                assert (old_owner, new_owner) == (src, dst)


@given(counts=pair_counts, n=st.integers(min_value=2, max_value=5))
@settings(max_examples=40, deadline=None)
def test_replanning_same_data_same_seed_is_stable(counts, n):
    """Planning twice from identical data and tables moves nothing."""
    graph = _graph(counts)
    streams = _streams(n)
    first = plan_reconfiguration(graph, streams, n, {}, seed=7)
    second = plan_reconfiguration(
        graph, streams, n, first.tables, seed=7
    )
    assert second.tables == first.tables
    assert second.total_moved_keys() == 0


@given(counts=pair_counts)
@settings(max_examples=30, deadline=None)
def test_predicted_locality_monotone_in_parts(counts):
    """More servers can only make co-location harder (weakly)."""
    graph = _graph(counts)
    one = expected_locality(graph, compute_assignment(graph, 1))
    many = expected_locality(graph, compute_assignment(graph, 6, seed=3))
    assert one >= many


def test_determinism_of_full_plan():
    counts = {(i, 100 + (i % 5)): 10 * (i + 1) for i in range(12)}
    graph = _graph(counts)
    streams = _streams(4)
    plans = [
        plan_reconfiguration(graph, streams, 4, {}, seed=9)
        for _ in range(3)
    ]
    for plan in plans[1:]:
        assert plan.tables == plans[0].tables
        assert plan.migrations == plans[0].migrations
