"""Unit tests for the Stream-Summary bucket structure."""

import pytest

from repro.spacesaving.summary import StreamSummary


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        StreamSummary(0)
    with pytest.raises(ValueError):
        StreamSummary(-3)


def test_empty_summary():
    summary = StreamSummary(4)
    assert len(summary) == 0
    assert not summary.full
    assert summary.min_count() == 0
    assert "x" not in summary
    with pytest.raises(KeyError):
        summary.min_item()
    with pytest.raises(KeyError):
        summary.evict_min()


def test_insert_and_count():
    summary = StreamSummary(4)
    summary.insert("a", count=3, error=1)
    assert "a" in summary
    assert summary.count_of("a") == (3, 1)
    assert len(summary) == 1


def test_insert_duplicate_raises():
    summary = StreamSummary(4)
    summary.insert("a", count=1, error=0)
    with pytest.raises(ValueError):
        summary.insert("a", count=2, error=0)


def test_insert_when_full_raises():
    summary = StreamSummary(1)
    summary.insert("a", count=1, error=0)
    with pytest.raises(ValueError):
        summary.insert("b", count=1, error=0)


def test_count_of_unknown_item_raises():
    summary = StreamSummary(2)
    with pytest.raises(KeyError):
        summary.count_of("missing")


def test_increment_moves_between_buckets():
    summary = StreamSummary(4)
    summary.insert("a", count=1, error=0)
    summary.insert("b", count=1, error=0)
    summary.increment("a")
    assert summary.count_of("a") == (2, 0)
    assert summary.count_of("b") == (1, 0)
    assert summary.min_item() == "b"


def test_increment_weighted():
    summary = StreamSummary(4)
    summary.insert("a", count=1, error=0)
    summary.insert("b", count=5, error=0)
    summary.increment("a", weight=10)
    assert summary.count_of("a") == (11, 0)
    assert summary.min_item() == "b"


def test_increment_requires_positive_weight():
    summary = StreamSummary(2)
    summary.insert("a", count=1, error=0)
    with pytest.raises(ValueError):
        summary.increment("a", weight=0)


def test_evict_min_removes_least_frequent():
    summary = StreamSummary(4)
    summary.insert("a", count=7, error=0)
    summary.insert("b", count=2, error=0)
    summary.insert("c", count=5, error=0)
    item, count = summary.evict_min()
    assert (item, count) == ("b", 2)
    assert "b" not in summary
    assert len(summary) == 2
    assert summary.min_item() == "c"


def test_items_descending_and_ascending():
    summary = StreamSummary(8)
    for item, count in [("a", 5), ("b", 2), ("c", 9), ("d", 2)]:
        summary.insert(item, count=count, error=0)
    descending = [count for _, count, _ in summary.items_descending()]
    assert descending == sorted(descending, reverse=True)
    ascending = [count for _, count, _ in summary.items_ascending()]
    assert ascending == sorted(ascending)
    assert set(i for i, _, _ in summary.items_descending()) == {
        "a",
        "b",
        "c",
        "d",
    }


def test_shared_bucket_handling():
    """Several items can share a bucket; detaching one keeps the others."""
    summary = StreamSummary(4)
    summary.insert("a", count=3, error=0)
    summary.insert("b", count=3, error=0)
    summary.insert("c", count=3, error=0)
    summary.increment("b")
    assert summary.count_of("a") == (3, 0)
    assert summary.count_of("b") == (4, 0)
    assert summary.count_of("c") == (3, 0)


def test_clear():
    summary = StreamSummary(4)
    summary.insert("a", count=1, error=0)
    summary.clear()
    assert len(summary) == 0
    assert summary.min_count() == 0
    summary.insert("a", count=1, error=0)
    assert summary.count_of("a") == (1, 0)


def test_bucket_list_stays_sorted_under_mixed_operations():
    summary = StreamSummary(16)
    for i in range(16):
        summary.insert(i, count=1 + (i % 3), error=0)
    for i in range(0, 16, 2):
        summary.increment(i, weight=1 + i)
    for _ in range(4):
        summary.evict_min()
    counts = [count for _, count, _ in summary.items_ascending()]
    assert counts == sorted(counts)
    assert len(summary) == 12
