"""Campaign JSONL reports: one header line, then one line per cell.

The JSONL is the machine-readable artifact of a campaign run (the
markdown report is rendered from it). Line 1 is the campaign header —
schema, campaign name, config source, cell/seed counts, status tally —
and every following line is one executed cell
(:meth:`~repro.campaign.executor.CellResult.to_dict`). The file is the
source of truth for single-cell reproduction: ``campaign run --cell
<id>`` loads it to compare fingerprints against the recorded run.
"""

from __future__ import annotations

import datetime
import json
import os
from collections import Counter
from typing import Dict, List, Tuple

from repro.campaign.config import CampaignConfig
from repro.campaign.executor import CellResult

REPORT_SCHEMA = "repro.campaign/report-v1"


def report_header(
    config: CampaignConfig, results: List[CellResult]
) -> dict:
    statuses = Counter(result.status for result in results)
    return {
        "schema": REPORT_SCHEMA,
        "campaign": config.name,
        "description": config.description,
        "runner": config.runner,
        "config": config.source,
        "generated_utc": datetime.datetime.now(
            datetime.timezone.utc
        ).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "cells": len(results),
        "seeds": list(config.seeds),
        "statuses": dict(sorted(statuses.items())),
    }


def write_jsonl(
    path: str, config: CampaignConfig, results: List[CellResult]
) -> dict:
    """Write the campaign JSONL; returns the header written."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    header = report_header(config, results)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for result in results:
            handle.write(
                json.dumps(result.to_dict(), sort_keys=True) + "\n"
            )
    return header


def load_jsonl(path: str) -> Tuple[dict, List[CellResult]]:
    """Load a campaign JSONL back into (header, cell results)."""
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line for line in handle if line.strip()]
    if not lines:
        raise ValueError(f"{path}: empty campaign report")
    header = json.loads(lines[0])
    schema = header.get("schema")
    if schema != REPORT_SCHEMA:
        raise ValueError(
            f"{path}: unsupported report schema {schema!r} "
            f"(expected {REPORT_SCHEMA!r})"
        )
    results = [CellResult.from_dict(json.loads(line)) for line in lines[1:]]
    return header, results


def metrics_by_cell(
    results: List[CellResult],
) -> Dict[str, Dict[str, float]]:
    """cell id → metrics, for baseline recording and diffing. Cells
    that produced no metrics (timeout/crash) are omitted — their
    absence is what the baseline diff reports."""
    return {
        result.id: dict(result.metrics)
        for result in results
        if result.metrics
    }
