"""Tests for routing policies (groupings and routers)."""

from collections import Counter

import pytest

from repro.engine.grouping import (
    BroadcastGrouping,
    CustomGrouping,
    FieldsGrouping,
    GlobalGrouping,
    LocalOrShuffleGrouping,
    PartialKeyGrouping,
    RouterContext,
    ShuffleGrouping,
    TableFieldsGrouping,
    normalize_key_fn,
    stable_hash,
)
from repro.errors import RoutingError


def _context(dst_placements, src_server=0, src_instance=0, seed=7):
    return RouterContext(
        stream_name="test",
        src_instance=src_instance,
        src_server=src_server,
        dst_placements=dst_placements,
        seed=seed,
    )


class _DictTable:
    def __init__(self, mapping):
        self._mapping = mapping

    def lookup(self, key):
        return self._mapping.get(key)


def test_normalize_key_fn_from_index():
    fn = normalize_key_fn(1)
    assert fn(("a", "b", "c")) == "b"


def test_normalize_key_fn_from_callable():
    fn = normalize_key_fn(lambda values: values[0].upper())
    assert fn(("x",)) == "X"


def test_normalize_key_fn_rejects_other():
    with pytest.raises(RoutingError):
        normalize_key_fn("field")


def test_stable_hash_deterministic_and_seeded():
    assert stable_hash("Asia") == stable_hash("Asia")
    assert stable_hash("Asia", 1) != stable_hash("Asia", 2)
    assert stable_hash(("Asia", 3)) == stable_hash(("Asia", 3))


def test_shuffle_round_robin():
    router = ShuffleGrouping().build_router(_context([0, 1, 2]))
    picks = [router.select(("x",))[0] for _ in range(6)]
    assert picks == [0, 1, 2, 0, 1, 2]


def test_shuffle_different_sources_start_offset():
    context = _context([0, 1, 2], src_instance=1)
    router = ShuffleGrouping().build_router(context)
    assert router.select(("x",)) == [1]


def test_local_or_shuffle_prefers_local():
    # Destinations on servers [0, 1, 0]: sender on server 0 must always
    # pick instance 0 or 2.
    router = LocalOrShuffleGrouping().build_router(
        _context([0, 1, 0], src_server=0)
    )
    picks = {router.select(("x",))[0] for _ in range(10)}
    assert picks <= {0, 2}
    assert len(picks) == 2  # round-robins over the local ones


def test_local_or_shuffle_falls_back_to_shuffle():
    router = LocalOrShuffleGrouping().build_router(
        _context([1, 2], src_server=0)
    )
    picks = [router.select(("x",))[0] for _ in range(4)]
    assert sorted(set(picks)) == [0, 1]


def test_fields_grouping_is_deterministic_per_key():
    router = FieldsGrouping(0).build_router(_context([0, 1, 2]))
    for key in ["a", "b", "c", 42]:
        first = router.select((key,))
        for _ in range(5):
            assert router.select((key,)) == first


def test_fields_grouping_spreads_keys():
    router = FieldsGrouping(0).build_router(_context([0] * 8))
    counts = Counter(router.select((f"key{i}",))[0] for i in range(1000))
    assert len(counts) == 8
    assert max(counts.values()) < 1000 * 0.25


def test_table_fields_routing_and_fallback():
    table = _DictTable({"a": 2, "b": 0})
    router = TableFieldsGrouping(0, table=table).build_router(
        _context([0, 1, 2])
    )
    assert router.select(("a",)) == [2]
    assert router.select(("b",)) == [0]
    # Unknown key: hash fallback, deterministic.
    fallback = router.select(("unknown",))
    assert router.select(("unknown",)) == fallback


def test_table_router_hot_swap():
    router = TableFieldsGrouping(0, table=_DictTable({"a": 0})).build_router(
        _context([0, 1])
    )
    assert router.select(("a",)) == [0]
    router.update_table(_DictTable({"a": 1}))
    assert router.select(("a",)) == [1]


def test_table_router_rejects_out_of_range_instance():
    router = TableFieldsGrouping(0, table=_DictTable({"a": 9})).build_router(
        _context([0, 1])
    )
    with pytest.raises(RoutingError):
        router.select(("a",))


def test_table_router_none_table_hashes():
    router = TableFieldsGrouping(0).build_router(_context([0, 1, 2]))
    assert len(router.select(("k",))) == 1


def test_global_grouping():
    router = GlobalGrouping().build_router(_context([0, 1, 2]))
    assert router.select(("x",)) == [0]


def test_broadcast_grouping():
    router = BroadcastGrouping().build_router(_context([0, 1, 2]))
    assert router.select(("x",)) == [0, 1, 2]


def test_partial_key_grouping_uses_two_choices():
    router = PartialKeyGrouping(0).build_router(_context([0] * 6))
    destinations = {router.select(("hot",))[0] for _ in range(50)}
    assert 1 <= len(destinations) <= 2


def test_partial_key_grouping_balances_better_than_hash():
    hash_router = FieldsGrouping(0).build_router(_context([0] * 4, seed=1))
    pkg_router = PartialKeyGrouping(0).build_router(_context([0] * 4, seed=1))
    # Zipf-ish skew: one very hot key.
    stream = ["hot"] * 500 + [f"k{i}" for i in range(500)]
    hash_loads = Counter(hash_router.select((k,))[0] for k in stream)
    pkg_loads = Counter(pkg_router.select((k,))[0] for k in stream)
    assert max(pkg_loads.values()) < max(hash_loads.values())


def test_custom_grouping_scalar_and_list():
    router = CustomGrouping(lambda values, ctx: values[0]).build_router(
        _context([0, 1, 2])
    )
    assert router.select((2,)) == [2]
    router = CustomGrouping(lambda values, ctx: [0, 2]).build_router(
        _context([0, 1, 2])
    )
    assert router.select((0,)) == [0, 2]
