"""Executors: the running instances (POIs) of operators.

An executor owns one operator object, an input queue, and one router
per output stream. The service model (DESIGN.md Section 5):

- processing a tuple costs ``bolt_service_s`` CPU, plus
  ``deser_cost(size)`` when it arrived over the network;
- each emission bound for a remote server adds ``ser_cost(size)`` to
  the *sender's* service time;
- emissions are dispatched when the service time elapses, so the
  executor is a single-threaded pipeline stage, like a Storm executor
  thread.

Control messages (reconfiguration protocol) travel through the same
FIFO channels and the same input queue as data. This gives PROPAGATE
messages barrier semantics: every tuple routed with the old table is
delivered before the PROPAGATE that retires that table (see
core.reconfiguration).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, List, Optional

from repro.engine.acker import Acker
from repro.engine.costs import CostModel
from repro.engine.grouping import Router, TableRouter
from repro.engine.metrics import MetricsHub
from repro.engine.operators import (
    Bolt,
    OperatorContext,
    Spout,
    StatefulBolt,
)
from repro.engine.tuples import Tuple, payload_size
from repro.errors import SimulationError


class ControlMessage:
    """A control-plane message (reconfiguration protocol, migration)."""

    __slots__ = ("kind", "payload", "sender", "size")

    def __init__(
        self, kind: str, payload: Any = None, sender: str = "", size: int = 0
    ) -> None:
        self.kind = kind
        self.payload = payload
        self.sender = sender
        self.size = size

    def __repr__(self) -> str:
        return f"ControlMessage({self.kind!r}, from={self.sender!r})"


class OutEdge:
    """Runtime view of one output stream from one executor."""

    __slots__ = ("stream_name", "router", "destinations", "key_fn")

    def __init__(
        self,
        stream_name: str,
        router: Router,
        destinations: List["BaseExecutor"],
        key_fn: Optional[Callable[[tuple], Any]],
    ) -> None:
        self.stream_name = stream_name
        self.router = router
        self.destinations = destinations
        self.key_fn = key_fn


class BaseExecutor:
    """Shared identity, emission and control plumbing."""

    def __init__(
        self,
        sim,
        cluster,
        op_name: str,
        instance: int,
        parallelism: int,
        server,
        operator,
        costs: CostModel,
        metrics: MetricsHub,
        acker: Acker,
    ) -> None:
        self.sim = sim
        self.cluster = cluster
        self.op_name = op_name
        self.instance = instance
        self.parallelism = parallelism
        self.server = server
        self.operator = operator
        self.costs = costs
        self.metrics = metrics
        self.acker = acker
        #: the hub keys per-instance tallies by (op, instance); built
        #: once so the hot paths don't construct a tuple per tuple
        self._id_key = (op_name, instance)
        self.out_edges: List[OutEdge] = []
        #: stream name → edge, kept in sync by :meth:`add_out_edge` so
        #: :meth:`out_edge` is O(1) (it is hot during reconfiguration:
        #: every ``table_router`` call goes through it)
        self._out_edge_index: Dict[str, OutEdge] = {}
        #: key extraction per input operator name (fields-grouped inputs)
        self.in_key_fns: Dict[str, Callable[[tuple], Any]] = {}
        #: optional hook with ``observe(in_stream, in_key, out_stream,
        #: out_key)`` — set by core.instrumentation
        self.instrumentation = None
        #: optional handler ``fn(msg, executor)`` for control messages —
        #: set by core.reconfiguration
        self.control_handler: Optional[Callable] = None
        #: optional interception hook with ``on_control(executor, msg)
        #: -> bool`` consulted on every control delivery; True means the
        #: hook consumed the delivery — set by repro.faults
        self.fault_hook = None
        self._op_context: Optional[OperatorContext] = None
        self._closed = False

    # ------------------------------------------------------------------
    # Identity helpers
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        return f"{self.op_name}[{self.instance}]"

    def make_context(self) -> OperatorContext:
        return OperatorContext(
            self.op_name,
            self.instance,
            self.parallelism,
            self.server.index,
            lambda: self.sim.now,
        )

    def _context(self) -> OperatorContext:
        """The reusable per-executor context for the processing loops.

        Identity fields only change through :meth:`set_parallelism`
        (which drops the cached context) and ``_drain`` empties the
        emission buffer after every operator call, so one context
        object serves every invocation.
        """
        context = self._op_context
        if context is None:
            context = self._op_context = self.make_context()
        return context

    def set_parallelism(self, parallelism: int) -> None:
        """Adopt a new operator parallelism (elastic rescale commit).
        Drops the cached operator context so ``num_instances`` reported
        to the operator stays truthful."""
        if parallelism < 1:
            raise SimulationError(
                f"parallelism must be >= 1, got {parallelism}"
            )
        self.parallelism = parallelism
        self._op_context = None

    def add_out_edge(self, edge: OutEdge) -> None:
        """Wire one output edge (deployment time), indexing it by name."""
        self.out_edges.append(edge)
        self._out_edge_index[edge.stream_name] = edge

    def out_edge(self, stream_name: str) -> OutEdge:
        index = self._out_edge_index
        if len(index) != len(self.out_edges):
            # Edges appended to the list directly (tests do): re-index.
            index.clear()
            for edge in self.out_edges:
                index[edge.stream_name] = edge
        try:
            return index[stream_name]
        except KeyError:
            raise SimulationError(
                f"{self.name} has no output stream {stream_name!r}"
            ) from None

    def table_router(self, stream_name: str) -> TableRouter:
        router = self.out_edge(stream_name).router
        if not isinstance(router, TableRouter):
            raise SimulationError(
                f"stream {stream_name!r} is not table-routed at {self.name}"
            )
        return router

    # ------------------------------------------------------------------
    # Emission planning and dispatch
    # ------------------------------------------------------------------

    def _plan_emissions(
        self, emissions: List[tuple], root_id: Optional[int]
    ) -> "EmissionPlan":
        """Route emissions now; return the plan plus its ser CPU cost.

        The recursive :func:`payload_size` walk runs once per emitted
        ``values`` and is shared across every destination copy (a
        broadcast to N instances sizes the payload once, not N times).
        """
        plan: List[tuple] = []
        ser_cost = 0.0
        costs = self.costs
        header_bytes = costs.tuple_header_bytes
        my_server = self.server.index
        out_edges = self.out_edges
        emitted = self.metrics.emitted
        id_key = self._id_key
        for values in emissions:
            # ``values`` is already a tuple (OperatorContext.emit
            # normalizes), so Tuple is built directly — make_tuple's
            # re-tupling and size walk would be pure overhead here.
            size = header_bytes + payload_size(values)
            emission_root = root_id
            for edge in out_edges:
                for dst_index in edge.router.select(values):
                    dst = edge.destinations[dst_index]
                    tup = Tuple(values, size, emission_root)
                    if emission_root is None:
                        # First copy of a spout emission anchors the tree.
                        emission_root = tup.root_id
                    remote = dst.server.index != my_server
                    if remote:
                        ser_cost += costs.ser_cost(size)
                    plan.append((edge, dst, tup, remote))
            emitted[id_key] += 1
        return EmissionPlan(plan, ser_cost)

    def _dispatch(self, plan: "EmissionPlan") -> None:
        streams = self.metrics.streams
        transfer = self.cluster.transfer
        server = self.server
        op_name = self.op_name
        for edge, dst, tup, remote in plan.entries:
            counters = streams[edge.stream_name]
            size = tup.size
            if remote:
                counters.remote_tuples += 1
                counters.remote_bytes += size
                transfer(
                    server, dst.server, size, dst.deliver, tup, True, op_name
                )
            else:
                counters.local_tuples += 1
                counters.local_bytes += size
                dst.deliver(tup, False, op_name)

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------

    def send_control(
        self, dst: "BaseExecutor", msg: ControlMessage, size: Optional[int] = None
    ) -> None:
        """Send a control message through the data channels (FIFO with
        data), so it acts as a barrier."""
        nbytes = self.costs.control_message_bytes if size is None else size
        msg.size = nbytes
        self.metrics.on_control_sent(msg.kind, nbytes)
        if dst.server.index != self.server.index:
            self.cluster.transfer(
                self.server, dst.server, nbytes, dst.deliver_control, msg
            )
        else:
            dst.deliver_control(msg)

    def deliver_control(self, msg: ControlMessage) -> None:
        """Delivery entry point for control messages (local sends,
        network arrivals and manager RPCs all land here). An installed
        fault hook may drop, delay, duplicate or reorder the delivery;
        redeliveries bypass the hook via :meth:`accept_control`."""
        hook = self.fault_hook
        if hook is not None and hook.on_control(self, msg):
            return
        self.accept_control(msg)

    def accept_control(self, msg: ControlMessage) -> None:
        """Enqueue a control message, bypassing fault interception."""
        raise NotImplementedError

    def handle_control(self, msg: ControlMessage) -> None:
        if self.control_handler is None:
            raise SimulationError(
                f"{self.name} received {msg!r} but has no control handler"
            )
        self.control_handler(msg, self)

    # ------------------------------------------------------------------
    # State access (migration support)
    # ------------------------------------------------------------------

    def extract_state(self, keys) -> Dict:
        if isinstance(self.operator, StatefulBolt):
            return self.operator.extract_state(keys)
        return {}

    def install_state(self, entries: Dict) -> None:
        if entries and not isinstance(self.operator, StatefulBolt):
            raise SimulationError(
                f"cannot install state into stateless {self.name}"
            )
        if entries:
            self.operator.install_state(entries)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.operator.close()


class EmissionPlan:
    __slots__ = ("entries", "ser_cost")

    def __init__(self, entries: List[tuple], ser_cost: float) -> None:
        self.entries = entries
        self.ser_cost = ser_cost

    def __len__(self) -> int:
        return len(self.entries)


class BoltExecutor(BaseExecutor):
    """Executor for bolts: input queue + service-time processing."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._queue: deque = deque()
        self._busy = False
        #: keys whose state is expected from a peer; tuples buffered.
        #: A dict (not a set) so iteration follows insertion order —
        #: set order depends on PYTHONHASHSEED for string keys, which
        #: would make the abort-path bulk release non-replayable.
        self._held_keys: Dict[Any, None] = {}
        self._held_tuples: Dict[Any, List[tuple]] = {}
        self.buffered_count = 0
        self._crashed = False
        self.crash_count = 0

    # -- fault injection --------------------------------------------------

    @property
    def crashed(self) -> bool:
        return self._crashed

    def crash(self, down_s: float = 0.0) -> None:
        """Kill this instance: its queue, buffers and state are lost
        (the engine-level failure Section 3.4 defers to). Deliveries
        while down are dropped; unacked trees time out and replay at
        their spout. The supervisor restarts the instance (with empty
        state) after ``down_s`` seconds."""
        self._crashed = True
        self.crash_count += 1
        self._queue.clear()
        self._held_keys.clear()
        self._held_tuples.clear()
        self._busy = False
        if isinstance(self.operator, StatefulBolt):
            self.operator.state.clear()
        self.sim.schedule(down_s, self._restart)

    def _restart(self) -> None:
        self._crashed = False
        self._maybe_start()

    # -- delivery --------------------------------------------------------

    def deliver(self, tup: Tuple, remote: bool, src_op: str) -> None:
        if self._crashed:
            self.metrics.dropped[self.op_name] += 1
            return
        self.metrics.received[self._id_key] += 1
        self._queue.append(("data", tup, remote, src_op))
        if not self._busy:
            self._busy = True
            self._process_next()

    def accept_control(self, msg: ControlMessage) -> None:
        if self._crashed:
            self.metrics.dropped[self.op_name] += 1
            return
        self._queue.append(("ctrl", msg, False, msg.sender))
        self._maybe_start()

    # -- key holding (state migration buffering) -------------------------

    def hold_keys(self, keys) -> None:
        """Buffer incoming tuples for ``keys`` until their state arrives
        (Section 3.4: the stream is not suspended during migration)."""
        for key in keys:
            self._held_keys[key] = None

    def release_key(self, key) -> None:
        """State for ``key`` arrived: replay its buffered tuples, in
        order, ahead of anything else in the queue."""
        self._held_keys.pop(key, None)
        buffered = self._held_tuples.pop(key, [])
        for item in reversed(buffered):
            self._queue.appendleft(item)
        if buffered:
            self._maybe_start()

    def release_all_held(self) -> None:
        """Release every held key, in the order they were held (the
        abort path; deterministic regardless of key hashing)."""
        for key in list(self._held_keys):
            self.release_key(key)

    @property
    def held_keys(self) -> set:
        return set(self._held_keys)

    # -- load / drain introspection ---------------------------------------

    @property
    def queue_depth(self) -> int:
        """Items waiting in the input queue (data + control). The
        elasticity controller's primary load signal."""
        return len(self._queue)

    @property
    def idle(self) -> bool:
        """True when the executor has nothing queued and no service
        event in flight — the rescale-rollback drain watcher polls this
        before evacuating a doomed instance."""
        return not self._busy and not self._queue

    # -- processing loop --------------------------------------------------

    def _maybe_start(self) -> None:
        if not self._busy and self._queue and not self._crashed:
            self._busy = True
            self._process_next()

    def _process_next(self) -> None:
        """Drain the queue: up to ``costs.bolt_batch`` consecutive data
        items are processed per scheduled service event (one heap push
        instead of N), with their modeled service times summed. A batch
        never crosses a control message, so control barriers see
        exactly the FIFO order they saw with per-tuple events."""
        queue = self._queue
        costs = self.costs
        batch_limit = costs.bolt_batch if costs.bolt_batch > 0 else 1
        bolt_service_s = costs.bolt_service_s
        get_key_fn = self.in_key_fns.get
        held_keys = self._held_keys
        process = self.operator.process
        context = self._context()
        drain = context._drain
        while queue:
            if queue[0][0] == "ctrl":
                msg = queue.popleft()[1]
                self.sim.schedule(
                    costs.control_service_s, self._finish_control, msg
                )
                return

            batch: List[tuple] = []
            service = 0.0
            while queue and queue[0][0] == "data" and len(batch) < batch_limit:
                item = queue.popleft()
                _, tup, remote, src_op = item
                in_key_fn = get_key_fn(src_op)
                in_key = (
                    in_key_fn(tup.values) if in_key_fn is not None else None
                )

                if in_key is not None and in_key in held_keys:
                    # State not here yet: buffer without processing.
                    self._held_tuples.setdefault(in_key, []).append(item)
                    self.buffered_count += 1
                    continue

                service += bolt_service_s
                if remote:
                    service += costs.deser_cost(tup.size)

                process(tup, context)
                emissions = drain()
                plan = self._plan_emissions(emissions, tup.root_id)
                service += plan.ser_cost

                if self.instrumentation is not None and in_key is not None:
                    for values in emissions:
                        for edge in self.out_edges:
                            if edge.key_fn is not None:
                                self.instrumentation.observe(
                                    src_op,
                                    in_key,
                                    edge.stream_name,
                                    edge.key_fn(values),
                                )
                batch.append((tup, plan))

            if batch:
                self.sim.schedule(service, self._finish_data, batch)
                return
            # Everything dequeued was buffered for held keys: keep
            # draining (a control message may be next).
        self._busy = False

    def _finish_data(self, batch: List[tuple]) -> None:
        if self._crashed:
            # Crashed mid-service: the batch and its emissions are lost
            # (never acked, so the trees will time out and replay).
            return
        on_processed = self.acker.on_processed
        processed = self.metrics.processed
        id_key = self._id_key
        for tup, plan in batch:
            self._dispatch(plan)
            processed[id_key] += 1
            on_processed(tup.root_id, len(plan.entries))
        self._process_next()

    def _finish_control(self, msg: ControlMessage) -> None:
        if self._crashed:
            return
        self.handle_control(msg)
        self._process_next()


class SpoutExecutor(BaseExecutor):
    """Executor for spouts: credit-driven polling loop.

    Control messages are serialized with the polling loop: if a poll is
    in flight, the control message is handled right after that poll's
    emissions are dispatched, preserving channel ordering with respect
    to data.
    """

    def __init__(self, *args, max_pending: int = 256, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if max_pending < 1:
            raise SimulationError(f"max_pending must be >= 1: {max_pending}")
        self.max_pending = max_pending
        self.pending = 0
        self._in_flight = False
        self._waiting_for_ack = False
        self._stopped = False
        self._control_queue: deque = deque()
        #: failed (timed-out) emissions waiting to be replayed
        self._replay: deque = deque()
        self.replayed = 0

    def start(self) -> None:
        self.sim.schedule(0.0, self._poll)

    def deliver(self, tup: Tuple, remote: bool, src_op: str) -> None:
        raise SimulationError(f"spout {self.name} cannot receive data tuples")

    def accept_control(self, msg: ControlMessage) -> None:
        self._control_queue.append(msg)
        if not self._in_flight:
            self._drain_control()

    def _drain_control(self) -> None:
        while self._control_queue:
            self.handle_control(self._control_queue.popleft())

    # -- polling loop ------------------------------------------------------

    def _poll(self) -> None:
        """One scheduled poll drains up to ``costs.spout_batch`` source
        polls (replays first), so N emitted tuples cost one service
        event instead of N. The credit check caps the batch at the
        remaining ``max_pending`` budget; service time stays
        ``spout_service_s`` per emission, so simulated rates match the
        per-event loop."""
        if self._stopped or self._in_flight:
            return
        if self.pending >= self.max_pending:
            self._waiting_for_ack = True
            return
        costs = self.costs
        batch_limit = costs.spout_batch if costs.spout_batch > 0 else 1
        emissions: List[tuple] = []
        produced = False
        while (
            len(emissions) < batch_limit
            and self.pending + len(emissions) < self.max_pending
        ):
            if self._replay:
                emissions.append(self._replay.popleft())
                self.replayed += 1
                continue
            context = self._context()
            produced = self.operator.next_tuple(context)
            polled = context._drain()
            if not polled:
                break
            emissions.extend(polled)
        if not emissions:
            if self.operator.finished:
                if self.pending > 0:
                    # Failed tuples may still come back for replay.
                    self._waiting_for_ack = True
                else:
                    self._stopped = True
                return
            if produced:
                # Did work but emitted nothing: poll again immediately.
                self.sim.schedule(costs.spout_service_s, self._poll)
            else:
                self.sim.schedule(costs.spout_idle_retry_s, self._poll)
            return

        service = costs.spout_service_s * len(emissions)
        plans: List[EmissionPlan] = []
        register = self.acker.register
        for values in emissions:
            plan = self._plan_emissions([values], root_id=None)
            if not plan.entries:
                continue
            root_id = plan.entries[0][2].root_id
            register(
                root_id,
                self._on_ack,
                on_fail=lambda v=values: self._on_fail(v),
            )
            self.pending += 1
            service += plan.ser_cost
            plans.append(plan)
        self._in_flight = True
        self.sim.schedule(service, self._finish_poll, plans)

    def _finish_poll(self, plans: List[EmissionPlan]) -> None:
        on_processed = self.acker.on_processed
        for plan in plans:
            self._dispatch(plan)
            # The spout's virtual root tuple is now "processed", having
            # spawned len(plan) children (1 unless broadcasting).
            entries = plan.entries
            on_processed(entries[0][2].root_id, len(entries))
        self._in_flight = False
        self._drain_control()
        if not self._stopped:
            if self.pending >= self.max_pending:
                self._waiting_for_ack = True
            else:
                self._poll()

    def _on_ack(self) -> None:
        self.pending -= 1
        if self.pending < 0:
            raise SimulationError(f"{self.name} pending went negative")
        if self._waiting_for_ack and not self._stopped:
            # Wake hysteresis: once the credit window is full the
            # pipeline is ack-clocked — waking on every single ack
            # would hand each poll a budget of exactly one credit and
            # the batch below would never form. Let acks accumulate a
            # batch worth of credit before resuming. Replays wake
            # immediately (a timed-out tuple must not wait for credit
            # that may never come) and so do finished spouts (the poll
            # is what notices pending == 0 and stops the loop).
            batch_limit = self.costs.spout_batch
            wake_credit = min(
                batch_limit if batch_limit > 0 else 1, self.max_pending
            )
            if (
                self.max_pending - self.pending >= wake_credit
                or self._replay
                or self.operator.finished
            ):
                self._waiting_for_ack = False
                self._poll()

    def _on_fail(self, values: tuple) -> None:
        """The tuple tree timed out: replay it (at-least-once)."""
        self.pending -= 1
        if self.pending < 0:
            raise SimulationError(f"{self.name} pending went negative")
        self._replay.append(values)
        if not self._in_flight and not self._stopped:
            self._waiting_for_ack = False
            self._poll()

    @property
    def stopped(self) -> bool:
        return self._stopped
