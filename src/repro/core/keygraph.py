"""The bipartite key graph (Section 3.3, Figure 5).

Vertices are keys, *namespaced by the stream they route* (so the same
value used as a location key and as a hashtag key stays two distinct
vertices). An edge between two keys is weighted by the number of tuples
carrying both; a vertex's weight is the total frequency of its key —
which equals the sum of its incident edge weights, as in Figure 5.

For DAGs longer than one pair of stateful POs, pairs observed at
different operators share the middle namespace's vertices, so one joint
partition optimizes the whole chain (the generalization sketched in the
paper's conclusion).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Tuple

from repro.partitioning import Graph

#: A namespaced key: (stream name, key value).
KeyVertex = Tuple[str, Hashable]


class KeyGraph:
    """Accumulates pair counts into a partitionable weighted graph."""

    def __init__(self) -> None:
        self._vertex_weights: Dict[KeyVertex, float] = {}
        self._edges: Dict[Tuple[KeyVertex, KeyVertex], float] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_pair(
        self,
        in_stream: str,
        in_key: Hashable,
        out_stream: str,
        out_key: Hashable,
        count: float,
    ) -> None:
        """Record that ``count`` tuples were routed by ``in_key`` then
        ``out_key``."""
        if count <= 0:
            raise ValueError(f"count must be > 0, got {count}")
        u: KeyVertex = (in_stream, in_key)
        v: KeyVertex = (out_stream, out_key)
        self._vertex_weights[u] = self._vertex_weights.get(u, 0.0) + count
        self._vertex_weights[v] = self._vertex_weights.get(v, 0.0) + count
        if u > v:
            u, v = v, u
        self._edges[(u, v)] = self._edges.get((u, v), 0.0) + count

    @classmethod
    def from_stats(
        cls,
        stats: Mapping[Tuple[str, str], Iterable],
    ) -> "KeyGraph":
        """Build from collected statistics.

        ``stats`` maps ``(in_stream, out_stream)`` to an iterable of
        pair estimates: either ``ItemEstimate`` objects whose item is
        ``(in_key, out_key)``, or plain ``((in_key, out_key), count)``
        tuples.
        """
        graph = cls()
        for (in_stream, out_stream), estimates in stats.items():
            for estimate in estimates:
                if hasattr(estimate, "item"):
                    (in_key, out_key), count = estimate.item, estimate.count
                else:
                    (in_key, out_key), count = estimate
                if count > 0:
                    graph.add_pair(
                        in_stream, in_key, out_stream, out_key, count
                    )
        return graph

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self._vertex_weights)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def total_pair_weight(self) -> float:
        return sum(self._edges.values())

    def streams(self) -> List[str]:
        """Stream namespaces present, sorted."""
        return sorted({stream for stream, _ in self._vertex_weights})

    def vertex_weight(self, stream: str, key: Hashable) -> float:
        return self._vertex_weights.get((stream, key), 0.0)

    def stream_weights(self, stream: str) -> Dict[Hashable, float]:
        """key → total frequency for one stream namespace (the per-key
        traffic view hybrid planning ranks heavy hitters by)."""
        return {
            key: weight
            for (name, key), weight in self._vertex_weights.items()
            if name == stream
        }

    def pair_weight(
        self,
        in_stream: str,
        in_key: Hashable,
        out_stream: str,
        out_key: Hashable,
    ) -> float:
        u: KeyVertex = (in_stream, in_key)
        v: KeyVertex = (out_stream, out_key)
        if u > v:
            u, v = v, u
        return self._edges.get((u, v), 0.0)

    def edges(self) -> Iterable[Tuple[KeyVertex, KeyVertex, float]]:
        for (u, v), weight in self._edges.items():
            yield u, v, weight

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------

    def top_edges(self, limit: int) -> "KeyGraph":
        """A copy keeping only the ``limit`` heaviest pairs — models the
        bounded statistics budget of Fig. 12."""
        if limit < 0:
            raise ValueError(f"limit must be >= 0, got {limit}")
        truncated = KeyGraph()
        ranked = sorted(
            self._edges.items(), key=lambda kv: kv[1], reverse=True
        )
        for (u, v), weight in ranked[:limit]:
            truncated.add_pair(u[0], u[1], v[0], v[1], weight)
        return truncated

    def to_partition_graph(self) -> Tuple[Graph, List[KeyVertex]]:
        """Materialize as a partitioner graph.

        Returns the graph and the vertex-id → key-vertex mapping.
        """
        vertices = sorted(self._vertex_weights)
        index = {vertex: i for i, vertex in enumerate(vertices)}
        graph = Graph(
            len(vertices),
            [self._vertex_weights[vertex] for vertex in vertices],
        )
        for (u, v), weight in self._edges.items():
            graph.add_edge(index[u], index[v], weight)
        return graph, vertices

    def __repr__(self) -> str:
        return (
            f"KeyGraph(vertices={self.num_vertices}, edges={self.num_edges})"
        )
