"""Campaign file schema: loading and strict validation."""

import json

import pytest

from repro.campaign.config import (
    CampaignError,
    load_campaign,
    validate,
)

GOOD = {
    "campaign": "demo",
    "runner": "episode",
    "matrix": {"hybrid": [False, True], "faults": [False, True]},
    "defaults": {"parallelism": 3},
    "seeds": [7, 8],
    "timeout_s": 30,
    "baseline": "baselines/demo.json",
    "axes": {"locality": "higher"},
}


def _bad(**overrides):
    data = {**{k: v for k, v in GOOD.items()}, **overrides}
    for key, value in list(data.items()):
        if value is _DEL:
            del data[key]
    return data


_DEL = object()


def test_good_campaign_validates():
    config = validate(GOOD, "demo.yaml")
    assert config.name == "demo"
    assert config.runner == "episode"
    assert config.cells_per_seed == 4
    assert config.seeds == [7, 8]
    assert config.tolerance == 0.20
    assert config.axes == {"locality": "higher"}


@pytest.mark.parametrize(
    "overrides, fragment",
    [
        ({"campaign": _DEL}, "missing required key 'campaign'"),
        ({"runner": _DEL}, "missing required key 'runner'"),
        ({"matrix": _DEL}, "missing required key 'matrix'"),
        ({"campaign": "bad name"}, "slug"),
        ({"runner": "teleport"}, "unknown runner"),
        ({"matrix": {}}, "non-empty mapping"),
        ({"matrix": {"hybrid": []}}, "at least one value"),
        ({"matrix": {"hybrid": [[1, 2]]}}, "non-scalar"),
        ({"matrix": {"hybrid": [True, True]}}, "repeats a value"),
        ({"matrix": {"bad axis": [1]}}, "not an identifier"),
        ({"defaults": {"hybrid": True}}, "both 'defaults' and 'matrix'"),
        ({"seeds": []}, "non-empty list of ints"),
        ({"seeds": [1.5]}, "non-empty list of ints"),
        ({"seeds": [True]}, "non-empty list of ints"),
        ({"seeds": [3, 3]}, "repeats a seed"),
        ({"timeout_s": 0}, "'timeout_s' must be > 0"),
        ({"workers": -1}, "'workers' must be an int >= 0"),
        ({"tolerance": -0.1}, "'tolerance' must be >= 0"),
        ({"axes": {"locality": "sideways"}}, "'higher' or 'lower'"),
        ({"surprise": 1}, "unknown key"),
    ],
)
def test_bad_campaigns_fail_with_named_key(overrides, fragment):
    with pytest.raises(CampaignError) as excinfo:
        validate(_bad(**overrides), "demo.yaml")
    assert fragment in str(excinfo.value)


def test_non_mapping_campaign_fails():
    with pytest.raises(CampaignError):
        validate(["not", "a", "mapping"], "demo.yaml")


def test_load_json_campaign(tmp_path):
    path = tmp_path / "demo.json"
    path.write_text(json.dumps(GOOD))
    config = load_campaign(str(path))
    assert config.name == "demo"
    assert config.source == str(path)
    # baseline resolves relative to the campaign file
    assert config.baseline_path() == str(tmp_path / "baselines" / "demo.json")


def test_load_yaml_campaign(tmp_path):
    yaml = pytest.importorskip("yaml")
    path = tmp_path / "demo.yaml"
    path.write_text(yaml.safe_dump(GOOD))
    config = load_campaign(str(path))
    assert config.name == "demo"
    assert config.matrix == GOOD["matrix"]


def test_load_missing_file_is_a_campaign_error(tmp_path):
    with pytest.raises(CampaignError, match="no such campaign"):
        load_campaign(str(tmp_path / "absent.yaml"))


def test_committed_campaigns_validate():
    """Every campaign shipped under campaigns/ must load cleanly."""
    import glob
    import os

    repo = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    paths = sorted(glob.glob(os.path.join(repo, "campaigns", "*.yaml")))
    assert paths, "no committed campaigns found"
    pytest.importorskip("yaml")
    for path in paths:
        config = load_campaign(path)
        assert config.cells_per_seed >= 2, path
