"""Cross-backend equivalence: the gate on the vectorized fast path.

Three workload families, each run on both backends from identical
finite inputs:

- **fig13-quick** (Flickr two-stage counting): per-key totals, key
  placements and received counts must match *exactly*; locality and
  balance identically (deterministic routing end to end);
- **skew** (table / hash / hybrid policies): table and hash are exact;
  hybrid relaxes placements to member-set containment (the d-choices
  pick is load-dependent) while totals stay exact;
- **rescale**: a real DES ``Manager.rescale`` episode vs the same
  final decision replayed as a scripted ``ReconfigureAction`` — per-key
  totals exact and every key on its ``owner_of`` placement under the
  final table.

Plus the seam-inertness check: running the DES through the reference
adapter must not change same-seed event fingerprints.
"""

import random

import pytest

from repro.core import Manager, ManagerConfig
from repro.engine import (
    Cluster,
    CountBolt,
    Simulator,
    TableFieldsGrouping,
    TopologyBuilder,
    deploy,
)
from repro.engine.backends import (
    BackendOptions,
    ReconfigureAction,
    available_backends,
    run_topology,
)
from repro.engine.operators import IteratorSpout
from repro.testing import (
    compare_backends,
    reference_fingerprint_unchanged,
    run_equivalence,
)
from repro.workloads.flickr import FlickrWorkload
from repro.workloads.skew import SkewConfig, SkewWorkload


def test_both_backends_registered():
    assert {"reference", "vectorized"} <= set(available_backends())


class TestFig13Quick:
    @pytest.mark.parametrize("padding", [0, 4000])
    def test_flickr_pipeline_equivalent(self, padding):
        workload = FlickrWorkload()
        report, ref, vec = run_equivalence(
            lambda: workload.topology(
                parallelism=4, padding=padding, tuples_per_instance=400
            ),
            locality_tol=1e-9,  # deterministic: must match exactly
            balance_tol=1e-9,
        )
        assert report.ok, report.summary()
        assert ref.per_key_totals["A"] == vec.per_key_totals["A"]
        assert ref.per_key_totals["B"] == vec.per_key_totals["B"]
        assert ref.tuples_emitted == vec.tuples_emitted > 0

    def test_batch_size_does_not_change_results(self):
        workload = FlickrWorkload()
        make = lambda: workload.topology(
            parallelism=3, padding=0, tuples_per_instance=300
        )
        small = run_topology(
            make(), "vectorized", BackendOptions(batch_size=7)
        )
        large = run_topology(
            make(), "vectorized", BackendOptions(batch_size=4096)
        )
        assert small.per_key_totals == large.per_key_totals
        assert small.key_instances == large.key_instances
        assert small.received == large.received


class TestSkewPolicies:
    @pytest.mark.parametrize("policy", ["table", "hash"])
    def test_deterministic_policies_exact(self, policy):
        report, _, _ = run_equivalence(
            lambda: SkewWorkload(
                SkewConfig(parallelism=4, tuples_per_instance=1500)
            ).topology(policy),
            locality_tol=1e-9,
            balance_tol=1e-9,
        )
        assert report.ok, report.summary()

    def test_hybrid_totals_exact_placements_contained(self):
        config = SkewConfig(parallelism=4, tuples_per_instance=1500)
        report, ref, vec = run_equivalence(
            lambda: SkewWorkload(config).topology("hybrid"),
            exact_placements=False,
            exact_received=False,
            locality_tol=0.05,
            balance_tol=0.15,
        )
        assert report.ok, report.summary()
        # split keys: totals exact, every holder inside the split set
        split = SkewWorkload(config).split_set()
        for key, members in split.items():
            assert ref.per_key_totals["A"][key] == (
                vec.per_key_totals["A"][key]
            )
            assert set(vec.key_instances["A"][key]) <= set(members)
        # tail keys (never split) must place identically
        for key, where in ref.key_instances["A"].items():
            if key not in split:
                assert vec.key_instances["A"][key] == where


SPOUTS = 3
PER_SPOUT = 3000


def _rescale_source(ctx):
    rng = random.Random(ctx.instance_index)
    for _ in range(PER_SPOUT):
        a = rng.randrange(12)
        yield (a, a + 100)


def _rescale_topology(bolts):
    builder = TopologyBuilder()
    builder.spout(
        "S", lambda: IteratorSpout(_rescale_source), parallelism=SPOUTS
    )
    builder.bolt(
        "A",
        lambda: CountBolt(0, forward=True),
        parallelism=bolts,
        inputs={"S": TableFieldsGrouping(0)},
    )
    builder.bolt(
        "B",
        lambda: CountBolt(1, forward=False),
        parallelism=bolts,
        inputs={"A": TableFieldsGrouping(1)},
    )
    return builder.build()


class TestRescaleEpisode:
    def test_scripted_rescale_matches_des_episode(self):
        # DES side: a real mid-run rescale 2 -> 4 driven by the manager
        sim = Simulator()
        cluster = Cluster(sim, 4)
        deployment = deploy(sim, cluster, _rescale_topology(2))
        manager = Manager(deployment, ManagerConfig(period_s=None))
        done = []

        def kick():
            if not manager.rescale(4, on_complete=done.append):
                sim.schedule(0.01, kick)

        sim.schedule(0.02, kick)
        deployment.start()
        sim.run()
        assert done, "rescale round never completed"
        assert manager.tier_parallelism == 4

        # replay the DES's *final decision* as scripted actions
        table_sa = deployment.executors["S"][0].table_router("S->A")
        table_ab = deployment.executors["A"][0].table_router("A->B")
        ref = run_topology(
            _rescale_topology(2),
            "reference",
            BackendOptions(num_servers=4, on_deployed=_attach_rescale),
        )
        vec = run_topology(
            _rescale_topology(2),
            "vectorized",
            BackendOptions(
                num_servers=4,
                actions=[
                    ReconfigureAction(
                        PER_SPOUT, "S->A", table_sa.table, 4
                    ),
                    ReconfigureAction(
                        PER_SPOUT, "A->B", table_ab.table, 4
                    ),
                ],
            ),
        )
        report = compare_backends(
            ref,
            vec,
            exact_received=False,  # pre/post-swap split differs
            locality_tol=1.0,  # locality is epoch-weighting dependent
            balance_tol=1.0,
        )
        assert report.ok, report.summary()
        # given the same final decision: same totals, same placements
        assert ref.per_key_totals == vec.per_key_totals
        assert ref.key_instances == vec.key_instances


def _attach_rescale(deployment):
    sim = deployment.sim
    manager = Manager(deployment, ManagerConfig(period_s=None))
    done = []

    def kick():
        if not manager.rescale(4, on_complete=done.append):
            sim.schedule(0.01, kick)

    sim.schedule(0.02, kick)


class TestSeamInertness:
    def test_reference_fingerprint_unchanged_by_adapter(self):
        workload = FlickrWorkload()
        violation = reference_fingerprint_unchanged(
            lambda: workload.topology(
                parallelism=3, padding=0, tuples_per_instance=200
            )
        )
        assert violation is None, violation


class TestViolationDetection:
    """The comparator must actually catch divergence, not just pass."""

    def _results(self):
        workload = FlickrWorkload()
        return run_equivalence(
            lambda: workload.topology(
                parallelism=3, padding=0, tuples_per_instance=200
            )
        )

    def test_perturbed_totals_flagged(self):
        _, ref, vec = self._results()
        key = next(iter(vec.per_key_totals["A"]))
        vec.per_key_totals["A"][key] += 1
        report = compare_backends(ref, vec)
        assert any(
            v.invariant == "per_key_totals" for v in report.violations
        )

    def test_perturbed_placement_flagged(self):
        _, ref, vec = self._results()
        key = next(iter(vec.key_instances["A"]))
        vec.key_instances["A"][key] = (99,)
        report = compare_backends(ref, vec)
        assert any(
            v.invariant == "key_placements" for v in report.violations
        )

    def test_perturbed_locality_flagged(self):
        _, ref, vec = self._results()
        vec.locality = ref.locality + 0.5
        report = compare_backends(
            ref, vec, exact_received=True, locality_tol=0.02
        )
        assert any(v.invariant == "locality" for v in report.violations)
