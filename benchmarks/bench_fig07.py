"""Figure 7: throughput vs parallelism for three routing policies,
at locality ∈ {60, 100}% and padding ∈ {0, 8 kB, 20 kB}.

Paper claims asserted:
- locality-aware clearly outperforms hash-based and worst-case;
- only locality-aware scales (near-)linearly beyond parallelism 2;
- at 100% locality, padding has no effect on locality-aware;
- even at padding 0, remote routing costs ~20%.
"""

import pytest

from helpers import pivot, save_table
from repro.analysis.experiments import fig7
from repro.analysis.report import format_table


@pytest.fixture(scope="module")
def rows(quick):
    return fig7(quick=quick)


def test_fig7_regenerate(rows, benchmark):
    benchmark.pedantic(
        lambda: fig7(parallelisms=(2,), localities=(0.6,), paddings=(0,)),
        rounds=1,
        iterations=1,
    )
    table = format_table(rows, columns=[
        "locality", "padding", "policy", "parallelism", "throughput",
    ], title="Figure 7: throughput (tuples/s)")
    print()
    print(table)
    save_table("fig07", table)


def test_fig7_locality_aware_wins(rows):
    series = {}
    for row in rows:
        key = (row["locality"], row["padding"], row["parallelism"])
        series.setdefault(key, {})[row["policy"]] = row["throughput"]
    for (locality, padding, parallelism), per_policy in series.items():
        if parallelism < 2:
            continue
        assert per_policy["locality-aware"] >= per_policy["hash-based"], (
            locality, padding, parallelism,
        )
        assert per_policy["locality-aware"] > per_policy["worst-case"]


def test_fig7_only_locality_aware_scales_linearly(rows):
    by_policy = pivot(
        [r for r in rows if r["locality"] == 1.0 and r["padding"] == 20000],
        "policy", "parallelism", "throughput",
    )
    la = by_policy["locality-aware"]
    parallelisms = sorted(la)
    n_max = parallelisms[-1]
    # Locality-aware: near-linear speedup at max parallelism.
    assert la[n_max] > 0.9 * n_max * la[1] if 1 in la else True
    # Hash-based saturates well below linear at 20 kB tuples.
    hash_series = by_policy["hash-based"]
    base = hash_series.get(1, hash_series[min(hash_series)])
    assert hash_series[n_max] < 0.55 * n_max * base


def test_fig7_padding_irrelevant_at_full_locality(rows):
    la = [
        r for r in rows
        if r["policy"] == "locality-aware" and r["locality"] == 1.0
    ]
    by_parallelism = pivot(la, "parallelism", "padding", "throughput")
    for parallelism, per_padding in by_parallelism.items():
        values = list(per_padding.values())
        assert max(values) / min(values) < 1.02, parallelism


def test_fig7_remote_penalty_exists_even_at_padding_zero(rows):
    zero_pad = [
        r for r in rows
        if r["padding"] == 0 and r["locality"] == 1.0
        and r["parallelism"] == max(x["parallelism"] for x in rows)
    ]
    per_policy = {r["policy"]: r["throughput"] for r in zero_pad}
    penalty = 1 - per_policy["worst-case"] / per_policy["locality-aware"]
    assert penalty > 0.10  # paper: ~22%
