"""The Manager: statistics collection, planning, and orchestration.

The manager runs alongside the application (Section 3.3). Periodically
(or on demand) it executes one reconfiguration *round*:

1. collect pair statistics from every instrumented POI;
2. build the bipartite key graph and partition it across servers;
3. derive routing tables and migration lists
   (:func:`repro.core.assignment.plan_reconfiguration`);
4. drive Algorithm 1 through the
   :class:`~repro.core.reconfiguration.ReconfigurationAgent` attached
   to every executor.

Manager↔POI RPCs are modeled with a fixed control-plane latency; the
in-band steps (PROPAGATE/MIGRATE) go through the data channels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.assignment import (
    DEFAULT_IMBALANCE,
    ReconfigurationPlan,
    RoutedStream,
    plan_reconfiguration,
)
from repro.core.instrumentation import PairTracker
from repro.core.keygraph import KeyGraph
from repro.core.reconfiguration import (
    PROPAGATE,
    PoiReconfiguration,
    ReconfigurationAgent,
    install_agents,
)
from repro.core.routing_table import RoutingTable
from repro.engine.executor import ControlMessage, SpoutExecutor
from repro.engine.grouping import TableFieldsGrouping
from repro.engine.operators import StatefulBolt
from repro.errors import ReconfigurationError
from repro.observability.sink import NULL_SINK
from repro.observability.trace import Tracer
from repro.spacesaving import SpaceSaving


@dataclass
class ManagerConfig:
    """Tunables of the manager."""

    #: Reconfigure every this many simulated seconds; None = manual only.
    period_s: Optional[float] = None
    #: Balance constraint α passed to the partitioner.
    imbalance: float = DEFAULT_IMBALANCE
    #: SpaceSaving capacity per instrumented (in, out) stream pair.
    sketch_capacity: int = 4096
    #: Keep only this many heaviest pairs when partitioning (Fig. 12).
    max_edges: Optional[int] = None
    #: One-way latency of manager <-> POI control RPCs.
    rpc_latency_s: float = 1.0e-3
    #: Abort a round that has not completed within this many simulated
    #: seconds (lost/late control messages otherwise wedge the round
    #: forever); None disables the deadline.
    round_timeout_s: Optional[float] = None
    #: Seed for the partitioner.
    seed: int = 0
    #: Statistics collector factory (swap in ExactCounter for offline).
    sketch_factory: Callable[[int], object] = SpaceSaving
    #: Optional benefit estimator (core.estimator): when set, a planned
    #: reconfiguration is only deployed if its projected benefit covers
    #: the migration cost (the paper's future-work extension).
    estimator: Optional[object] = None


@dataclass
class RoundRecord:
    """Bookkeeping of one reconfiguration round (for tests/benches)."""

    round_id: int
    started_at: float
    tables_sent_at: Optional[float] = None
    completed_at: Optional[float] = None
    plan: Optional[ReconfigurationPlan] = None
    collected_pairs: int = 0
    skipped: bool = False
    #: set when an estimator vetoed deployment ("not worthwhile")
    vetoed: bool = False
    #: the estimator's Estimate, when an estimator is configured
    estimate: Optional[object] = None
    #: set when the round deadline expired before completion
    aborted: bool = False
    aborted_at: Optional[float] = None
    abort_reason: str = ""
    #: the key graph this round partitioned (None for skipped rounds);
    #: kept so invariant checkers can audit the balance constraint
    keygraph: Optional[object] = field(default=None, repr=False)

    @property
    def duration_s(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.started_at


class Manager:
    """Coordinator of locality-aware routing for one deployment."""

    def __init__(self, deployment, config: Optional[ManagerConfig] = None):
        self.deployment = deployment
        self.config = config or ManagerConfig()
        self.sim = deployment.sim
        self.rounds: List[RoundRecord] = []
        self.current_tables: Dict[str, RoutingTable] = {}
        self._agents: Dict[Tuple[str, int], ReconfigurationAgent] = {}
        self._instrumented: List = []
        self._routed_streams: List[RoutedStream] = []
        self._round_active = False
        self._round_id = 0
        self._collect_outstanding = 0
        self._ack_outstanding = 0
        self._complete_outstanding = 0
        self._stats: Dict = {}
        self._on_round_complete: Optional[Callable] = None
        self._stopped = False
        self._timer = None
        self._deadline = None
        self._tables_before_round: Dict[str, RoutingTable] = {}
        self._streams_by_name: Dict[str, RoutedStream] = {}
        #: late RPC/completion callbacks ignored because their round
        #: was aborted or superseded (telemetry)
        self.stale_callbacks = 0
        #: observers called with the RoundRecord every time a round
        #: finishes (completed, aborted, skipped or vetoed) — the seam
        #: repro.testing's invariant checkers hook
        self.round_observers: List[Callable[[RoundRecord], None]] = []
        #: tracer for per-round span trees; a no-op until
        #: :meth:`set_telemetry` swaps in a real sink
        self._tracer = Tracer(lambda: self.sim.now, NULL_SINK)
        #: live spans of the in-flight round, by phase name
        self._round_spans: Dict[str, object] = {}
        self._propagated_outstanding = 0
        self._install()
        registry = self.deployment.metrics.registry
        registry.register_callback(
            "reconf_rounds_completed", lambda: len(self.completed_rounds)
        )
        registry.register_callback(
            "reconf_rounds_aborted", lambda: len(self.aborted_rounds)
        )
        registry.register_callback(
            "reconf_stale_callbacks", lambda: self.stale_callbacks
        )

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------

    def _install(self) -> None:
        topology = self.deployment.topology
        routed = [
            stream
            for stream in topology.streams
            if isinstance(stream.grouping, TableFieldsGrouping)
        ]
        if not routed:
            raise ReconfigurationError(
                "no TableFieldsGrouping streams to manage; use "
                "TableFieldsGrouping on the fields-grouped streams"
            )
        for stream in routed:
            instances = self.deployment.instances(stream.dst)
            stateful = all(
                isinstance(e.operator, StatefulBolt) for e in instances
            )
            self._routed_streams.append(
                RoutedStream(
                    name=stream.name,
                    src_op=stream.src,
                    dst_op=stream.dst,
                    dst_placements=self.deployment.placement_of(stream.dst),
                    stateful_dst=stateful,
                )
            )
        self._streams_by_name = {s.name: s for s in self._routed_streams}
        # A stateful operator's keys live in exactly one namespace, so
        # it must have at most one table-routed input stream.
        routed_inputs: Dict[str, int] = {}
        for stream in routed:
            routed_inputs[stream.dst] = routed_inputs.get(stream.dst, 0) + 1
        for op, count in routed_inputs.items():
            if count > 1:
                raise ReconfigurationError(
                    f"operator {op!r} has {count} table-routed inputs; "
                    f"at most one is supported"
                )

        # Instrument operators observing key pairs: keyed input and a
        # table-routed output.
        routed_names = {s.name for s in routed}
        for op in topology.operators.values():
            has_keyed_input = any(
                getattr(s.grouping, "key_fn", None) is not None
                for s in topology.inputs_of(op.name)
            )
            has_routed_output = any(
                s.name in routed_names for s in topology.outputs_of(op.name)
            )
            if has_keyed_input and has_routed_output:
                for executor in self.deployment.instances(op.name):
                    executor.instrumentation = PairTracker(
                        op.name,
                        capacity=self.config.sketch_capacity,
                        sketch_factory=self.config.sketch_factory,
                    )
                    self._instrumented.append(executor)
        if not self._instrumented:
            raise ReconfigurationError(
                "no operator observes key pairs (needs a keyed input "
                "and a table-routed output)"
            )
        self._agents = install_agents(self.deployment, self)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def set_telemetry(self, telemetry) -> None:
        """Adopt a :class:`~repro.observability.Telemetry`: rounds emit
        their span tree (STATS_COLLECT → PARTITION → PROPAGATE →
        MIGRATE, closed by a COMMIT/ABORT/SKIP/VETO event) into its
        sink. Usually called through
        :func:`repro.observability.attach_telemetry`."""
        self._tracer = telemetry.tracer

    def start(self) -> None:
        """Arm periodic reconfiguration (config.period_s).

        Idempotent: calling start() on a running manager re-arms the
        single periodic timer instead of stacking a second one.
        """
        if self.config.period_s is None:
            raise ReconfigurationError(
                "ManagerConfig.period_s is None; call reconfigure() manually"
            )
        self._stopped = False
        if self._timer is not None:
            self._timer.cancel()
        self._timer = self.sim.schedule(
            self.config.period_s, self._periodic_tick
        )

    def stop(self) -> None:
        """Disarm periodic reconfiguration (in-flight rounds finish)."""
        self._stopped = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def reconfigure(self, on_complete: Optional[Callable] = None) -> bool:
        """Begin one asynchronous reconfiguration round.

        Returns False (and does nothing) when a round is already in
        flight. ``on_complete(record)`` fires when the round finishes.
        """
        if self._round_active:
            return False
        self._round_active = True
        self._round_id += 1
        round_id = self._round_id
        self._on_round_complete = on_complete
        record = RoundRecord(round_id, started_at=self.sim.now)
        self.rounds.append(record)
        round_span = self._tracer.begin(
            "reconfiguration_round", round=round_id
        )
        self._round_spans = {
            "round": round_span,
            "STATS_COLLECT": self._tracer.begin(
                "STATS_COLLECT",
                parent=round_span,
                pois=len(self._instrumented),
            ),
        }
        self._stats = {}
        self._tables_before_round = dict(self.current_tables)
        self._collect_outstanding = len(self._instrumented)
        if self.config.round_timeout_s is not None:
            self._deadline = self.sim.schedule(
                self.config.round_timeout_s, self._on_round_deadline, round_id
            )
        latency = self.config.rpc_latency_s
        for executor in self._instrumented:  # step 1: GET_METRICS
            self.sim.schedule(latency, self._rpc_get_metrics, executor, round_id)
        return True

    @property
    def round_active(self) -> bool:
        return self._round_active

    @property
    def completed_rounds(self) -> List[RoundRecord]:
        return [r for r in self.rounds if r.completed_at is not None]

    @property
    def aborted_rounds(self) -> List[RoundRecord]:
        return [r for r in self.rounds if r.aborted]

    @property
    def agents(self) -> Dict[Tuple[str, int], ReconfigurationAgent]:
        """The installed per-POI protocol agents, by (op, instance)."""
        return dict(self._agents)

    @property
    def routed_streams(self) -> List[RoutedStream]:
        """The table-routed streams under management."""
        return list(self._routed_streams)

    # ------------------------------------------------------------------
    # Round internals
    # ------------------------------------------------------------------

    def _periodic_tick(self) -> None:
        if self._stopped:
            return
        self.reconfigure()
        self._timer = self.sim.schedule(
            self.config.period_s, self._periodic_tick
        )

    def _is_current(self, round_id: int) -> bool:
        """Is ``round_id`` the round currently in flight? Late
        callbacks from aborted rounds fail this and are dropped."""
        if self._round_active and round_id == self._round_id:
            return True
        self.stale_callbacks += 1
        return False

    def _rpc_get_metrics(self, executor, round_id: int) -> None:
        if not self._is_current(round_id):
            return
        agent = self._agents[(executor.op_name, executor.instance)]
        stats = agent.on_get_metrics()  # step 2: SEND_METRICS
        self.sim.schedule(
            self.config.rpc_latency_s, self._on_metrics, stats, round_id
        )

    def _on_metrics(self, stats: Dict, round_id: int) -> None:
        if not self._is_current(round_id):
            return
        for edge_pair, estimates in stats.items():
            self._stats.setdefault(edge_pair, []).extend(estimates)
        self._collect_outstanding -= 1
        if self._collect_outstanding == 0:
            self._plan_and_send()

    def _plan_and_send(self) -> None:
        record = self.rounds[-1]
        keygraph = KeyGraph.from_stats(self._stats)
        record.collected_pairs = keygraph.num_edges
        record.keygraph = keygraph
        collect_span = self._round_spans.get("STATS_COLLECT")
        if collect_span is not None:
            collect_span.end(pairs=keygraph.num_edges)
        if keygraph.num_edges == 0:
            # Nothing observed yet: skip this round.
            record.skipped = True
            self._complete_round(record)
            return

        num_servers = self._partition_size()
        partition_span = self._tracer.begin(
            "PARTITION",
            parent=self._round_spans.get("round"),
            edges=keygraph.num_edges,
            servers=num_servers,
        )
        self._round_spans["PARTITION"] = partition_span
        plan = plan_reconfiguration(
            keygraph,
            self._routed_streams,
            num_servers,
            self.current_tables,
            imbalance=self.config.imbalance,
            seed=self.config.seed + self._round_id,
            max_edges=self.config.max_edges,
        )
        record.plan = plan
        cut_weight = (
            1.0 - plan.predicted_locality
        ) * keygraph.total_pair_weight
        registry = self.deployment.metrics.registry
        registry.gauge("reconf_last_cut_weight").set(cut_weight)
        registry.gauge("reconf_last_predicted_locality").set(
            plan.predicted_locality
        )
        partition_span.end(
            predicted_locality=plan.predicted_locality,
            cut_weight=cut_weight,
            moved_keys=plan.total_moved_keys(),
            tables=len(plan.tables),
        )

        if self.config.estimator is not None:
            estimate = self.config.estimator.evaluate(
                keygraph, plan, self.current_tables, self._routed_streams
            )
            record.estimate = estimate
            if not estimate.worthwhile_with_margin(
                self.config.estimator.config.margin
            ):
                record.vetoed = True
                self._complete_round(record)
                return

        self.current_tables.update(plan.tables)
        self._send_reconfigurations(plan)

    def _partition_size(self) -> int:
        servers = set()
        for stream in self._routed_streams:
            servers.update(stream.dst_placements)
        expected = set(range(len(servers)))
        if servers != expected:
            raise ReconfigurationError(
                f"routed destinations occupy servers {sorted(servers)}; "
                f"expected contiguous 0..{len(servers) - 1}"
            )
        return len(servers)

    def _send_reconfigurations(self, plan: ReconfigurationPlan) -> None:
        record = self.rounds[-1]
        record.tables_sent_at = self.sim.now
        payloads = self._build_payloads(plan)
        self._ack_outstanding = len(payloads)
        self._complete_outstanding = len(payloads)
        self._propagated_outstanding = len(payloads)
        self._round_spans["PROPAGATE"] = self._tracer.begin(
            "PROPAGATE",
            parent=self._round_spans.get("round"),
            pois=len(payloads),
        )
        latency = self.config.rpc_latency_s
        for (op, instance), payload in payloads.items():  # step 3
            agent = self._agents[(op, instance)]
            self.sim.schedule(latency, self._rpc_send_reconf, agent, payload)

    def _rpc_send_reconf(self, agent, payload) -> None:
        if not self._is_current(payload.round_id):
            return
        agent.on_reconf(payload)
        self.sim.schedule(  # step 4
            self.config.rpc_latency_s, self._on_ack, payload.round_id
        )

    def _on_ack(self, round_id: int) -> None:
        if not self._is_current(round_id):
            return
        self._ack_outstanding -= 1
        if self._ack_outstanding == 0:
            self._start_propagation()

    def _start_propagation(self) -> None:
        """Step 5: PROPAGATE to the DAG roots (the spouts)."""
        latency = self.config.rpc_latency_s
        for executor in self.deployment.all_executors():
            if isinstance(executor, SpoutExecutor):
                message = ControlMessage(
                    PROPAGATE, self._round_id, sender="manager"
                )
                self.sim.schedule(
                    latency, executor.deliver_control, message
                )

    def _build_payloads(
        self, plan: ReconfigurationPlan
    ) -> Dict[Tuple[str, int], PoiReconfiguration]:
        """One PoiReconfiguration per executor (every POI participates
        in propagation, even with empty router/migration entries)."""
        topology = self.deployment.topology
        payloads: Dict[Tuple[str, int], PoiReconfiguration] = {}
        for op in topology.operators.values():
            for executor in self.deployment.instances(op.name):
                payloads[(op.name, executor.instance)] = PoiReconfiguration(
                    round_id=self._round_id
                )

        # Routing table updates go to the *source* executors of each
        # routed stream, resolved through the deployment metadata (a
        # stream's name is a label, not an address).
        for stream_name, table in plan.tables.items():
            stream = self._streams_by_name.get(stream_name)
            if stream is None:
                raise ReconfigurationError(
                    f"plan contains table for unmanaged stream "
                    f"{stream_name!r}"
                )
            src = stream.src_op
            for executor in self.deployment.instances(src):
                payloads[(src, executor.instance)].router_updates[
                    stream_name
                ] = table

        # Migration lists go to the stateful destination executors.
        for op_name, per_pair in plan.migrations.items():
            for (old_instance, new_instance), keys in per_pair.items():
                sender = payloads[(op_name, old_instance)]
                sender.send.setdefault(new_instance, []).extend(keys)
                receiver = payloads[(op_name, new_instance)]
                receiver.receive_keys.extend(keys)
                receiver.expected_migrations += 1
        return payloads

    # ------------------------------------------------------------------
    # Round completion, deadline and abort
    # ------------------------------------------------------------------

    def _complete_round(self, record: RoundRecord) -> None:
        record.completed_at = self.sim.now
        self._finish_round(record)

    def _finish_round(self, record: RoundRecord) -> None:
        self._end_round_trace(record)
        self._round_active = False
        if self._deadline is not None:
            self._deadline.cancel()
            self._deadline = None
        for observer in self.round_observers:
            observer(record)
        if self._on_round_complete is not None:
            callback, self._on_round_complete = self._on_round_complete, None
            callback(record)

    def _end_round_trace(self, record: RoundRecord) -> None:
        """Close the round's span tree with its terminal event. Spans
        already ended on the happy path ignore the extra end()."""
        spans, self._round_spans = self._round_spans, {}
        round_span = spans.get("round")
        if round_span is None:
            return
        if record.aborted:
            status, event = "aborted", "ABORT"
        elif record.vetoed:
            status, event = "vetoed", "VETO"
        elif record.skipped:
            status, event = "skipped", "SKIP"
        else:
            status, event = "committed", "COMMIT"
        for phase in ("STATS_COLLECT", "PARTITION", "PROPAGATE", "MIGRATE"):
            span = spans.get(phase)
            if span is not None:
                span.end(status=status)
        attrs = {"status": status}
        if record.abort_reason:
            attrs["reason"] = record.abort_reason
        round_span.event(event, **attrs)
        round_span.end(
            status=status, collected_pairs=record.collected_pairs
        )

    def _on_round_deadline(self, round_id: int) -> None:
        if not self._round_active or round_id != self._round_id:
            return
        self._abort_round(
            f"deadline of {self.config.round_timeout_s}s expired"
        )

    def _abort_round(self, reason: str) -> None:
        """Abort the in-flight round: discard pending reconfigurations,
        release held keys, and roll routing back to the pre-round
        tables so every not-yet-migrated key keeps its previous (or
        hash-fallback) owner. State already migrated stays where it
        landed — hash fallback plus state merging keeps per-key totals
        exact; only locality is temporarily suboptimal."""
        record = self.rounds[-1]
        record.aborted = True
        record.aborted_at = self.sim.now
        record.abort_reason = reason
        self.current_tables = dict(self._tables_before_round)
        self._push_tables(self.current_tables)
        for agent in self._agents.values():
            agent.on_abort(record.round_id)
        self.deployment.metrics.on_round_aborted()
        self._finish_round(record)

    def _push_tables(self, tables: Dict[str, RoutingTable]) -> None:
        """Force-update every source router out-of-band (abort path:
        the in-band protocol is presumed wedged)."""
        for stream in self._routed_streams:
            table = tables.get(stream.name)
            for executor in self.deployment.instances(stream.src_op):
                executor.table_router(stream.name).update_table(table)

    # ------------------------------------------------------------------
    # Agent notifications
    # ------------------------------------------------------------------

    def notify_propagated(self, agent, round_id: int) -> None:
        """A POI swapped tables and forwarded PROPAGATE. When the last
        one reports, the PROPAGATE span closes and the MIGRATE span
        opens (zero-length when no state moves)."""
        if not self._round_active or round_id != self._round_id:
            return
        self._propagated_outstanding -= 1
        if self._propagated_outstanding == 0:
            propagate_span = self._round_spans.get("PROPAGATE")
            if propagate_span is not None:
                propagate_span.end(status="propagated")
            self._round_spans["MIGRATE"] = self._tracer.begin(
                "MIGRATE",
                parent=self._round_spans.get("round"),
                pending_pois=self._complete_outstanding,
            )

    def notify_complete(self, agent, round_id: int) -> None:
        """A POI finished the round (propagated + all state received).
        Completions of aborted/superseded rounds are dropped."""
        if not self._is_current(round_id):
            return
        self._complete_outstanding -= 1
        if self._complete_outstanding == 0:
            self._complete_round(self.rounds[-1])
