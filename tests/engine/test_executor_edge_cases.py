"""Edge cases and failure injection at the executor level."""

import pytest

from repro.engine import Cluster, CountBolt, Simulator, TopologyBuilder, deploy
from repro.engine.executor import ControlMessage
from repro.engine.grouping import TableFieldsGrouping
from repro.engine.operators import IteratorSpout, PassThroughBolt
from repro.engine.tuples import make_tuple
from repro.errors import SimulationError


def _deployment(n=2, stateless_sink=False):
    def source(ctx):
        for i in range(10):
            yield (i % n, i % n)

    builder = TopologyBuilder()
    builder.spout("S", lambda: IteratorSpout(source), parallelism=n)
    builder.bolt(
        "A",
        lambda: CountBolt(0, forward=True),
        parallelism=n,
        inputs={"S": TableFieldsGrouping(0)},
    )
    sink = PassThroughBolt if stateless_sink else (
        lambda: CountBolt(1, forward=False)
    )
    builder.bolt(
        "B",
        sink,
        parallelism=n,
        inputs={"A": TableFieldsGrouping(1)},
    )
    sim = Simulator()
    cluster = Cluster(sim, n)
    return sim, deploy(sim, cluster, builder.build())


def test_spout_rejects_data_delivery():
    sim, deployment = _deployment()
    spout = deployment.executor("S", 0)
    with pytest.raises(SimulationError):
        spout.deliver(make_tuple((1,), 0), False, "X")


def test_control_without_handler_raises():
    sim, deployment = _deployment()
    bolt = deployment.executor("A", 0)
    bolt.deliver_control(ControlMessage("PROPAGATE", 1, "test"))
    with pytest.raises(SimulationError):
        sim.run()


def test_unknown_output_stream_raises():
    sim, deployment = _deployment()
    bolt = deployment.executor("A", 0)
    with pytest.raises(SimulationError):
        bolt.out_edge("A->Z")
    with pytest.raises(SimulationError):
        bolt.table_router("A->Z")


def test_table_router_lookup_requires_table_grouping():
    def source(ctx):
        return iter(())

    from repro.engine.grouping import ShuffleGrouping

    builder = TopologyBuilder()
    builder.spout("S", lambda: IteratorSpout(source), parallelism=1)
    builder.bolt(
        "B", PassThroughBolt, parallelism=1,
        inputs={"S": ShuffleGrouping()},
    )
    sim = Simulator()
    deployment = deploy(sim, Cluster(sim, 1), builder.build())
    with pytest.raises(SimulationError):
        deployment.executor("S", 0).table_router("S->B")


def test_install_state_into_stateless_bolt_raises():
    sim, deployment = _deployment(stateless_sink=True)
    sink = deployment.executor("B", 0)
    with pytest.raises(SimulationError):
        sink.install_state({"k": 1})
    # Empty installs are a no-op even on stateless operators.
    sink.install_state({})


def test_extract_state_from_stateless_returns_empty():
    sim, deployment = _deployment(stateless_sink=True)
    sink = deployment.executor("B", 0)
    assert sink.extract_state(["a", "b"]) == {}


def test_hold_and_release_replays_in_order():
    sim, deployment = _deployment()
    bolt = deployment.executor("A", 0)
    bolt.hold_keys([7])
    for i in range(3):
        tup = make_tuple((7, i), 0)
        bolt.deliver(tup, False, "S")
    sim.run()
    # Nothing processed: all buffered.
    assert bolt.operator.count(7) == 0
    assert bolt.buffered_count == 3
    assert bolt.held_keys == {7}
    bolt.release_key(7)
    sim.run()
    assert bolt.operator.count(7) == 3
    assert bolt.held_keys == set()


def test_held_keys_do_not_block_other_keys():
    sim, deployment = _deployment()
    bolt = deployment.executor("A", 0)
    bolt.hold_keys([7])
    bolt.deliver(make_tuple((7, 0), 0), False, "S")
    bolt.deliver(make_tuple((3, 0), 0), False, "S")
    sim.run()
    assert bolt.operator.count(3) == 1
    assert bolt.operator.count(7) == 0


def test_release_unheld_key_is_noop():
    sim, deployment = _deployment()
    bolt = deployment.executor("A", 0)
    bolt.release_key("ghost")
    assert bolt.held_keys == set()


def test_close_is_idempotent():
    sim, deployment = _deployment()
    bolt = deployment.executor("A", 0)
    bolt.close()
    bolt.close()


def test_executor_name_and_context():
    sim, deployment = _deployment()
    bolt = deployment.executor("A", 1)
    assert bolt.name == "A[1]"
    context = bolt.make_context()
    assert context.operator_name == "A"
    assert context.instance_index == 1
    assert context.num_instances == 2
    assert context.server_index == bolt.server.index


def test_manager_requires_contiguous_servers():
    """A routed destination set with holes is rejected."""
    from repro.core import Manager, ManagerConfig
    from repro.errors import ReconfigurationError

    def source(ctx):
        while True:
            yield (1, 2)

    builder = TopologyBuilder()
    builder.spout("S", lambda: IteratorSpout(source), parallelism=1)
    builder.bolt(
        "A", lambda: CountBolt(0), parallelism=2,
        inputs={"S": TableFieldsGrouping(0)},
    )
    builder.bolt(
        "B", lambda: CountBolt(1, forward=False), parallelism=2,
        inputs={"A": TableFieldsGrouping(1)},
    )
    sim = Simulator()
    cluster = Cluster(sim, 4)
    # Place instances on servers 1 and 3 (holes at 0 and 2).
    deployment = deploy(
        sim, cluster, builder.build(),
        placement=lambda op, i, p: 1 + 2 * (i % 2),
    )
    manager = Manager(deployment, ManagerConfig(period_s=None))
    deployment.start()
    sim.run(until=0.01)
    manager.reconfigure()
    with pytest.raises(ReconfigurationError):
        sim.run(until=0.05)
