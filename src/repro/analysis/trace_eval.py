"""Trace-driven evaluation of routing policies.

For the locality / load-balance studies (Fig. 11 and 12) the paper
measures *where tuples would be routed*, which does not require timing
a cluster. This module replays (first key, second key) pairs through
the exact routing logic the engine uses — tables with hash fallback —
and reports locality and load balance per policy.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.core.assignment import RoutedStream, compute_assignment, expected_locality
from repro.core.keygraph import KeyGraph
from repro.core.routing_table import RoutingTable
from repro.errors import WorkloadError
from repro.spacesaving import SpaceSaving

Pair = Tuple[Hashable, Hashable]


@dataclass
class EvalResult:
    """Routing quality of one policy over one trace window."""

    #: fraction of pairs whose two keys route to the same server
    locality: float
    #: max(load) / mean(load), worst over the two stateful POs
    load_balance: float
    #: per-instance tuple counts for the first and second hop
    loads_first: List[int] = field(repr=False, default_factory=list)
    loads_second: List[int] = field(repr=False, default_factory=list)
    #: fraction of pairs with at least one key missing from the tables
    unseen_fraction: float = 0.0
    pairs: int = 0


class TwoHopEvaluator:
    """Replays pairs through the two fields-grouped hops of the
    canonical application (location → hashtag, or tag → country)."""

    def __init__(
        self,
        num_servers: int,
        in_stream: str = "S->A",
        out_stream: str = "A->B",
    ) -> None:
        if num_servers < 1:
            raise WorkloadError(
                f"num_servers must be >= 1, got {num_servers}"
            )
        self.num_servers = num_servers
        placements = list(range(num_servers))
        self.first_hop = RoutedStream(
            in_stream, "S", "A", placements, stateful_dst=True
        )
        self.second_hop = RoutedStream(
            out_stream, "A", "B", placements, stateful_dst=True
        )

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(
        self,
        pairs: Iterable[Pair],
        tables: Optional[Dict[str, RoutingTable]] = None,
    ) -> EvalResult:
        """Route every pair; ``tables=None`` evaluates pure hashing."""
        table1 = (tables or {}).get(self.first_hop.name)
        table2 = (tables or {}).get(self.second_hop.name)
        loads1 = Counter()
        loads2 = Counter()
        local = 0
        unseen = 0
        total = 0
        for first_key, second_key in pairs:
            owner1 = table1.lookup(first_key) if table1 else None
            if owner1 is None:
                owner1 = self.first_hop.fallback_instance(first_key)
                missing1 = True
            else:
                missing1 = False
            owner2 = table2.lookup(second_key) if table2 else None
            if owner2 is None:
                owner2 = self.second_hop.fallback_instance(second_key)
                missing2 = True
            else:
                missing2 = False
            loads1[owner1] += 1
            loads2[owner2] += 1
            if owner1 == owner2:
                local += 1
            if tables and (missing1 or missing2):
                unseen += 1
            total += 1

        n = self.num_servers
        return EvalResult(
            locality=(local / total) if total else 1.0,
            load_balance=max(
                self._balance(loads1, total), self._balance(loads2, total)
            ),
            loads_first=[loads1.get(i, 0) for i in range(n)],
            loads_second=[loads2.get(i, 0) for i in range(n)],
            unseen_fraction=(unseen / total) if total else 0.0,
            pairs=total,
        )

    def _balance(self, loads: Counter, total: int) -> float:
        if total == 0:
            return 1.0
        mean = total / self.num_servers
        return max(loads.values()) / mean

    # ------------------------------------------------------------------
    # Planning (the manager's analysis, trace-side)
    # ------------------------------------------------------------------

    def plan_tables(
        self,
        pairs: Iterable[Pair],
        sketch_capacity: Optional[int] = None,
        max_edges: Optional[int] = None,
        imbalance: float = 1.03,
        seed: int = 0,
    ) -> Tuple[Dict[str, RoutingTable], float]:
        """Compute routing tables from observed pairs.

        ``sketch_capacity`` bounds statistics collection with
        SpaceSaving (the online collector); None counts exactly (the
        offline analysis). ``max_edges`` further truncates the key
        graph before partitioning (the Fig. 12 budget).
        """
        if sketch_capacity is not None:
            sketch = SpaceSaving(sketch_capacity)
            for pair in pairs:
                sketch.offer(pair)
            counts = {e.item: e.count for e in sketch.items()}
        else:
            counts = Counter(pairs)

        graph = KeyGraph()
        for (first_key, second_key), count in counts.items():
            graph.add_pair(
                self.first_hop.name,
                first_key,
                self.second_hop.name,
                second_key,
                count,
            )
        if max_edges is not None:
            graph = graph.top_edges(max_edges)
        assignment = compute_assignment(
            graph, self.num_servers, imbalance=imbalance, seed=seed
        )
        identity = {server: server for server in range(self.num_servers)}
        tables = {
            self.first_hop.name: assignment.table_for(
                self.first_hop.name, identity
            ),
            self.second_hop.name: assignment.table_for(
                self.second_hop.name, identity
            ),
        }
        return tables, expected_locality(graph, assignment)


MODES = ("online", "offline", "hash-based")


def weekly_series(
    week_pairs_fn,
    weeks: int,
    num_servers: int,
    mode: str,
    sketch_capacity: Optional[int] = None,
    max_edges: Optional[int] = None,
    imbalance: float = 1.03,
    seed: int = 0,
) -> List[EvalResult]:
    """The Fig. 11 experiment loop for one policy.

    ``week_pairs_fn(week)`` yields that week's (key1, key2) pairs.
    Week ``w`` is evaluated with the tables available *before* it:
    nothing at week 0; with ``online`` the tables are then recomputed
    from week ``w``'s data (reconfiguration every week); with
    ``offline`` they are computed once, from week 0; ``hash-based``
    never uses tables.
    """
    if mode not in MODES:
        raise WorkloadError(f"unknown mode {mode!r}; expected one of {MODES}")
    evaluator = TwoHopEvaluator(num_servers)
    tables: Optional[Dict[str, RoutingTable]] = None
    results: List[EvalResult] = []
    for week in range(weeks):
        pairs = list(week_pairs_fn(week))
        results.append(evaluator.evaluate(pairs, tables))
        if mode == "online" or (mode == "offline" and week == 0):
            tables, _ = evaluator.plan_tables(
                pairs,
                sketch_capacity=sketch_capacity,
                max_edges=max_edges,
                imbalance=imbalance,
                seed=seed + week,
            )
    return results
