"""Experiment drivers and evaluation harnesses.

- :mod:`~repro.analysis.trace_eval` — trace-driven evaluation of
  routing policies (locality / load balance without the engine), used
  by the Fig. 10–12 experiments.
- :mod:`~repro.analysis.experiments` — one driver per paper figure;
  also runnable as ``python -m repro.analysis.experiments <figure>``.
- :mod:`~repro.analysis.report` — plain-text table formatting.
"""

from repro.analysis.trace_eval import (
    EvalResult,
    TwoHopEvaluator,
    weekly_series,
)

__all__ = ["TwoHopEvaluator", "EvalResult", "weekly_series"]
