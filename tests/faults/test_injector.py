"""Unit tests of the fault-injection mechanics: each fault action on
the three interception hooks (executor deliveries, simulator events,
network transfers), plan validation, and telemetry."""

import pytest

from repro.engine import (
    Cluster,
    CountBolt,
    FieldsGrouping,
    Simulator,
    TopologyBuilder,
    deploy,
)
from repro.engine.executor import ControlMessage
from repro.engine.operators import IteratorSpout
from repro.errors import FaultInjectionError
from repro.faults import (
    ControlFault,
    CrashAt,
    FaultInjector,
    FaultPlan,
    LinkDelay,
    RpcFault,
)

PROPAGATE = "PROPAGATE"
MIGRATE = "MIGRATE"


def _empty_source(ctx):
    return iter(())


def _deployment(n=2, source=_empty_source):
    builder = TopologyBuilder()
    builder.spout("S", lambda: IteratorSpout(source), n)
    builder.bolt(
        "A",
        lambda: CountBolt(0, forward=False),
        parallelism=n,
        inputs={"S": FieldsGrouping(0)},
    )
    sim = Simulator()
    deployment = deploy(sim, Cluster(sim, n), builder.build())
    return sim, deployment


def _recorded(deployment):
    received = []
    sim = deployment.sim
    for executor in deployment.all_executors():
        executor.control_handler = (
            lambda msg, ex: received.append((sim.now, ex.name, msg))
        )
    return received


class TestControlFaults:
    def test_drop_consumes_matching_messages_only(self):
        sim, deployment = _deployment()
        received = _recorded(deployment)
        plan = FaultPlan(control=[ControlFault("drop", kind=PROPAGATE)])
        injector = FaultInjector(plan).attach(deployment)
        a0, a1 = deployment.instances("A")
        a0.send_control(a1, ControlMessage(PROPAGATE, 1, sender=a0.name))
        a0.send_control(a1, ControlMessage(PROPAGATE, 2, sender=a0.name))
        sim.run()
        # max_matches=1: only the first PROPAGATE was dropped.
        assert [m.payload for (_, _, m) in received] == [2]
        assert injector.injected == 1
        assert deployment.metrics.faults["drop"] == 1

    def test_delay_redelivers_later(self):
        sim, deployment = _deployment()
        received = _recorded(deployment)
        plan = FaultPlan(
            control=[ControlFault("delay", kind=PROPAGATE, delay_s=0.02)]
        )
        FaultInjector(plan).attach(deployment)
        a0, a1 = deployment.instances("A")
        a0.send_control(a1, ControlMessage(PROPAGATE, 1, sender=a0.name))
        sim.run()
        assert len(received) == 1
        assert received[0][0] >= 0.02

    def test_duplicate_delivers_twice(self):
        sim, deployment = _deployment()
        received = _recorded(deployment)
        plan = FaultPlan(control=[ControlFault("duplicate", kind=MIGRATE)])
        FaultInjector(plan).attach(deployment)
        a0, a1 = deployment.instances("A")
        a0.send_control(a1, ControlMessage(MIGRATE, "m", sender=a0.name))
        sim.run()
        assert [m.payload for (_, _, m) in received] == ["m", "m"]

    def test_reorder_swaps_with_next_message(self):
        sim, deployment = _deployment()
        received = _recorded(deployment)
        plan = FaultPlan(
            control=[ControlFault("reorder", kind=PROPAGATE, round_id=1)]
        )
        FaultInjector(plan).attach(deployment)
        a0, a1 = deployment.instances("A")
        a0.send_control(a1, ControlMessage(PROPAGATE, 1, sender=a0.name))
        a0.send_control(a1, ControlMessage(PROPAGATE, 2, sender=a0.name))
        sim.run()
        assert [m.payload for (_, _, m) in received] == [2, 1]

    def test_crash_on_control_arrival(self):
        sim, deployment = _deployment()
        _recorded(deployment)
        plan = FaultPlan(
            control=[
                ControlFault(
                    "crash", kind=PROPAGATE, dst_op="A", dst_instance=1,
                    down_s=0.01,
                )
            ]
        )
        FaultInjector(plan).attach(deployment)
        a0, a1 = deployment.instances("A")
        a0.send_control(a1, ControlMessage(PROPAGATE, 1, sender=a0.name))
        sim.run(until=0.001)
        assert a1.crashed
        sim.run()
        assert not a1.crashed  # supervisor restarted it
        assert a1.crash_count == 1
        # The message went down with the POI.
        assert deployment.metrics.dropped["A"] == 1

    def test_scheduled_crash_and_restart(self):
        sim, deployment = _deployment()
        plan = FaultPlan(crashes=[CrashAt("A", 0, at_s=0.05, down_s=0.02)])
        FaultInjector(plan).attach(deployment)
        a0 = deployment.executor("A", 0)
        sim.run(until=0.06)
        assert a0.crashed
        sim.run(until=0.1)
        assert not a0.crashed

    def test_crash_rejects_spouts(self):
        sim, deployment = _deployment()
        plan = FaultPlan(crashes=[CrashAt("S", 0, at_s=0.01)])
        with pytest.raises(FaultInjectionError):
            FaultInjector(plan).attach(deployment)


class TestLinkAndRpcFaults:
    def test_link_delay_slows_remote_control(self):
        times = []
        for extra in (None, 0.03):
            sim, deployment = _deployment()
            received = _recorded(deployment)
            if extra is not None:
                plan = FaultPlan(links=[LinkDelay(extra_s=extra)])
                FaultInjector(plan).attach(deployment)
            a0, a1 = deployment.instances("A")
            assert a0.server.index != a1.server.index
            a0.send_control(a1, ControlMessage(PROPAGATE, 1, sender=a0.name))
            sim.run()
            times.append(received[0][0])
        assert times[1] >= times[0] + 0.03

    def test_link_delay_control_only_leaves_data_alone(self):
        sim, deployment = _deployment(
            source=lambda ctx: iter((k,) for k in range(200))
        )
        plan = FaultPlan(links=[LinkDelay(extra_s=0.5, control_only=True)])
        injector = FaultInjector(plan).attach(deployment)
        deployment.start()
        sim.run()
        # Data crossed servers, but a control-only link rule ignores it.
        assert deployment.metrics.streams["S->A"].remote_tuples > 0
        assert injector.injected == 0

    def test_rpc_faults_require_manager(self):
        sim, deployment = _deployment()
        plan = FaultPlan(rpcs=[RpcFault("drop", step="SEND_METRICS")])
        with pytest.raises(FaultInjectionError):
            FaultInjector(plan).attach(deployment)


class TestPlanValidation:
    def test_unknown_control_action(self):
        with pytest.raises(FaultInjectionError):
            FaultInjector(FaultPlan(control=[ControlFault("explode")]))

    def test_delay_needs_positive_delay(self):
        with pytest.raises(FaultInjectionError):
            FaultInjector(FaultPlan(control=[ControlFault("delay")]))

    def test_unknown_rpc_step(self):
        with pytest.raises(FaultInjectionError):
            FaultInjector(FaultPlan(rpcs=[RpcFault("drop", step="NOPE")]))

    def test_detach_restores_hooks(self):
        sim, deployment = _deployment()
        plan = FaultPlan(
            control=[ControlFault("drop")], links=[LinkDelay(extra_s=1.0)]
        )
        injector = FaultInjector(plan).attach(deployment)
        injector.detach(deployment)
        assert all(
            e.fault_hook is None for e in deployment.all_executors()
        )
        assert deployment.cluster.network.fault_hook is None
