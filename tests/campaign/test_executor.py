"""The worker subprocess path: seeds, timeouts, crashes, bundles.

These tests go through the real ``python -m repro.campaign.worker``
subprocess, so they pin the satellite contract end to end: the cell
seed reaches the worker as PYTHONHASHSEED, a stuck cell times out
without failing the campaign, a crashed worker yields a log tail, and
a violating cell records a replayable bundle path.
"""

import os

import pytest

from repro.campaign.executor import (
    CellResult,
    run_cells,
    run_one,
    worker_env,
)
from repro.campaign.planner import CellSpec

#: small episode: finishes in well under a second per cell
QUICK = {"parallelism": 2, "keys": 8, "tuples_per_instance": 300}


def _spec(cell_id="quick,seed=7", seed=7, runner="episode", **params):
    merged = {**QUICK, **params}
    return CellSpec(
        id=cell_id, runner=runner, params=merged,
        assignment={}, seed=seed,
    )


def test_worker_env_exports_hash_seed_and_src():
    env = worker_env(42)
    assert env["PYTHONHASHSEED"] == "42"
    first = env["PYTHONPATH"].split(os.pathsep)[0]
    assert os.path.isdir(os.path.join(first, "repro"))


def test_ok_cell_records_seed_metrics_and_fingerprint(tmp_path):
    result = run_one(
        _spec(), str(tmp_path / "cells"), str(tmp_path / "bundles"),
        timeout_s=60,
    )
    assert result.status == "ok"
    # satellite 4: PYTHONHASHSEED propagated into the subprocess
    assert result.hash_seed == "7"
    assert result.fingerprint and result.fingerprint.startswith("0x")
    assert result.metrics["violations"] == 0.0
    assert result.metrics["sim_tuples_per_s"] > 0
    assert os.path.isfile(result.log_path)


def test_timeout_kills_the_cell_not_the_campaign(tmp_path):
    specs = [
        _spec("slow,seed=7", tuples_per_instance=200_000),
        _spec("fast,seed=7"),
    ]
    results = run_cells(
        specs, str(tmp_path), timeout_s=0.8, workers=1,
    )
    slow, fast = results
    assert slow.status == "timeout"
    assert "timeout" in slow.error and "killed" in slow.error
    assert slow.metrics == {}
    # the campaign carried on: the next cell still ran to completion
    assert fast.status == "ok"


def test_crashed_worker_reports_log_tail(tmp_path):
    result = run_one(
        _spec(runner="no-such-runner"),
        str(tmp_path / "cells"), str(tmp_path / "bundles"),
        timeout_s=60,
    )
    assert result.status == "crash"
    assert "without a result" in result.error
    assert "no-such-runner" in result.error  # traceback tail captured


def test_violation_writes_replayable_bundle(tmp_path):
    result = run_one(
        _spec(inject="double_migrate"),
        str(tmp_path / "cells"), str(tmp_path / "bundles"),
        timeout_s=60,
    )
    assert result.status == "violation"
    assert result.violations, "armed bug must be caught"
    assert result.bundle_path and os.path.isfile(result.bundle_path)
    assert result.bundle_path.startswith(str(tmp_path / "bundles"))
    assert result.metrics["violations"] >= 1.0


def test_results_come_back_in_plan_order(tmp_path):
    specs = [_spec(f"i={i},seed={i}", seed=i) for i in range(3)]
    results = run_cells(specs, str(tmp_path), timeout_s=60, workers=3)
    assert [r.id for r in results] == [s.id for s in specs]
    assert [r.hash_seed for r in results] == ["0", "1", "2"]


def test_cell_result_round_trips_through_dict():
    result = CellResult(
        id="a=1,seed=0", runner="episode", seed=0, status="ok",
        metrics={"x_per_s": 1.0}, fingerprint="0x0000abcd",
    )
    assert CellResult.from_dict(result.to_dict()) == result


def test_same_seed_reruns_reproduce_the_fingerprint(tmp_path):
    first = run_one(
        _spec(), str(tmp_path / "a"), str(tmp_path / "ba"), timeout_s=60,
    )
    second = run_one(
        _spec(), str(tmp_path / "b"), str(tmp_path / "bb"), timeout_s=60,
    )
    assert first.status == second.status == "ok"
    assert first.fingerprint == second.fingerprint
    assert first.metrics == second.metrics
