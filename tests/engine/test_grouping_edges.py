"""Router edge cases: zero-destination validation, resize seams,
send-counter resets, and the hybrid (split-set) router."""

import pytest

from repro.core.routing_table import RoutingTable
from repro.engine.grouping import (
    BroadcastGrouping,
    CustomGrouping,
    FieldsGrouping,
    GlobalGrouping,
    HybridTableFieldsGrouping,
    LocalOrShuffleGrouping,
    PartialKeyGrouping,
    RouterContext,
    ShuffleGrouping,
    TableFieldsGrouping,
    candidate_instances,
    stable_hash,
)
from repro.errors import RoutingError


def _context(dst_placements, src_server=0, src_instance=0, seed=7):
    return RouterContext(
        stream_name="edge-test",
        src_instance=src_instance,
        src_server=src_server,
        dst_placements=dst_placements,
        seed=seed,
    )


class _DictTable:
    """Duck-typed lookup-only table (no split set)."""

    def __init__(self, mapping):
        self._mapping = mapping

    def lookup(self, key):
        return self._mapping.get(key)


# ----------------------------------------------------------------------
# Zero destinations: every grouping must fail fast, naming the stream
# ----------------------------------------------------------------------

ALL_GROUPINGS = [
    ShuffleGrouping(),
    LocalOrShuffleGrouping(),
    FieldsGrouping(0),
    TableFieldsGrouping(0),
    HybridTableFieldsGrouping(0),
    GlobalGrouping(),
    BroadcastGrouping(),
    PartialKeyGrouping(0),
    CustomGrouping(lambda values, context: 0),
]


@pytest.mark.parametrize(
    "grouping", ALL_GROUPINGS, ids=lambda g: type(g).__name__
)
def test_zero_destinations_raises_naming_the_stream(grouping):
    with pytest.raises(RoutingError) as err:
        grouping.build_router(_context([]))
    assert "edge-test" in str(err.value)
    assert "no destination" in str(err.value)


@pytest.mark.parametrize(
    "grouping", ALL_GROUPINGS, ids=lambda g: type(g).__name__
)
def test_single_destination_routes_to_zero(grouping):
    router = grouping.build_router(_context([0]))
    assert router.select(("k",)) == [0]


# ----------------------------------------------------------------------
# Resize seams (rescale support)
# ----------------------------------------------------------------------


def test_shuffle_router_resize_stays_in_range():
    router = ShuffleGrouping().build_router(_context([0, 1, 2, 3]))
    for _ in range(5):
        router.select(("x",))
    router.resize(2)
    picks = {router.select(("x",))[0] for _ in range(8)}
    assert picks == {0, 1}
    with pytest.raises(RoutingError):
        router.resize(0)


def test_hash_router_resize_drops_cached_routes():
    router = FieldsGrouping(0).build_router(_context([0] * 5))
    before = router.select(("k",))[0]
    assert before == stable_hash("k", 7) % 5
    router.resize(3)
    # A stale cached route would repeat the %5 destination.
    assert router.select(("k",))[0] == stable_hash("k", 7) % 3
    with pytest.raises(RoutingError):
        router.resize(0)


def test_table_router_resize_swaps_width_and_table_atomically():
    router = TableFieldsGrouping(
        0, table=RoutingTable({"k": 3})
    ).build_router(_context([0] * 4))
    assert router.select(("k",)) == [3]
    router.resize(2, RoutingTable({"k": 1}))
    assert router.select(("k",)) == [1]
    assert router.num_destinations == 2
    with pytest.raises(RoutingError):
        router.resize(0, RoutingTable())


def test_dchoices_router_resize_redimensions_and_drops_cache():
    router = PartialKeyGrouping(0, d=2).build_router(_context([0] * 6))
    for _ in range(10):
        router.select(("k",))
    router.resize(2)
    assert router.sent_counts == [0, 0]
    picks = {router.select(("k",))[0] for _ in range(10)}
    assert picks <= {0, 1}
    with pytest.raises(RoutingError):
        router.resize(0)


def test_custom_router_has_no_resize_seam():
    """CustomGrouping routers cannot survive a rescale; the protocol
    fails fast on them (see core.reconfiguration) instead of routing
    with a stale modulus. Guard the assumption that seam detection
    rests on: no silent ``resize`` appearing on the class."""
    router = CustomGrouping(lambda values, context: 0).build_router(
        _context([0, 1])
    )
    assert not hasattr(router, "resize")


# ----------------------------------------------------------------------
# d-choices send counters
# ----------------------------------------------------------------------


def test_dchoices_reset_sent_zeroes_counters():
    router = PartialKeyGrouping(0, d=2).build_router(_context([0] * 4))
    for _ in range(12):
        router.select(("hot",))
    assert sum(router.sent_counts) == 12
    router.reset_sent()
    assert router.sent_counts == [0, 0, 0, 0]


def test_dchoices_spreads_a_single_key_over_its_candidates():
    context = _context([0] * 8)
    router = PartialKeyGrouping(0, d=3).build_router(context)
    candidates = set(candidate_instances("hot", context.seed, 8, 3))
    picks = [router.select(("hot",))[0] for _ in range(30)]
    assert set(picks) == candidates
    counts = router.sent_counts
    used = [counts[i] for i in candidates]
    assert max(used) - min(used) <= 1  # least-loaded keeps them level


def test_partial_key_grouping_rejects_d_below_two():
    with pytest.raises(RoutingError):
        PartialKeyGrouping(0, d=1)


def test_candidate_instances_first_choice_matches_hash_routing():
    """Candidate 0 is the plain hash destination, so d-choices is a
    strict generalization of fields grouping."""
    for key in ("a", "b", 17, None):
        assert (
            candidate_instances(key, 7, 5, 3)[0] == stable_hash(key, 7) % 5
        )


# ----------------------------------------------------------------------
# Hybrid router: split-set handling
# ----------------------------------------------------------------------


def _hybrid(table, n=3):
    return HybridTableFieldsGrouping(0, table=table).build_router(
        _context([0] * n)
    )


def test_hybrid_split_key_alternates_over_members():
    router = _hybrid(RoutingTable({}, {"hot": (0, 1)}))
    picks = [router.select(("hot",))[0] for _ in range(6)]
    assert picks == [0, 1, 0, 1, 0, 1]
    assert router.split_routes == 6
    assert router.sent_counts == [3, 3, 0]


def test_hybrid_split_choice_accounts_for_tail_load():
    router = _hybrid(RoutingTable({"t": 0}, {"hot": (0, 1)}))
    for _ in range(5):
        assert router.select(("t",)) == [0]
    # Member 0 already carries 5 tail tuples: the hot key should lean
    # on member 1 until the loads level out.
    picks = [router.select(("hot",))[0] for _ in range(4)]
    assert picks == [1, 1, 1, 1]
    assert router.sent_counts == [5, 4, 0]


def test_hybrid_split_members_filtered_to_range():
    router = _hybrid(RoutingTable({}, {"hot": (1, 9)}))
    assert router.select(("hot",)) == [1]
    with pytest.raises(RoutingError):
        _hybrid(RoutingTable({}, {"hot": (7, 9)})).select(("hot",))


def test_hybrid_tail_keys_route_like_table_router():
    router = _hybrid(RoutingTable({"t": 2}, {"hot": (0, 1)}))
    assert router.select(("t",)) == [2]
    assert router.select(("t",)) == [2]
    assert router.table_hits == 2
    unknown = router.select(("u",))[0]
    assert unknown == stable_hash("u", 7) % 3
    assert router.hash_fallbacks == 1
    assert router.split_routes == 0


def test_hybrid_degrades_on_lookup_only_tables():
    """A duck-typed table without a split set must behave exactly like
    a plain TableRouter (no crash on a missing ``split`` attribute)."""
    router = _hybrid(_DictTable({"t": 1}))
    assert router.select(("t",)) == [1]
    assert router.table_hits == 1
    assert router.split_routes == 0


def test_hybrid_update_table_resets_counters_and_split_set():
    router = _hybrid(RoutingTable({}, {"hot": (0, 1)}))
    for _ in range(4):
        router.select(("hot",))
    assert sum(router.sent_counts) == 4
    router.update_table(RoutingTable({"hot": 2}))
    # Pre-swap load is forgotten and the key is no longer split.
    assert router.sent_counts == [0, 0, 0]
    assert router.select(("hot",)) == [2]
    assert router.split_routes == 4  # unchanged: telemetry, not load


def test_hybrid_resize_resets_counters_and_split_set():
    router = _hybrid(RoutingTable({}, {"hot": (0, 1)}), n=2)
    for _ in range(4):
        router.select(("hot",))
    router.resize(4, RoutingTable({}, {"hot": (2, 3)}))
    assert router.sent_counts == [0, 0, 0, 0]
    picks = {router.select(("hot",))[0] for _ in range(4)}
    assert picks == {2, 3}
