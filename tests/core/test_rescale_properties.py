"""Property-based checks for the elastic-rescaling primitives.

Two facts must hold for *any* key graph and any ``k -> k'``:

- repartitioning for the new width still respects the α balance bound
  (up to the partitioner's documented vertex-granularity slack) — the
  rescale round reuses the same partitioner, so a width change must
  not silently void the balance guarantee;
- the migration plan is exactly the owner-diff: every key whose owner
  changes appears in ``rescale_moves`` (completeness) and no key whose
  owner is unchanged does (minimality). Keys outside the routing
  tables fall back to hashing, and the properties must hold across
  that boundary too.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.elasticity import owner_of, rescale_moves
from repro.core.routing_table import RoutingTable
from repro.partitioning.graph import Graph
from repro.partitioning.kway import balance_of, partition
from repro.testing.invariants import balance_bound


# ---------------------------------------------------------------------
# strategies


@st.composite
def key_graphs(draw):
    """A small weighted key graph: hot keys, cold keys, random pair
    edges — the shape the manager's statistics collection produces."""
    n = draw(st.integers(min_value=1, max_value=40))
    weights = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0),
            min_size=n,
            max_size=n,
        )
    )
    num_edges = draw(st.integers(min_value=0, max_value=2 * n))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
                st.floats(min_value=0.1, max_value=50.0),
            ),
            min_size=num_edges,
            max_size=num_edges,
        )
    )
    graph = Graph(n, vertex_weights=weights)
    for u, v, w in edges:
        if u != v:
            graph.add_edge(u, v, w)
    return graph


# ---------------------------------------------------------------------
# balance across any k -> k'


@settings(max_examples=60, deadline=None)
@given(
    graph=key_graphs(),
    old_k=st.integers(min_value=1, max_value=6),
    new_k=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**16),
    imbalance=st.sampled_from((1.03, 1.1, 1.2)),
)
def test_repartition_for_new_width_respects_alpha(
    graph, old_k, new_k, seed, imbalance
):
    """The assignment produced for the post-rescale width k' stays
    within the α bound the invariant suite enforces on live rounds."""
    parts = partition(graph, new_k, imbalance=imbalance, seed=seed)
    assert len(parts) == graph.num_vertices
    assert all(0 <= p < new_k for p in parts)

    total = graph.total_vertex_weight
    if total <= 0:
        assert balance_of(graph, parts, new_k) == 0.0
        return
    max_vertex = max(
        graph.vertex_weight(v) for v in range(graph.num_vertices)
    )
    bound = balance_bound(total, new_k, max_vertex, imbalance)
    heaviest = balance_of(graph, parts, new_k) * (total / new_k)
    assert heaviest <= bound, (
        f"heaviest part {heaviest:.2f} above bound {bound:.2f} "
        f"for k'={new_k}, α={imbalance}"
    )


@settings(max_examples=40, deadline=None)
@given(
    graph=key_graphs(),
    nparts=st.integers(min_value=1, max_value=6),
)
def test_balance_of_matches_manual_accumulation(graph, nparts):
    parts = partition(graph, nparts, seed=1)
    ratio = balance_of(graph, parts, nparts)
    total = graph.total_vertex_weight
    if total <= 0:
        assert ratio == 0.0
        return
    weights = [0.0] * nparts
    for v, p in enumerate(parts):
        weights[p] += graph.vertex_weight(v)
    assert math.isclose(ratio, max(weights) / (total / nparts))


# ---------------------------------------------------------------------
# migration plan = exact owner diff


@settings(max_examples=80, deadline=None)
@given(data=st.data())
def test_rescale_moves_is_exactly_the_owner_diff(data):
    keys = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=200),
            min_size=1,
            max_size=60,
            unique=True,
        )
    )
    old_n = data.draw(st.integers(min_value=1, max_value=6))
    new_n = data.draw(st.integers(min_value=1, max_value=6))
    seed = data.draw(st.integers(min_value=0, max_value=2**16))

    def draw_table(n):
        if data.draw(st.booleans()):
            return None  # hash-only tier
        covered = data.draw(
            st.lists(st.sampled_from(keys), unique=True, max_size=len(keys))
        )
        return RoutingTable(
            {
                key: data.draw(st.integers(min_value=0, max_value=n - 1))
                for key in covered
            }
        )

    old_table = draw_table(old_n)
    new_table = draw_table(new_n)

    moves = rescale_moves(keys, old_table, old_n, new_table, new_n, seed)

    for key in keys:
        old_owner = owner_of(key, old_table, old_n, seed)
        new_owner = owner_of(key, new_table, new_n, seed)
        if old_owner != new_owner:
            # completeness: every owner change is in the plan
            assert moves[key] == (old_owner, new_owner)
        else:
            # minimality: unchanged keys never move
            assert key not in moves
    # the plan never mentions keys it was not asked about
    assert set(moves) <= set(keys)


@settings(max_examples=40, deadline=None)
@given(
    keys=st.lists(
        st.integers(min_value=0, max_value=100),
        min_size=1,
        max_size=40,
        unique=True,
    ),
    n=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_identity_rescale_moves_nothing(keys, n, seed):
    """Same width, same table: the migration plan must be empty."""
    table = RoutingTable({key: key % n for key in keys[: len(keys) // 2]})
    assert rescale_moves(keys, table, n, table, n, seed) == {}
    assert rescale_moves(keys, None, n, None, n, seed) == {}


@settings(max_examples=60, deadline=None)
@given(
    keys=st.lists(
        st.integers(min_value=0, max_value=100),
        min_size=1,
        max_size=40,
        unique=True,
    ),
    old_n=st.integers(min_value=1, max_value=6),
    new_n=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_owners_always_within_width(keys, old_n, new_n, seed):
    """Every owner — tabled or hash-fallback, before and after — must
    address a live instance of its width, including stale table
    entries pointing past the new width (they fall back to hashing)."""
    stale = RoutingTable({key: key % (new_n + 3) for key in keys})
    for key in keys:
        assert 0 <= owner_of(key, stale, new_n, seed) < new_n
        assert 0 <= owner_of(key, None, old_n, seed) < old_n
    moves = rescale_moves(keys, stale, old_n, stale, new_n, seed)
    for key, (old_owner, new_owner) in moves.items():
        assert 0 <= old_owner < old_n
        assert 0 <= new_owner < new_n
