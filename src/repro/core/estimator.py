"""Reconfiguration benefit estimation (paper Section 6, future work).

"When the workload is very volatile, it is important to avoid
triggering reconfigurations for ephemeral correlations, as the cost of
reconfiguring would not be amortized. As future work, we will design
estimators able to predict the impact of a reconfiguration to provide
more fine-grained information to the manager."

This module implements that estimator. Given the collected statistics,
the current tables and a candidate plan, it predicts:

- **benefit**: network bytes saved per observed tuple by the new
  assignment (locality delta × average remote tuple cost), projected
  over an amortization horizon;
- **cost**: bytes of state to migrate plus control traffic.

The manager consults :meth:`ReconfigurationEstimator.evaluate` and
skips deployment when the projected benefit does not cover the cost by
the configured margin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.assignment import ReconfigurationPlan, RoutedStream
from repro.core.keygraph import KeyGraph
from repro.core.routing_table import RoutingTable


@dataclass(frozen=True)
class EstimatorConfig:
    """Cost constants for the benefit/cost projection."""

    #: Modeled bytes per migrated key (state entry + framing).
    state_bytes_per_key: int = 64
    #: Modeled bytes of one average data tuple crossing the network.
    tuple_bytes: int = 256
    #: Tuples expected before the *next* reconfiguration (how long the
    #: new tables get to amortize the migration).
    horizon_tuples: int = 1_000_000
    #: Deploy only when benefit >= margin × cost.
    margin: float = 1.0


@dataclass
class Estimate:
    """The estimator's verdict for one candidate plan."""

    locality_before: float
    locality_after: float
    moved_keys: int
    #: projected network bytes saved over the horizon
    benefit_bytes: float
    #: migration + control bytes to pay now
    cost_bytes: float

    @property
    def locality_gain(self) -> float:
        return self.locality_after - self.locality_before

    @property
    def worthwhile(self) -> bool:
        return self.benefit_bytes >= self.cost_bytes

    def worthwhile_with_margin(self, margin: float) -> bool:
        return self.benefit_bytes >= margin * self.cost_bytes


class ReconfigurationEstimator:
    """Predicts the impact of deploying a candidate plan."""

    def __init__(self, config: EstimatorConfig = EstimatorConfig()) -> None:
        self.config = config

    # ------------------------------------------------------------------
    # Locality prediction
    # ------------------------------------------------------------------

    def predicted_locality(
        self,
        keygraph: KeyGraph,
        tables: Mapping[str, RoutingTable],
        streams: Sequence[RoutedStream],
    ) -> float:
        """Locality the statistics would see under ``tables``.

        Each observed pair is routed exactly as the engine would:
        table lookup, hash fallback otherwise.
        """
        owners = {stream.name: stream for stream in streams}
        total = 0.0
        colocated = 0.0
        for (stream_u, key_u), (stream_v, key_v), weight in keygraph.edges():
            owner_u = self._owner(tables, owners, stream_u, key_u)
            owner_v = self._owner(tables, owners, stream_v, key_v)
            total += weight
            if owner_u == owner_v:
                colocated += weight
        if total == 0.0:
            return 1.0
        return colocated / total

    def _owner(self, tables, streams, stream_name: str, key) -> int:
        table = tables.get(stream_name)
        if table is not None:
            owner = table.lookup(key)
            if owner is not None:
                return owner
        return streams[stream_name].fallback_instance(key)

    # ------------------------------------------------------------------
    # Benefit / cost
    # ------------------------------------------------------------------

    def evaluate(
        self,
        keygraph: KeyGraph,
        plan: ReconfigurationPlan,
        old_tables: Mapping[str, RoutingTable],
        streams: Sequence[RoutedStream],
    ) -> Estimate:
        """Full estimate for deploying ``plan`` over ``old_tables``."""
        config = self.config
        before = self.predicted_locality(keygraph, old_tables, streams)
        after = self.predicted_locality(keygraph, plan.tables, streams)
        moved = plan.total_moved_keys()

        # Remote traffic avoided per tuple = locality gain × one
        # network crossing of an average tuple.
        saved_per_tuple = max(0.0, after - before) * config.tuple_bytes
        benefit = saved_per_tuple * config.horizon_tuples
        cost = moved * config.state_bytes_per_key
        return Estimate(
            locality_before=before,
            locality_after=after,
            moved_keys=moved,
            benefit_bytes=benefit,
            cost_bytes=float(cost),
        )

    def should_deploy(
        self,
        keygraph: KeyGraph,
        plan: ReconfigurationPlan,
        old_tables: Mapping[str, RoutingTable],
        streams: Sequence[RoutedStream],
    ) -> bool:
        estimate = self.evaluate(keygraph, plan, old_tables, streams)
        return estimate.worthwhile_with_margin(self.config.margin)
