"""Fault tolerance: message timeouts, spout replay, crash injection.

Section 3.4: "To handle fault tolerance ... If a POI crashes, the
guarantees are the ones provided by the streaming engine and are not
impacted by state migration." These tests implement and validate that
engine-level guarantee (Storm's at-least-once with acker timeouts) and
then confirm reconfiguration composes with it.
"""

import random

import pytest

from repro.engine import (
    Bolt,
    Cluster,
    CountBolt,
    FieldsGrouping,
    Simulator,
    TableFieldsGrouping,
    TopologyBuilder,
    deploy,
)
from repro.engine.acker import Acker
from repro.engine.operators import IteratorSpout

N = 2
#: Big enough that the stream is still live when faults are injected
#: at t = 0.02 s (the pipeline sustains ~190 Ktuples/s on 2 servers).
PER_SPOUT = 6000


class RecordingSink(Bolt):
    """Remembers every sequence number it processes."""

    def __init__(self):
        self.seen = set()
        self.processed = 0

    def process(self, tup, context):
        self.seen.add(tup.values[1])
        self.processed += 1


def _build(per_spout=PER_SPOUT):
    def source(ctx):
        for i in range(per_spout):
            # (key, unique sequence number)
            yield (i % 10, ctx.instance_index * per_spout + i)

    builder = TopologyBuilder()
    builder.spout("S", lambda: IteratorSpout(source), parallelism=N)
    builder.bolt(
        "A",
        lambda: CountBolt(0, forward=True),
        parallelism=N,
        inputs={"S": FieldsGrouping(0)},
    )
    builder.bolt(
        "sink",
        RecordingSink,
        parallelism=N,
        inputs={"A": FieldsGrouping(1)},
    )
    return builder.build()


def _deploy(message_timeout_s=0.05):
    sim = Simulator()
    cluster = Cluster(sim, N)
    deployment = deploy(
        sim, cluster, _build(), message_timeout_s=message_timeout_s
    )
    return sim, deployment


class TestAckerTimeouts:
    def test_timeout_fires_on_incomplete_tree(self):
        sim = Simulator()
        acker = Acker(sim, ack_delay_s=0.0, timeout_s=1.0)
        failed = []
        acker.register(1, lambda: None, on_fail=lambda: failed.append(1))
        sim.run()
        assert failed == [1]
        assert acker.failed == 1
        assert acker.in_flight == 0

    def test_completion_cancels_timeout(self):
        sim = Simulator()
        acker = Acker(sim, ack_delay_s=0.0, timeout_s=1.0)
        outcome = []
        acker.register(
            1, lambda: outcome.append("ok"),
            on_fail=lambda: outcome.append("fail"),
        )
        acker.on_processed(1, emitted=0)
        sim.run()
        assert outcome == ["ok"]
        assert acker.failed == 0

    def test_no_timeout_without_configuration(self):
        sim = Simulator()
        acker = Acker(sim, ack_delay_s=0.0)  # timeouts disabled
        acker.register(1, lambda: None, on_fail=lambda: None)
        sim.run(until=10.0)
        assert acker.in_flight == 1


class TestCrashAndReplay:
    def test_clean_run_without_faults_is_exactly_once(self):
        sim, deployment = _deploy()
        deployment.start()
        sim.run()
        seen = set()
        for executor in deployment.instances("sink"):
            seen |= executor.operator.seen
        assert len(seen) == N * PER_SPOUT
        assert deployment.acker.failed == 0

    def test_crash_loses_nothing_thanks_to_replay(self):
        sim, deployment = _deploy()
        deployment.start()
        # Crash one middle instance mid-stream, down for a while.
        sim.schedule(0.02, deployment.executor("A", 0).crash, 0.01)
        sim.run()
        seen = set()
        processed = 0
        for executor in deployment.instances("sink"):
            seen |= executor.operator.seen
            processed += executor.operator.processed
        # At-least-once: every sequence number reached the sink...
        assert seen == set(range(N * PER_SPOUT))
        # ...some of them more than once (replays).
        assert processed >= len(seen)
        assert deployment.acker.failed > 0
        spout_replays = sum(
            spout.replayed for spout in deployment.spout_executors()
        )
        assert spout_replays == deployment.acker.failed
        assert deployment.executor("A", 0).crash_count == 1

    def test_crash_drops_state_but_flow_recovers(self):
        sim, deployment = _deploy()
        deployment.start()
        target = deployment.executor("A", 1)
        sim.schedule(0.02, target.crash, 0.005)
        sim.run()
        # The crashed instance kept processing after its restart.
        assert sum(target.operator.state.values()) > 0
        assert deployment.acker.in_flight == 0

    def test_spout_finishes_after_replays_drain(self):
        sim, deployment = _deploy()
        deployment.start()
        sim.schedule(0.02, deployment.executor("A", 0).crash, 0.01)
        sim.run()
        for spout in deployment.spout_executors():
            assert spout.stopped
            assert spout.pending == 0

    def test_crash_during_reconfiguration_round(self):
        """Reconfiguration and crashes compose: the round completes and
        the stream still delivers everything at least once."""
        from repro.core import Manager, ManagerConfig

        def source(ctx):
            rng = random.Random(ctx.instance_index)
            for i in range(4000):
                key = rng.randrange(8)
                yield (key, ctx.instance_index * 4000 + i, key + 100)

        builder = TopologyBuilder()
        builder.spout("S", lambda: IteratorSpout(source), parallelism=N)
        builder.bolt(
            "A", lambda: CountBolt(0, forward=True), parallelism=N,
            inputs={"S": TableFieldsGrouping(0)},
        )
        builder.bolt(
            "sink", RecordingSink, parallelism=N,
            inputs={"A": TableFieldsGrouping(2)},
        )
        sim = Simulator()
        deployment = deploy(
            sim, Cluster(sim, N), builder.build(), message_timeout_s=0.08
        )
        manager = Manager(deployment, ManagerConfig(period_s=0.03))
        manager.start()
        deployment.start()
        sim.schedule(0.035, deployment.executor("sink", 0).crash, 0.005)
        sim.run(until=0.3)
        manager.stop()
        sim.run()
        seen = set()
        for executor in deployment.instances("sink"):
            seen |= executor.operator.seen
        assert seen == set(range(N * 4000))
