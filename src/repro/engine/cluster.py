"""Servers and the cluster they form.

Mirrors the paper's testbed: ``n`` identical workers on a switched
network (10 Gb/s by default, optionally throttled to 1 Gb/s as in
Section 4.4), optionally spread over racks for the hierarchical
extension.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.engine.network import Network, Nic
from repro.engine.simulator import Simulator

GIGABIT = 1e9 / 8.0  # bytes per second in 1 Gb/s


class Server:
    """One physical worker machine."""

    __slots__ = ("index", "name", "rack", "nic")

    def __init__(self, index: int, rack: int, nic: Nic) -> None:
        self.index = index
        self.name = f"server{index}"
        self.rack = rack
        self.nic = nic

    def __repr__(self) -> str:
        return f"Server({self.index}, rack={self.rack})"


class Cluster:
    """A set of servers joined by a :class:`Network`.

    Parameters
    ----------
    sim:
        The simulator that owns all cluster events.
    num_servers:
        Number of worker servers (the paper uses 1–6 of its 8).
    bandwidth_gbps:
        Per-NIC bandwidth in gigabits/s; ``None`` for infinite.
    latency_s:
        One-way propagation latency between servers.
    num_racks:
        Servers are assigned to racks round-robin; racks only matter
        when ``inter_rack_latency_s`` differs from ``latency_s``.
    """

    def __init__(
        self,
        sim: Simulator,
        num_servers: int,
        bandwidth_gbps: Optional[float] = 10.0,
        latency_s: float = 50.0e-6,
        num_racks: int = 1,
        inter_rack_latency_s: Optional[float] = None,
    ) -> None:
        if num_servers < 1:
            raise ValueError(f"num_servers must be >= 1, got {num_servers}")
        if num_racks < 1:
            raise ValueError(f"num_racks must be >= 1, got {num_racks}")
        self.sim = sim
        self._num_racks = num_racks
        bandwidth = None if bandwidth_gbps is None else bandwidth_gbps * GIGABIT
        self.network = Network(
            sim,
            bandwidth,
            latency_s=latency_s,
            inter_rack_latency_s=inter_rack_latency_s,
        )
        self.servers: List[Server] = []
        for index in range(num_servers):
            self.add_server()

    @property
    def num_servers(self) -> int:
        return len(self.servers)

    def add_server(self, rack: Optional[int] = None) -> Server:
        """Provision one more server at runtime (elastic scale-out).

        The new server gets the next index, joins ``rack`` (default:
        the round-robin rack the constructor would have used), and a
        freshly attached NIC — transfers to and from it work
        immediately.
        """
        index = len(self.servers)
        server = Server(
            index,
            index % self._num_racks if rack is None else rack,
            nic=None,  # type: ignore[arg-type]
        )
        server.nic = self.network.attach(server)
        self.servers.append(server)
        return server

    def server(self, index: int) -> Server:
        return self.servers[index]

    def transfer(
        self,
        src: Server,
        dst: Server,
        nbytes: int,
        fn: Callable,
        *args: Any,
    ) -> None:
        """Send ``nbytes`` between two servers; ``fn(*args)`` on arrival."""
        self.network.transfer(src, dst, nbytes, fn, *args)

    def __repr__(self) -> str:
        return f"Cluster(num_servers={self.num_servers})"
