"""A Storm-like stream processing engine as a discrete-event simulation.

The paper evaluates locality-aware routing on Apache Storm running on a
physical cluster. This subpackage substitutes that testbed with a
discrete-event simulation (DES) of the same moving parts:

- a DAG of **operators** (spouts and bolts) replicated into instances
  (POIs) placed on **servers**;
- **routing policies** on every stream: shuffle, local-or-shuffle, and
  fields grouping (hash-based or routing-table-based);
- an explicit **cost model**: per-tuple CPU service time,
  (de)serialization cost for remote sends, finite-bandwidth NIC queues
  and network latency;
- Storm-style **acker flow control** (``max_pending`` in-flight tuples
  per spout), so measured throughput is the bottleneck-stage rate.

See ``DESIGN.md`` Section 5 for the calibration rationale.

The DES is one of several *execution backends*: the
``repro.engine.physical`` seam (re-exported here) lets the same
topology run on pluggable drivers, and ``repro.engine.backends``
(imported lazily — it needs numpy) registers the reference DES and the
batched-vectorized fast path behind ``run_topology``; see
``DESIGN.md`` Section 15.
"""

from repro.engine.cluster import Cluster, Server
from repro.engine.costs import CostModel, DEFAULT_COSTS
from repro.engine.grouping import (
    BroadcastGrouping,
    CustomGrouping,
    FieldsGrouping,
    GlobalGrouping,
    HybridTableFieldsGrouping,
    LocalOrShuffleGrouping,
    PartialKeyGrouping,
    ShuffleGrouping,
    TableFieldsGrouping,
)
from repro.engine.operators import (
    Bolt,
    CountBolt,
    OperatorContext,
    PartialCountBolt,
    PassThroughBolt,
    Spout,
    StatefulBolt,
    SumBolt,
)
from repro.engine.flow import FlowPrediction, FlowStage, predict_throughput
from repro.engine.physical import (
    OpStats,
    PhysicalEdge,
    PhysicalOperator,
    PhysicalPlan,
    SourceOperator,
    TupleBatch,
)
from repro.engine.runner import Deployment, RunConfig, RunResult, deploy, run
from repro.engine.simulator import Simulator
from repro.engine.topology import Topology, TopologyBuilder
from repro.engine.tuples import Padding, Tuple
from repro.engine.windowing import TopKBolt, TumblingWindowCountBolt

__all__ = [
    "Simulator",
    "Cluster",
    "Server",
    "CostModel",
    "DEFAULT_COSTS",
    "Topology",
    "TopologyBuilder",
    "Spout",
    "Bolt",
    "StatefulBolt",
    "CountBolt",
    "PassThroughBolt",
    "OperatorContext",
    "Tuple",
    "Padding",
    "ShuffleGrouping",
    "LocalOrShuffleGrouping",
    "FieldsGrouping",
    "TableFieldsGrouping",
    "HybridTableFieldsGrouping",
    "GlobalGrouping",
    "BroadcastGrouping",
    "PartialKeyGrouping",
    "CustomGrouping",
    "PartialCountBolt",
    "SumBolt",
    "RunConfig",
    "RunResult",
    "Deployment",
    "deploy",
    "run",
    "TumblingWindowCountBolt",
    "TopKBolt",
    "FlowStage",
    "FlowPrediction",
    "predict_throughput",
    "PhysicalOperator",
    "SourceOperator",
    "PhysicalEdge",
    "PhysicalPlan",
    "TupleBatch",
    "OpStats",
]
