"""Offline analysis: routing tables from a trace sample (Section 3.2).

When the workload is stable, correlations can be mined once from a
large sample and the resulting tables loaded at application start —
no manager, no migration. ``offline_tables`` is the convenience entry
point for the canonical two-stage application; it returns per-stream
:class:`~repro.core.routing_table.RoutingTable` objects ready to pass
to ``TableFieldsGrouping(key, table=...)``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Mapping, Optional, Tuple

from repro.core.assignment import (
    DEFAULT_IMBALANCE,
    compute_assignment,
    expected_locality,
)
from repro.core.keygraph import KeyGraph
from repro.core.routing_table import RoutingTable


def keygraph_from_pairs(
    pairs: Iterable[Tuple[Hashable, Hashable]],
    in_stream: str,
    out_stream: str,
) -> KeyGraph:
    """Build a key graph from raw (in_key, out_key) observations."""
    counts: Dict[Tuple[Hashable, Hashable], int] = {}
    for pair in pairs:
        counts[pair] = counts.get(pair, 0) + 1
    graph = KeyGraph()
    for (in_key, out_key), count in counts.items():
        graph.add_pair(in_stream, in_key, out_stream, out_key, count)
    return graph


def offline_tables(
    pairs: Iterable[Tuple[Hashable, Hashable]],
    num_servers: int,
    in_stream: str = "S->A",
    out_stream: str = "A->B",
    imbalance: float = DEFAULT_IMBALANCE,
    seed: int = 0,
    max_edges: Optional[int] = None,
    server_to_instance: Optional[Mapping[int, int]] = None,
) -> Tuple[Dict[str, RoutingTable], float]:
    """Compute routing tables for a two-hop chain from a trace sample.

    Parameters
    ----------
    pairs:
        Observed ``(first key, second key)`` pairs, e.g.
        (location, hashtag) for the paper's Twitter application.
    num_servers:
        Cluster size; with the paper's placement, also the parallelism.
    server_to_instance:
        Server → destination-instance mapping (identity by default).

    Returns
    -------
    (tables, predicted_locality)
        ``tables`` maps each stream name to its routing table;
        ``predicted_locality`` is the co-location the partitioner
        achieves on the sample itself.
    """
    graph = keygraph_from_pairs(pairs, in_stream, out_stream)
    if max_edges is not None:
        graph = graph.top_edges(max_edges)
    assignment = compute_assignment(
        graph, num_servers, imbalance=imbalance, seed=seed
    )
    mapping = (
        {server: server for server in range(num_servers)}
        if server_to_instance is None
        else dict(server_to_instance)
    )
    tables = {
        in_stream: assignment.table_for(in_stream, mapping),
        out_stream: assignment.table_for(out_stream, mapping),
    }
    return tables, expected_locality(graph, assignment)
