"""The physical-operator seam: pluggable execution backends.

The topology layer (:mod:`repro.engine.topology`) describes *what* to
compute; this module defines the contract for *how* a backend executes
it. A backend compiles a :class:`~repro.engine.topology.Topology` into
a DAG of :class:`PhysicalOperator` instances — push input with
``add_input``, signal exhaustion with ``input_done``, pull output with
``has_next``/``get_next`` — driven to quiescence by a
:class:`PhysicalPlan`. The shape follows the streaming-executor seam
popularized by Ray Data: operators never block, per-operator
:class:`OpStats` are maintained by the base class, and completion is an
explicit protocol (all inputs done *and* all buffered output flushed),
so the same plan driver works for any backend.

Two backends ship against this seam (see :mod:`repro.engine.backends`):

- ``reference`` — an adapter over the existing discrete-event
  simulator. It does not route through :class:`PhysicalOperator` at
  all: the DES executors stay byte-identical (same event fingerprints)
  and serve as the correctness oracle.
- ``vectorized`` — batches tuples into numpy columns and resolves
  routing per *batch* instead of per tuple (DESIGN.md §15).

Data moves between physical operators as :class:`TupleBatch` — a
columnar micro-batch: the Python value tuples ride along (operators
that need raw values still get them), while the per-tuple key ids,
modeled payload sizes and source instances live in numpy arrays so
routing, counting and cost accounting are O(batch) array ops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.errors import DeploymentError


@dataclass
class OpStats:
    """Per-operator execution counters, maintained by the base class.

    **Mutation contract**: an ``OpStats`` is plain unsynchronized
    state, incremented by whichever single thread drives the owning
    operator. That is safe because a :class:`PhysicalPlan` is driven by
    exactly one thread; a backend that shards an operator across
    threads or processes must give every shard its *own* operator (and
    hence its own ``OpStats``) and combine them afterwards with
    :func:`merge_op_stats` — never share one ``OpStats`` across
    concurrent mutators.
    """

    batches_in: int = 0
    batches_out: int = 0
    tuples_in: int = 0
    tuples_out: int = 0
    #: wall-clock seconds spent inside the operator (backends that
    #: model time instead record modeled seconds here)
    busy_s: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "batches_in": float(self.batches_in),
            "batches_out": float(self.batches_out),
            "tuples_in": float(self.tuples_in),
            "tuples_out": float(self.tuples_out),
            "busy_s": self.busy_s,
        }

    def merge(self, other: "OpStats") -> "OpStats":
        """Fold ``other`` into this one (in place; returns self).

        All counters are additive — including ``busy_s``, which for
        sharded operators sums the shards' busy time (total work, not
        makespan; a backend wanting makespan tracks it separately).
        """
        self.batches_in += other.batches_in
        self.batches_out += other.batches_out
        self.tuples_in += other.tuples_in
        self.tuples_out += other.tuples_out
        self.busy_s += other.busy_s
        return self

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "OpStats":
        """Rebuild from :meth:`as_dict` output (shards that crossed a
        process boundary arrive as plain dicts)."""
        return cls(
            batches_in=int(data.get("batches_in", 0)),
            batches_out=int(data.get("batches_out", 0)),
            tuples_in=int(data.get("tuples_in", 0)),
            tuples_out=int(data.get("tuples_out", 0)),
            busy_s=float(data.get("busy_s", 0.0)),
        )


def merge_op_stats(shards) -> Dict[str, OpStats]:
    """Aggregate per-operator stats across shards of one logical plan.

    ``shards`` is an iterable of ``{op_name: OpStats | as_dict()}``
    mappings — one per worker thread/process. Each (shard, op) pair is
    folded in exactly once, so totals are neither double-counted nor
    lost when a shard ran only part of the plan (early termination
    leaves an operator missing from some shards; missing simply means
    "contributed zero").
    """
    merged: Dict[str, OpStats] = {}
    for shard in shards:
        for name, stats in shard.items():
            if isinstance(stats, dict):
                stats = OpStats.from_dict(stats)
            if name in merged:
                merged[name].merge(stats)
            else:
                merged[name] = OpStats().merge(stats)
    return merged


class TupleBatch:
    """A columnar micro-batch of tuples flowing between physical ops.

    Attributes
    ----------
    values:
        The raw value tuples, in batch order (kept so scalar operators
        and downstream key extraction can always recover full fidelity).
    src_instances:
        Per-tuple producing instance of the upstream logical operator
        (numpy ``int64`` array, or None for spout output batches built
        by a single instance — see ``src_instance``).
    dst_instances:
        Per-tuple destination instance, filled in by the edge router
        before the batch is handed to the consumer (None until routed).
    sizes:
        Modeled payload bytes per tuple, header included (None until a
        backend that accounts bytes computes them).
    key_ids:
        Per-tuple key ids under the producing edge's key vocabulary
        (numpy ``int64``), attached by vectorized edge routers so a
        consumer counting the same key never re-extracts it.
    """

    __slots__ = (
        "values",
        "src_instances",
        "dst_instances",
        "sizes",
        "key_ids",
    )

    def __init__(
        self,
        values: Sequence[tuple],
        src_instances=None,
        dst_instances=None,
        sizes=None,
        key_ids=None,
    ) -> None:
        self.values = values
        self.src_instances = src_instances
        self.dst_instances = dst_instances
        self.sizes = sizes
        self.key_ids = key_ids

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return f"TupleBatch({len(self.values)} tuples)"


class PhysicalOperator:
    """One node of a compiled physical plan.

    Lifecycle (enforced by :class:`PhysicalPlan`):

    1. upstream pushes batches via :meth:`add_input` (``input_index``
       identifies which input stream, in ``input_names`` order);
    2. upstream exhaustion arrives via :meth:`input_done`;
    3. the driver drains :meth:`get_next` while :meth:`has_next`;
    4. once every input is done and the operator has flushed whatever
       it buffered, :attr:`completed` flips true.

    Subclasses implement :meth:`_process` (consume one input batch,
    buffer zero or more output batches) and optionally :meth:`_flush`
    (emit whatever is held back once all inputs are done — the
    completion/flush half of the protocol).
    """

    def __init__(self, name: str, input_names: Sequence[str]) -> None:
        self.name = name
        self.input_names = list(input_names)
        self.stats = OpStats()
        self._inputs_done = [False] * len(self.input_names)
        self._out: List[TupleBatch] = []
        self._flushed = False

    # -- push side ------------------------------------------------------

    def add_input(self, batch: TupleBatch, input_index: int = 0) -> None:
        """Accept one input batch from upstream ``input_index``."""
        if self._inputs_done and self._inputs_done[input_index]:
            raise DeploymentError(
                f"operator {self.name!r} got a batch on input "
                f"{input_index} after input_done"
            )
        self.stats.batches_in += 1
        self.stats.tuples_in += len(batch)
        self._process(batch, input_index)

    def input_done(self, input_index: int = 0) -> None:
        """Upstream ``input_index`` will push no more batches."""
        self._inputs_done[input_index] = True
        if all(self._inputs_done) and not self._flushed:
            self._flushed = True
            self._flush()

    # -- pull side ------------------------------------------------------

    def has_next(self) -> bool:
        """Whether a buffered output batch is ready."""
        return bool(self._out)

    def get_next(self) -> TupleBatch:
        """Pop the next buffered output batch."""
        batch = self._out.pop(0)
        self.stats.batches_out += 1
        self.stats.tuples_out += len(batch)
        return batch

    @property
    def completed(self) -> bool:
        """All inputs done, internal state flushed, output drained."""
        return self._flushed and not self._out

    # -- subclass hooks -------------------------------------------------

    def _process(self, batch: TupleBatch, input_index: int) -> None:
        raise NotImplementedError

    def _flush(self) -> None:
        """Emit anything held back; default operators buffer nothing."""

    def _emit(self, batch: TupleBatch) -> None:
        """Buffer one output batch for the driver to pull."""
        self._out.append(batch)


class SourceOperator(PhysicalOperator):
    """A physical operator with no inputs that generates batches.

    Subclasses implement :meth:`_poll`, returning the next output batch
    or ``None`` when exhausted. The plan driver polls sources until
    they report exhaustion, then cascades ``input_done`` downstream.
    """

    def __init__(self, name: str) -> None:
        super().__init__(name, input_names=())
        self._exhausted = False

    def poll(self) -> Optional[TupleBatch]:
        """Produce the next batch, or None once the source is dry."""
        if self._exhausted:
            return None
        batch = self._poll()
        if batch is None:
            self._exhausted = True
            if not self._flushed:
                self._flushed = True
                self._flush()
            return None
        self.stats.batches_out += 1
        self.stats.tuples_out += len(batch)
        return batch

    @property
    def exhausted(self) -> bool:
        return self._exhausted

    def _poll(self) -> Optional[TupleBatch]:
        raise NotImplementedError

    def _process(self, batch: TupleBatch, input_index: int) -> None:
        raise DeploymentError(f"source {self.name!r} takes no input")


@dataclass
class PhysicalEdge:
    """One DAG edge of a physical plan: which operator feeds which
    input slot of which consumer, under which stream name."""

    stream_name: str
    src: PhysicalOperator
    dst: PhysicalOperator
    dst_input_index: int
    #: hook applied to every batch crossing the edge (routing,
    #: byte/locality accounting); identity when None
    transform: Optional[Any] = None


class PhysicalPlan:
    """A compiled physical DAG plus the driver that runs it.

    The driver is deliberately simple and deterministic: it walks
    operators in topological order, polls sources, pushes every
    produced batch through its out-edges (applying the edge transform —
    typically the vectorized router), and repeats until every source is
    exhausted and every operator has completed. Determinism matters:
    cross-backend equivalence tests compare against the DES oracle.
    """

    def __init__(
        self,
        operators: Sequence[PhysicalOperator],
        edges: Sequence[PhysicalEdge],
    ) -> None:
        self.operators = list(operators)
        self.edges = list(edges)
        self._out_edges: Dict[int, List[PhysicalEdge]] = {}
        for edge in self.edges:
            self._out_edges.setdefault(id(edge.src), []).append(edge)

    def out_edges(self, op: PhysicalOperator) -> List[PhysicalEdge]:
        return self._out_edges.get(id(op), [])

    def sources(self) -> List[SourceOperator]:
        return [
            op for op in self.operators if isinstance(op, SourceOperator)
        ]

    def _push(self, op: PhysicalOperator, batch: TupleBatch) -> None:
        """Deliver one produced batch across all of ``op``'s edges,
        then drain any output it caused, depth-first."""
        for edge in self.out_edges(op):
            out = batch
            if edge.transform is not None:
                out = edge.transform(out)
            edge.dst.add_input(out, edge.dst_input_index)
            while edge.dst.has_next():
                self._push(edge.dst, edge.dst.get_next())

    def _cascade_done(self, op: PhysicalOperator) -> None:
        for edge in self.out_edges(op):
            edge.dst.input_done(edge.dst_input_index)
            while edge.dst.has_next():
                self._push(edge.dst, edge.dst.get_next())
            if edge.dst.completed:
                self._cascade_done(edge.dst)

    def execute(self, on_round=None) -> None:
        """Run every source dry and flush the whole DAG.

        ``on_round(plan)`` fires after each full pass over the live
        sources, with no batch in flight — the quiescent points where a
        backend may apply scripted reconfigurations (table swaps,
        rescales) without splitting a batch across two routing epochs.

        **Threading contract**: ``execute`` drives the whole plan from
        the calling thread, and ``on_round`` runs on that same thread.
        Operator state and :class:`OpStats` are mutated without locks
        on that assumption. A distributed backend (e.g. the
        multiprocess one) therefore runs one single-threaded plan
        *per worker* and aggregates with :func:`merge_op_stats`; it
        must not share operators between concurrently driven plans.
        """
        sources = self.sources()
        live = list(sources)
        while live:
            still = []
            for source in live:
                batch = source.poll()
                if batch is not None:
                    self._push(source, batch)
                    still.append(source)
                else:
                    self._cascade_done(source)
            live = still
            if on_round is not None:
                on_round(self)
        for op in self.operators:
            if not op.completed:
                raise DeploymentError(
                    f"plan finished with operator {op.name!r} incomplete "
                    f"(buffered output or missing input_done)"
                )

    def stats(self) -> Dict[str, OpStats]:
        return {op.name: op.stats for op in self.operators}

    def iter_stats(self) -> Iterator[Any]:
        for op in self.operators:
            yield op.name, op.stats
